//! Tier-1 code generation: emit the complete eBNN Convolution-Pool DPU
//! program as assembly and run batches through it at instruction level.
//!
//! This is the repository's strongest fidelity path: the same inference the
//! Tier-2 pipeline performs (multi-image-per-DPU, LUT-rewritten BN, §4.1)
//! executes as an actual DPU program — per-tasklet image DMA, a shared
//! filter/LUT load behind a barrier, the bit-packed convolution, LUT
//! activation, and the feature write-back DMA. The integration tests
//! compare its output bit-for-bit against [`crate::model::EbnnModel`] and
//! its cycle counts against the Tier-2 estimates.
//!
//! ## WRAM layout (generated constants)
//!
//! ```text
//! 0x0000  params        n_images, stride, image/feature MRAM bases (16 B)
//! 0x0040  image slots   16 × 128 B (row r of image i at slot+4+4r;
//!                       offsets 0..4 and 116..128 are zero guards, giving
//!                       the conv its −1 padding for free)
//! 0x0840  filters       F × 16 B (3 packed u32 rows + pad)
//! ....    LUT           19 × F bytes
//! ....    features      16 × F×196 bytes (one byte per feature bit)
//! ```
//!
//! The image and feature **MRAM** base addresses travel in the params
//! record rather than being baked into the program, so a host can stage
//! the next batch into an alternate MRAM buffer while the previous one is
//! still unread — the double-buffered serving mode (`pim-serve`) flips
//! between two image/feature regions with the same loaded program.

use crate::lut::BnLut;
use crate::mnist::GrayImage;
use crate::model::EbnnModel;
use crate::{IMAGES_PER_DPU, IMAGE_DIM, IMAGE_SLOT_BYTES, POOLED_DIM};
use dpu_sim::asm::assemble;
use dpu_sim::{DpuId, Program};
use pim_host::{DpuSet, HostError, LaunchResult};
use pim_trace::TraceBuffer;

/// WRAM addresses used by the generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WramLayout {
    /// `n_images` scalar.
    pub params: u32,
    /// First image slot.
    pub images: u32,
    /// First filter record (16 bytes each).
    pub filters: u32,
    /// LUT base.
    pub lut: u32,
    /// First feature byte.
    pub features: u32,
    /// Filter count the layout was built for.
    pub n_filters: u32,
}

impl WramLayout {
    /// Layout for `filters` conv filters.
    ///
    /// # Panics
    /// When the layout would overflow the data half of WRAM.
    #[must_use]
    pub fn new(filters: usize) -> Self {
        assert!(filters > 0 && filters <= 8, "codegen supports 1..=8 filters (the 16-slot\n             feature region for wider models would overflow WRAM)");
        let params = 0u32;
        let images = 0x40u32;
        let filters_base = images + (IMAGES_PER_DPU * IMAGE_SLOT_BYTES) as u32;
        let lut = filters_base + 16 * filters as u32;
        let features = (lut + 19 * filters as u32 + 7) & !7;
        let end = features + (IMAGES_PER_DPU * filters * POOLED_DIM * POOLED_DIM) as u32;
        assert!(end <= 48 * 1024, "layout overflows the WRAM data region: {end:#x}");
        Self { params, images, filters: filters_base, lut, features, n_filters: filters as u32 }
    }

    /// Feature bytes per image.
    #[must_use]
    pub fn features_per_image(&self) -> u32 {
        self.n_filters * (POOLED_DIM * POOLED_DIM) as u32
    }
}

/// Emit the conv-window evaluation for window copy `idx` (labels must be
/// unique): computes the 3×3 XNOR-popcount value at (`row` in r16,
/// `col` in r17) and folds it into the running max in r9.
fn emit_window(idx: usize) -> String {
    format!(
        "\
        lsli r24, r16, 2\n\
        add r24, r24, r3\n\
        addi r24, r24, -4\n\
        movi r10, 0\n\
        lw r25, r24, 0\n\
        lsli r25, r25, 1\n\
        lsr r25, r25, r17\n\
        xor r25, r25, r20\n\
        xor r25, r25, r23\n\
        and r25, r25, r23\n\
        popcount r26, r25\n\
        add r10, r10, r26\n\
        lw r25, r24, 4\n\
        lsli r25, r25, 1\n\
        lsr r25, r25, r17\n\
        xor r25, r25, r21\n\
        xor r25, r25, r23\n\
        and r25, r25, r23\n\
        popcount r26, r25\n\
        add r10, r10, r26\n\
        lw r25, r24, 8\n\
        lsli r25, r25, 1\n\
        lsr r25, r25, r17\n\
        xor r25, r25, r22\n\
        xor r25, r25, r23\n\
        and r25, r25, r23\n\
        popcount r26, r25\n\
        add r10, r10, r26\n\
        lsli r26, r10, 1\n\
        addi r26, r26, -9\n\
        blt r26, r9, wskip{idx}\n\
        mov r9, r26\n\
        wskip{idx}:\n"
    )
}

/// Generate the complete eBNN conv-pool DPU program for `filters` filters.
///
/// Program phases: (1) every tasklet DMAs its own image slot; tasklet 0
/// additionally DMAs params, filters and LUT; (2) barrier; (3) the
/// conv-pool-LUT loops; (4) per-image feature write-back DMA.
///
/// # Panics
/// When `filters` is outside `1..=16` or code generation produces invalid
/// assembly (a bug, not an input condition).
#[must_use]
pub fn tier1_program(filters: usize) -> Program {
    let l = WramLayout::new(filters);
    let fpi = l.features_per_image();
    let fpi_pad = (fpi as usize).div_ceil(8) * 8;
    let mut s = String::new();

    // ---- phase 1: shared loads (tasklet 0), then a barrier ----
    s.push_str(&format!(
        "\
        me r1\n\
        bne r1, r0, wait0\n\
        movi r3, {par_w}\n\
        movi r4, {par_m}\n\
        movi r5, 16\n\
        mram.read r3, r4, r5\n\
        movi r3, {fil_w}\n\
        movi r4, {fil_m}\n\
        movi r5, {fil_len}\n\
        mram.read r3, r4, r5\n\
        movi r3, {lut_w}\n\
        movi r4, {lut_m}\n\
        movi r5, {lut_len}\n\
        mram.read r3, r4, r5\n\
        wait0: barrier\n\
        lw r2, r0, {par_w}        ; n_images\n\
        lw r18, r0, {par_w4}      ; n_tasklets (stride)\n\
        movi r14, {nf}\n\
        movi r15, {lut_w}\n\
        movi r28, 14\n\
        movi r30, 196\n\
        mov r31, r1               ; my first image\n\
        imgloop: bge r31, r2, done\n\
        ; DMA image slot r31: MRAM images + idx*128 -> WRAM images + idx*128\n\
        lsli r19, r31, 7\n\
        movi r3, {img_w}\n\
        add r3, r3, r19\n\
        lw r4, r0, {par_w8}\n\
        add r4, r4, r19\n\
        movi r5, {slot}\n\
        mram.read r3, r4, r5\n\
        ; r3 = image rows base (+4 past guard), r4 = feature base\n\
        addi r3, r3, 4\n\
        movi r11, {fpi}\n\
        call __mulsi3 r4, r31, r11\n\
        addi r4, r4, {feat_w}\n\
        movi r5, 0\n\
        jloop:\n\
        lsli r6, r5, 4\n\
        addi r6, r6, {fil_w}\n\
        lw r20, r6, 0\n\
        lw r21, r6, 4\n\
        lw r22, r6, 8\n\
        movi r23, 7\n\
        movi r7, 0\n\
        prloop:\n\
        movi r8, 0\n\
        pcloop:\n\
        movi r9, -128\n",
        par_w = l.params,
        par_w4 = l.params + 4,
        par_w8 = l.params + 8,
        par_m = mram::PARAMS,
        fil_w = l.filters,
        fil_m = mram::FILTERS,
        fil_len = 16 * filters,
        lut_w = l.lut,
        lut_m = mram::LUT,
        lut_len = (19 * filters).div_ceil(8) * 8,
        nf = filters,
        img_w = l.images,
        slot = IMAGE_SLOT_BYTES,
        fpi = fpi,
        feat_w = l.features,
    ));

    // Four unrolled windows: (dr, dc) in {0,1}^2.
    for (idx, (dr, dc)) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
        s.push_str(&format!(
            "\
            lsli r16, r7, 1\n\
            addi r16, r16, {dr}\n\
            lsli r17, r8, 1\n\
            addi r17, r17, {dc}\n",
        ));
        s.push_str(&emit_window(idx));
    }
    s.push_str(
        "\
        ; LUT: idx = (best + 9) * F + j\n\
        addi r9, r9, 9\n\
        mul8 r24, r9, r14\n\
        add r24, r24, r5\n\
        add r24, r24, r15\n\
        lb r25, r24, 0\n\
        ; feature byte at out + j*196 + pr*14 + pc\n\
        mul8 r26, r5, r30\n\
        mul8 r27, r7, r28\n\
        add r26, r26, r27\n\
        add r26, r26, r8\n\
        add r26, r26, r4\n\
        sb r26, 0, r25\n\
        addi r8, r8, 1\n\
        bne r8, r28, pcloop\n\
        addi r7, r7, 1\n\
        bne r7, r28, prloop\n\
        addi r5, r5, 1\n\
        bne r5, r14, jloop\n",
    );

    // ---- write back this image's features, then stride to the next ----
    s.push_str(&format!(
        "\
        movi r11, {fpi_pad}\n\
        call __mulsi3 r12, r31, r11\n\
        lw r13, r0, {par_w12}\n\
        add r13, r13, r12\n\
        mram.write r4, r13, r11\n\
        add r31, r31, r18\n\
        jmp imgloop\n\
        done: halt\n",
        fpi_pad = fpi_pad,
        par_w12 = l.params + 12,
    ));

    let program = assemble(&s).expect("generated eBNN program assembles");
    program.validate().expect("generated eBNN program has valid control flow");
    program
}

/// MRAM symbol offsets used by [`run_tier1_batch`] (allocated with
/// `define_at` so the generated program can hard-code them). Only the
/// params, filter and LUT offsets are baked into the program; the image
/// and feature bases travel *inside* the params record, so alternate
/// buffers (double buffering) live at host-chosen offsets past
/// [`FEATURES`].
pub mod mram {
    /// Params record: `[n_images u32][stride u32][img_base u32][feat_base u32]`.
    pub const PARAMS: u32 = 0;
    /// Default image slots (16 × 128 B) — buffer 0.
    pub const IMAGES: u32 = 16;
    /// Filter records (16 × 16 B capacity).
    pub const FILTERS: u32 = IMAGES + 2048;
    /// LUT (up to 19 × 16 bytes, padded).
    pub const LUT: u32 = FILTERS + 256;
    /// Default feature output (16 × up to 3136 B) — buffer 0.
    pub const FEATURES: u32 = LUT + 312;
}

/// Wire encoding of the 16-byte params record the generated program
/// expects: image count, tasklet stride, and the MRAM base addresses of
/// the image and feature buffers this launch should use.
#[must_use]
pub fn params_wire(n_images: u32, stride: u32, img_base: u32, feat_base: u32) -> [u8; 16] {
    let mut w = [0u8; 16];
    w[0..4].copy_from_slice(&n_images.to_le_bytes());
    w[4..8].copy_from_slice(&stride.to_le_bytes());
    w[8..12].copy_from_slice(&img_base.to_le_bytes());
    w[12..16].copy_from_slice(&feat_base.to_le_bytes());
    w
}

/// Binarize and pack one grayscale image into its 128-byte MRAM slot:
/// a 4-byte zero guard, 28 packed rows of 4 bytes, and a zero tail (the
/// guards give the conv its −1 padding for free).
#[must_use]
pub fn encode_slot(model: &EbnnModel, image: &GrayImage) -> Vec<u8> {
    let img = model.binarize(&image.pixels);
    let mut slot = vec![0u8; IMAGE_SLOT_BYTES];
    slot[4..4 + IMAGE_DIM * 4].copy_from_slice(&img.to_bytes());
    slot
}

/// Run a batch (≤ 16 images) through the generated Tier-1 program on one
/// simulated DPU, returning per-image feature vectors and the launch
/// result (cycles, DMA stats, trace).
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// When `images` is empty or exceeds [`IMAGES_PER_DPU`], or the model has
/// more than 16 filters.
pub fn run_tier1_batch(
    model: &EbnnModel,
    images: &[GrayImage],
) -> Result<(Vec<Vec<u8>>, LaunchResult), HostError> {
    run_tier1_batch_with_tasklets(model, images, images.len().min(IMAGES_PER_DPU))
}

/// Like [`run_tier1_batch`] with an explicit tasklet count: tasklet `t`
/// processes images `t, t+T, t+2T, …` — the configuration knob behind the
/// instruction-level Fig. 4.7(a) measurement.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// See [`run_tier1_batch`]; additionally when `tasklets` is outside
/// `1..=24`.
pub fn run_tier1_batch_with_tasklets(
    model: &EbnnModel,
    images: &[GrayImage],
    tasklets: usize,
) -> Result<(Vec<Vec<u8>>, LaunchResult), HostError> {
    tier1_single_impl(model, images, tasklets, false).map(|t| (t.features, t.launch))
}

/// A Tier-1 batch run with full tracing: per-DPU simulator traces plus the
/// host-transfer log, alongside the functional outputs.
#[derive(Debug)]
pub struct TracedBatch {
    /// Per-image binary feature vectors, in input order.
    pub features: Vec<Vec<u8>>,
    /// The launch result (identical to an untraced run).
    pub launch: LaunchResult,
    /// One cycle-stamped trace per DPU, in DPU order.
    pub dpu_traces: Vec<TraceBuffer>,
    /// Host↔MRAM transfers (scatter, broadcast and gather), in order.
    pub host_trace: TraceBuffer,
}

/// [`run_tier1_batch_with_tasklets`] with tracing enabled: the same
/// inference, plus one simulator [`TraceBuffer`] per DPU and the
/// host-transfer log.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// See [`run_tier1_batch_with_tasklets`].
pub fn run_tier1_batch_traced(
    model: &EbnnModel,
    images: &[GrayImage],
    tasklets: usize,
) -> Result<TracedBatch, HostError> {
    tier1_single_impl(model, images, tasklets, true)
}

fn tier1_single_impl(
    model: &EbnnModel,
    images: &[GrayImage],
    tasklets: usize,
    trace: bool,
) -> Result<TracedBatch, HostError> {
    assert!(!images.is_empty() && images.len() <= IMAGES_PER_DPU, "1..=16 images per DPU");
    assert!((1..=24).contains(&tasklets), "tasklets must be 1..=24");
    let filters = model.config.filters;
    let l = WramLayout::new(filters);
    let fpi = l.features_per_image() as usize;
    let fpi_pad = fpi.div_ceil(8) * 8;

    let mut set = DpuSet::allocate(1)?;
    if trace {
        set.enable_host_tracing();
    }
    // Sequential definitions land at the fixed offsets in [`mram`], which
    // the generated program hard-codes.
    set.define_symbol("params", 16)?;
    set.define_symbol("images", 2048)?;
    set.define_symbol("filters", 256)?;
    set.define_symbol("lut", 312)?;
    set.define_symbol("features", IMAGES_PER_DPU * fpi_pad)?;

    let params = params_wire(images.len() as u32, tasklets as u32, mram::IMAGES, mram::FEATURES);
    set.copy_to("params", 0, &params)?;
    for (i, g) in images.iter().enumerate() {
        let slot = encode_slot(model, g);
        set.copy_to_dpu(DpuId(0), "images", i * IMAGE_SLOT_BYTES, &slot)?;
    }
    let mut filter_wire = vec![0u8; 16 * filters];
    for (j, f) in model.filters.iter().enumerate() {
        for (r, &row) in f.rows.iter().enumerate() {
            filter_wire[j * 16 + 4 * r..j * 16 + 4 * r + 4]
                .copy_from_slice(&u32::from(row).to_le_bytes());
        }
    }
    set.copy_to("filters", 0, &pim_host::pad_to_8(&filter_wire))?;
    let lut = BnLut::for_conv3x3(&model.bn);
    set.copy_to("lut", 0, &pim_host::pad_to_8(&lut.to_bytes()))?;

    let program = tier1_program(filters);
    let (launch, dpu_traces) = if trace {
        set.launch_traced(&program, tasklets)?
    } else {
        (set.launch(&program, tasklets)?, Vec::new())
    };

    let mut features = Vec::with_capacity(images.len());
    for i in 0..images.len() {
        let mut wire = vec![0u8; fpi_pad];
        set.copy_from_dpu(DpuId(0), "features", i * fpi_pad, &mut wire)?;
        features.push(wire[..fpi].to_vec());
    }
    let host_trace = set.take_host_trace().unwrap_or_default();
    Ok(TracedBatch { features, launch, dpu_traces, host_trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn model(filters: usize) -> EbnnModel {
        EbnnModel::generate(ModelConfig { filters, ..ModelConfig::default() })
    }

    #[test]
    fn layout_is_disjoint_and_bounded() {
        for f in [1usize, 4, 8] {
            let l = WramLayout::new(f);
            assert!(l.params < l.images);
            assert!(l.images + 2048 <= l.filters);
            assert!(l.filters + 16 * f as u32 <= l.lut);
            assert!(l.lut + 19 * f as u32 <= l.features);
        }
    }

    #[test]
    fn generated_program_fits_iram() {
        for f in [1usize, 4, 8] {
            let p = tier1_program(f);
            assert!(
                p.iram_bytes() <= dpu_sim::params::IRAM_BYTES,
                "{f} filters: {} bytes",
                p.iram_bytes()
            );
        }
    }

    #[test]
    fn tier1_features_match_model_single_image() {
        let m = model(4);
        let imgs = vec![crate::mnist::synth_digit(7, 1)];
        let (features, result) = run_tier1_batch(&m, &imgs).unwrap();
        let expected = m.features(&m.binarize(&imgs[0].pixels));
        assert_eq!(features[0], expected);
        assert!(result.makespan_cycles() > 0);
    }

    #[test]
    fn tier1_features_match_model_full_batch() {
        let m = model(2);
        let imgs: Vec<_> = (0..16).map(|i| crate::mnist::synth_digit(i % 10, i as u64)).collect();
        let (features, _) = run_tier1_batch(&m, &imgs).unwrap();
        for (i, img) in imgs.iter().enumerate() {
            let expected = m.features(&m.binarize(&img.pixels));
            assert_eq!(features[i], expected, "image {i}");
        }
    }

    #[test]
    fn partial_batches_leave_idle_tasklets_quiet() {
        let m = model(2);
        let imgs: Vec<_> = (0..3).map(|i| crate::mnist::synth_digit(i, 0)).collect();
        let (features, _) = run_tier1_batch(&m, &imgs).unwrap();
        assert_eq!(features.len(), 3);
        for (i, img) in imgs.iter().enumerate() {
            assert_eq!(features[i], m.features(&m.binarize(&img.pixels)));
        }
    }
}

#[cfg(test)]
mod tasklet_scaling_tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn strided_assignment_is_correct_at_every_tasklet_count() {
        let m = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
        let imgs: Vec<_> = (0..7).map(|i| crate::mnist::synth_digit(i, 2)).collect();
        let expected: Vec<Vec<u8>> =
            imgs.iter().map(|g| m.features(&m.binarize(&g.pixels))).collect();
        for t in [1usize, 2, 3, 7, 11] {
            let (features, _) = run_tier1_batch_with_tasklets(&m, &imgs, t).unwrap();
            assert_eq!(features, expected, "tasklets = {t}");
        }
    }

    #[test]
    fn tier1_tasklet_speedup_shows_fig_4_7a_shape() {
        // Instruction-level Fig. 4.7(a): 16 images, varying tasklets.
        let m = EbnnModel::generate(ModelConfig { filters: 1, ..ModelConfig::default() });
        let imgs: Vec<_> = (0..16).map(|i| crate::mnist::synth_digit(i % 10, i as u64)).collect();
        let cycles =
            |t: usize| run_tier1_batch_with_tasklets(&m, &imgs, t).unwrap().1.makespan_cycles();
        let c1 = cycles(1) as f64;
        let (s8, s11, s16) =
            (c1 / cycles(8) as f64, c1 / cycles(11) as f64, c1 / cycles(16) as f64);
        // Plateau between 8 and 11 (both need two 8-image waves), jump at 16.
        assert!(s8 > 6.0, "8-tasklet speedup {s8:.2}");
        assert!((s8 - s11).abs() / s8 < 0.08, "plateau: {s8:.2} vs {s11:.2}");
        assert!(s16 > s11 * 1.2, "16-tasklet jump: {s16:.2} vs {s11:.2}");
    }
}

/// Run an arbitrarily large batch at Tier 1 across multiple DPUs: images
/// are chunked 16 per DPU (every DPU has the same MRAM symbol layout and
/// runs the same program — the SIMD-across-DPUs model of §3.1).
///
/// Returns per-image features in input order plus the launch result
/// (the makespan is the slowest DPU).
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// When `images` is empty or the model has more than 8 filters.
pub fn run_tier1_batch_multi_dpu(
    model: &EbnnModel,
    images: &[GrayImage],
) -> Result<(Vec<Vec<u8>>, LaunchResult), HostError> {
    tier1_multi_impl(model, images, false).map(|t| (t.features, t.launch))
}

/// [`run_tier1_batch_multi_dpu`] with tracing enabled: per-DPU simulator
/// traces (one [`TraceBuffer`] per DPU, in DPU order) plus the
/// host-transfer log covering the weight broadcast, image scatter and
/// feature gather.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// See [`run_tier1_batch_multi_dpu`].
pub fn run_tier1_batch_multi_dpu_traced(
    model: &EbnnModel,
    images: &[GrayImage],
) -> Result<TracedBatch, HostError> {
    tier1_multi_impl(model, images, true)
}

/// Images staged onto one buffer of a [`Tier1Engine`].
#[derive(Debug, Clone)]
struct StagedMeta {
    /// Images per DPU chunk (all [`IMAGES_PER_DPU`] except possibly the
    /// last; DPUs past the chunk list idle with `n_images = 0`).
    chunk_lens: Vec<usize>,
}

/// Per-item gathered features (`None` = unserved item) plus bytes read
/// on the host link.
pub type ServedFeatures = (Vec<Option<Vec<u8>>>, u64);

/// A persistent multi-DPU Tier-1 executor: the DPU set is allocated once,
/// the weights and LUT are broadcast once (as shared COW pages), and the
/// program is loaded once — each batch afterwards stages only its params
/// and image slots, launches, and gathers features. This is the
/// batch-slicing entry point the `pim-serve` runtime builds on; the
/// one-shot [`run_tier1_batch_multi_dpu`] family is a thin wrapper that
/// stages a single batch and throws the engine away.
///
/// With `buffers == 2` the engine holds two image/feature MRAM regions
/// and the params record (staged per batch) selects which one a launch
/// reads and writes — so batch *N+1* can be staged while batch *N*'s
/// features are still unread (the double-buffered serving pipeline).
#[derive(Debug)]
pub struct Tier1Engine {
    set: DpuSet,
    dpus: usize,
    fpi: usize,
    fpi_pad: usize,
    img_base: Vec<u32>,
    feat_base: Vec<u32>,
    staged: Vec<Option<StagedMeta>>,
    /// Buffer the most recent [`Tier1Engine::stage`] wrote — the one the
    /// next launch runs on.
    active: usize,
    tasklets: usize,
    golden: pim_host::SetSnapshot,
}

impl Tier1Engine {
    /// Build a single-buffer engine over `dpus` DPUs.
    ///
    /// # Errors
    /// Host-runtime failures (allocation, staging).
    ///
    /// # Panics
    /// When `dpus` is zero or the model has more than 8 filters.
    pub fn new(model: &EbnnModel, dpus: usize) -> Result<Self, HostError> {
        Self::with_buffers(model, dpus, 1, false)
    }

    /// Build an engine with `buffers` (1 or 2) image/feature buffer pairs,
    /// optionally recording host transfers.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `dpus` is zero, `buffers` is not 1 or 2, or the model has more
    /// than 8 filters.
    pub fn with_buffers(
        model: &EbnnModel,
        dpus: usize,
        buffers: usize,
        trace: bool,
    ) -> Result<Self, HostError> {
        assert!(dpus > 0, "engine needs at least one DPU");
        assert!(buffers == 1 || buffers == 2, "1 or 2 buffers");
        let filters = model.config.filters;
        let l = WramLayout::new(filters);
        let fpi = l.features_per_image() as usize;
        let fpi_pad = fpi.div_ceil(8) * 8;

        let mut set = DpuSet::allocate(dpus)?;
        if trace {
            set.enable_host_tracing();
        }
        set.define_symbol("params", 16)?;
        set.define_symbol("images", 2048)?;
        set.define_symbol("filters", 256)?;
        set.define_symbol("lut", 312)?;
        set.define_symbol("features", IMAGES_PER_DPU * fpi_pad)?;
        let mut img_base = vec![mram::IMAGES];
        let mut feat_base = vec![mram::FEATURES];
        if buffers == 2 {
            let alt_img = set.define_symbol("images_alt", 2048)?;
            let alt_feat = set.define_symbol("features_alt", IMAGES_PER_DPU * fpi_pad)?;
            img_base.push(alt_img.offset as u32);
            feat_base.push(alt_feat.offset as u32);
        }

        // Shared weights/LUT broadcast once for the life of the engine.
        let mut filter_wire = vec![0u8; 16 * filters];
        for (j, f) in model.filters.iter().enumerate() {
            for (r, &row) in f.rows.iter().enumerate() {
                filter_wire[j * 16 + 4 * r..j * 16 + 4 * r + 4]
                    .copy_from_slice(&u32::from(row).to_le_bytes());
            }
        }
        set.copy_to("filters", 0, &pim_host::pad_to_8(&filter_wire))?;
        let lut = BnLut::for_conv3x3(&model.bn);
        set.copy_to("lut", 0, &pim_host::pad_to_8(&lut.to_bytes()))?;
        set.load(&tier1_program(filters))?;

        // Pristine weights-loaded state. Fault-armed launches can leave
        // quarantined DPUs' MRAM corrupted (their last failed attempt is
        // kept for diagnosis); restoring this snapshot before the next
        // staging guarantees clean weight pages at O(dirty pages) cost.
        let golden = set.snapshot();
        Ok(Self {
            set,
            dpus,
            fpi,
            fpi_pad,
            img_base,
            feat_base,
            staged: vec![None; buffers],
            active: 0,
            tasklets: 1,
            golden,
        })
    }

    /// Images one batch can hold (`dpus × 16`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.dpus * IMAGES_PER_DPU
    }

    /// DPUs in the underlying set.
    #[must_use]
    pub fn dpus(&self) -> usize {
        self.dpus
    }

    /// Image/feature buffer pairs (1 = serial, 2 = double-buffered).
    #[must_use]
    pub fn buffers(&self) -> usize {
        self.img_base.len()
    }

    /// Feature bytes produced per image.
    #[must_use]
    pub fn features_per_image(&self) -> usize {
        self.fpi
    }

    /// The underlying set (engine pin, parallel threshold, trace access).
    #[must_use]
    pub fn set(&self) -> &DpuSet {
        &self.set
    }

    /// Mutable access to the underlying set.
    pub fn set_mut(&mut self) -> &mut DpuSet {
        &mut self.set
    }

    /// Restore the pristine weights-loaded state captured at build time.
    /// Staged batches are forgotten. Call after a fault-armed launch
    /// before staging the next batch.
    ///
    /// # Errors
    /// Never in practice (the snapshot matches the set by construction).
    pub fn restore_golden(&mut self) -> Result<(), HostError> {
        self.set.restore(&self.golden)?;
        for s in &mut self.staged {
            *s = None;
        }
        Ok(())
    }

    /// Arm (or disarm) the SEC-DED MRAM sidecar on every DPU, then
    /// refresh the golden snapshot: snapshots carry the ECC state and
    /// sidecar pages with them, so without the refresh the next
    /// [`Tier1Engine::restore_golden`] would silently revert the ECC
    /// setting to what it was at build time.
    pub fn enable_ecc(&mut self, on: bool) {
        self.set.enable_ecc(on);
        self.golden = self.set.snapshot();
    }

    /// Stage up to [`Tier1Engine::capacity`] pre-encoded 128-byte image
    /// slots (see [`encode_slot`]) into buffer `buf`, making it the launch
    /// target. DPUs beyond the staged chunks idle (`n_images = 0`).
    /// Returns the bytes written over the host link.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `slots` is empty or oversized, a slot is not 128 bytes, or
    /// `buf` is out of range.
    pub fn stage_encoded(&mut self, slots: &[Vec<u8>], buf: usize) -> Result<u64, HostError> {
        let live = vec![true; self.dpus];
        self.stage_encoded_live(slots, buf, &live)
    }

    /// [`Tier1Engine::stage_encoded`] restricted to the DPUs marked live:
    /// 16-image chunks land on live DPUs in index order and every other
    /// DPU idles (`n_images = 0`). The serving circuit breaker uses this
    /// to keep traffic off ejected ranks while their pages heal.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `slots` is empty or exceeds the live DPUs' capacity, `live`
    /// does not cover every DPU (or marks none live), a slot is not 128
    /// bytes, or `buf` is out of range.
    pub fn stage_encoded_live(
        &mut self,
        slots: &[Vec<u8>],
        buf: usize,
        live: &[bool],
    ) -> Result<u64, HostError> {
        assert!(!slots.is_empty(), "empty batch");
        assert_eq!(live.len(), self.dpus, "live mask must cover every DPU");
        let targets: Vec<usize> = (0..self.dpus).filter(|&d| live[d]).collect();
        assert!(!targets.is_empty(), "at least one DPU must be live");
        assert!(slots.len() <= targets.len() * IMAGES_PER_DPU, "batch exceeds live capacity");
        assert!(buf < self.buffers(), "no such buffer");
        let (img_sym, feat_sym) =
            if buf == 0 { ("images", "features") } else { ("images_alt", "features_alt") };
        let mut chunk_lens = vec![0usize; self.dpus];
        for (chunk, &d) in slots.chunks(IMAGES_PER_DPU).zip(&targets) {
            chunk_lens[d] = chunk.len();
        }
        let mut bytes = 0u64;
        for (d, &n) in chunk_lens.iter().enumerate() {
            let params =
                params_wire(n as u32, n.max(1) as u32, self.img_base[buf], self.feat_base[buf]);
            self.set.copy_to_dpu(DpuId(d as u32), "params", 0, &params)?;
            bytes += 16;
        }
        for (chunk, &d) in slots.chunks(IMAGES_PER_DPU).zip(&targets) {
            let dpu = DpuId(d as u32);
            for (i, slot) in chunk.iter().enumerate() {
                assert_eq!(slot.len(), IMAGE_SLOT_BYTES, "slot must be 128 bytes");
                self.set.copy_to_dpu(dpu, img_sym, i * IMAGE_SLOT_BYTES, slot)?;
                bytes += IMAGE_SLOT_BYTES as u64;
            }
        }
        let _ = feat_sym;
        self.tasklets = chunk_lens.iter().copied().max().unwrap_or(1).max(1);
        self.staged[buf] = Some(StagedMeta { chunk_lens });
        self.active = buf;
        Ok(bytes)
    }

    /// Binarize, pack and stage raw grayscale images (see
    /// [`Tier1Engine::stage_encoded`]).
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// See [`Tier1Engine::stage_encoded`].
    pub fn stage(
        &mut self,
        model: &EbnnModel,
        images: &[GrayImage],
        buf: usize,
    ) -> Result<u64, HostError> {
        let slots: Vec<Vec<u8>> = images.iter().map(|g| encode_slot(model, g)).collect();
        self.stage_encoded(&slots, buf)
    }

    /// Launch the most recently staged buffer's batch.
    ///
    /// # Errors
    /// The first DPU fault encountered.
    pub fn launch(&mut self) -> Result<LaunchResult, HostError> {
        self.set.launch_loaded(self.tasklets)
    }

    /// [`Tier1Engine::launch`] with per-DPU tracing.
    ///
    /// # Errors
    /// The first DPU fault encountered.
    pub fn launch_traced(&mut self) -> Result<(LaunchResult, Vec<TraceBuffer>), HostError> {
        self.set.launch_loaded_traced(self.tasklets)
    }

    /// Launch under a fault-tolerance policy (see
    /// [`pim_host::ResilientLaunchPolicy`]); quarantined DPUs' chunks are
    /// re-dispatched to survivors when the policy allows.
    ///
    /// # Errors
    /// Host-runtime staging failures (injected faults are *reported*, not
    /// returned as errors).
    pub fn launch_resilient(
        &mut self,
        policy: &pim_host::ResilientLaunchPolicy,
    ) -> Result<pim_host::LaunchReport, HostError> {
        self.set.launch_loaded_resilient(self.tasklets, policy)
    }

    /// Profile the loaded program on DPU 0 (which must have staged work),
    /// recompile its hot superblocks, and pin the compiled engine — the
    /// serving path's profile-guided warmup. Results of subsequent
    /// launches are bit-identical (the engine tier is observationally
    /// invisible); only host wall-clock changes. Returns the number of
    /// blocks hot enough to compile.
    ///
    /// # Errors
    /// Simulator faults during the profiling replay.
    pub fn recompile_hot(&mut self, min_entries: u64) -> Result<usize, HostError> {
        self.set.recompile_hot_loaded(DpuId(0), self.tasklets, min_entries)
    }

    /// Images per DPU chunk staged on `buf`, or `None` when nothing is.
    #[must_use]
    pub fn staged_chunks(&self, buf: usize) -> Option<&[usize]> {
        self.staged.get(buf).and_then(|m| m.as_ref()).map(|m| m.chunk_lens.as_slice())
    }

    /// Gather per-image features (in input order) from buffer `buf` after
    /// a launch, plus the bytes read over the host link. DPUs whose
    /// result is missing (`unserved` in a degraded resilient launch) still
    /// gather — callers that care pass the launch report to
    /// [`Tier1Engine::gather_served`] instead.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `buf` has no staged batch.
    pub fn gather(&self, buf: usize) -> Result<(Vec<Vec<u8>>, u64), HostError> {
        let meta = self.staged[buf].as_ref().expect("no batch staged on this buffer");
        let feat_sym = if buf == 0 { "features" } else { "features_alt" };
        let mut features = Vec::with_capacity(meta.chunk_lens.iter().sum());
        let mut bytes = 0u64;
        for (d, &len) in meta.chunk_lens.iter().enumerate() {
            for i in 0..len {
                let mut wire = vec![0u8; self.fpi_pad];
                self.set.copy_from_dpu(DpuId(d as u32), feat_sym, i * self.fpi_pad, &mut wire)?;
                bytes += self.fpi_pad as u64;
                features.push(wire[..self.fpi].to_vec());
            }
        }
        Ok((features, bytes))
    }

    /// [`Tier1Engine::gather`] masked by a resilient launch report:
    /// images whose chunk was never served (home DPU quarantined and not
    /// re-dispatched) come back as `None`.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `buf` has no staged batch.
    pub fn gather_served(
        &self,
        buf: usize,
        report: &pim_host::LaunchReport,
    ) -> Result<ServedFeatures, HostError> {
        let meta = self.staged[buf].as_ref().expect("no batch staged on this buffer");
        let (all, bytes) = self.gather(buf)?;
        let mut out = Vec::with_capacity(all.len());
        let mut it = all.into_iter();
        for (d, &len) in meta.chunk_lens.iter().enumerate() {
            let served = report.per_dpu.get(d).is_some_and(|r| r.result.is_some());
            for _ in 0..len {
                let f = it.next().expect("gather length matches chunks");
                out.push(if served { Some(f) } else { None });
            }
        }
        Ok((out, bytes))
    }
}

fn tier1_multi_stage(
    model: &EbnnModel,
    images: &[GrayImage],
    trace: bool,
) -> Result<Tier1Engine, HostError> {
    assert!(!images.is_empty(), "empty batch");
    let dpus = images.len().div_ceil(IMAGES_PER_DPU);
    let mut engine = Tier1Engine::with_buffers(model, dpus, 1, trace)?;
    engine.stage(model, images, 0)?;
    Ok(engine)
}

fn tier1_multi_impl(
    model: &EbnnModel,
    images: &[GrayImage],
    trace: bool,
) -> Result<TracedBatch, HostError> {
    let mut engine = tier1_multi_stage(model, images, trace)?;
    let (launch, dpu_traces) =
        if trace { engine.launch_traced()? } else { (engine.launch()?, Vec::new()) };
    let (features, _) = engine.gather(0)?;
    let host_trace = engine.set_mut().take_host_trace().unwrap_or_default();
    Ok(TracedBatch { features, launch, dpu_traces, host_trace })
}

/// Outcome of a fault-tolerant multi-DPU batch (see
/// [`run_tier1_batch_multi_dpu_resilient`]).
#[derive(Debug, Clone)]
pub struct ResilientBatch {
    /// Per-image features in input order — identical to what
    /// [`run_tier1_batch_multi_dpu`] returns, even when some images were
    /// computed on a stand-in DPU.
    pub features: Vec<Vec<u8>>,
    /// The full fault-tolerance record: per-DPU attempts, injected
    /// faults, quarantines and re-dispatches.
    pub report: pim_host::LaunchReport,
    /// Input-order indices of images whose home DPU was quarantined and
    /// whose features therefore came from a surviving DPU.
    pub redispatched_images: Vec<usize>,
}

/// Fault-tolerant variant of [`run_tier1_batch_multi_dpu`]: runs the same
/// staged batch under a [`pim_host::ResilientLaunchPolicy`]. A DPU that
/// keeps faulting is quarantined and its 16-image chunk is recomputed on a
/// surviving DPU, so the returned features are complete and correct as
/// long as at least one DPU survives.
///
/// # Errors
/// Host-runtime staging failures, or — when even re-dispatch could not
/// serve some chunk — the last per-DPU error from the report.
///
/// # Panics
/// When `images` is empty or the model has more than 8 filters.
pub fn run_tier1_batch_multi_dpu_resilient(
    model: &EbnnModel,
    images: &[GrayImage],
    policy: &pim_host::ResilientLaunchPolicy,
) -> Result<ResilientBatch, HostError> {
    let mut engine = tier1_multi_stage(model, images, false)?;
    let report = engine.launch_resilient(policy)?;
    if !report.fully_served() {
        return Err(report
            .per_dpu
            .iter()
            .find_map(|r| if r.result.is_none() { r.last_error.clone() } else { None })
            .unwrap_or(HostError::WorkerPanic {
                detail: "unserved DPU carried no error".to_owned(),
            }));
    }
    let (features, _) = engine.gather(0)?;
    let chunks = engine.staged_chunks(0).expect("batch staged").to_vec();
    let redispatched_images = report
        .degraded
        .iter()
        .flat_map(|d| {
            let q = d.from.0 as usize;
            let start = q * IMAGES_PER_DPU;
            start..start + chunks[q]
        })
        .collect();
    Ok(ResilientBatch { features, report, redispatched_images })
}

#[cfg(test)]
mod multi_dpu_tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn forty_images_across_three_dpus() {
        let m = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
        let imgs: Vec<_> =
            (0..40).map(|i| crate::mnist::synth_digit(i % 10, (i / 10) as u64)).collect();
        let (features, result) = run_tier1_batch_multi_dpu(&m, &imgs).unwrap();
        assert_eq!(result.per_dpu.len(), 3);
        for (i, img) in imgs.iter().enumerate() {
            assert_eq!(features[i], m.features(&m.binarize(&img.pixels)), "image {i}");
        }
        // The partially-filled third DPU finishes no later than a full one.
        let c: Vec<u64> = result.per_dpu.iter().map(|r| r.cycles).collect();
        assert!(c[2] <= c[0]);
    }
}

#[cfg(test)]
mod traced_tests {
    use super::*;
    use crate::model::ModelConfig;
    use pim_trace::TraceEvent;

    #[test]
    fn traced_multi_dpu_run_is_identical_and_fully_traced() {
        let m = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
        let imgs: Vec<_> =
            (0..24).map(|i| crate::mnist::synth_digit(i % 10, (i / 10) as u64)).collect();
        let (features, launch) = run_tier1_batch_multi_dpu(&m, &imgs).unwrap();
        let traced = run_tier1_batch_multi_dpu_traced(&m, &imgs).unwrap();
        // Tracing is observational: same features, same cycle counts.
        assert_eq!(traced.features, features);
        assert_eq!(traced.launch, launch);
        assert_eq!(traced.dpu_traces.len(), 2);
        for (d, buf) in traced.dpu_traces.iter().enumerate() {
            assert_eq!(
                buf.count_matching(|e| matches!(e, TraceEvent::KernelLaunch { .. })),
                1,
                "DPU {d}"
            );
            assert!(
                buf.count_matching(|e| matches!(e, TraceEvent::DmaTransfer { .. })) > 0,
                "DPU {d} moved images and features over DMA"
            );
            assert_eq!(buf.max_end_cycle(), launch.per_dpu[d].cycles, "DPU {d}");
        }
        // Host log covers broadcast + scatter + gather, in order.
        assert!(!traced.host_trace.is_empty());
        let gathers = traced.host_trace.count_matching(|e| {
            matches!(
                e,
                TraceEvent::HostTransfer { direction: pim_trace::HostDirection::MramToHost, .. }
            )
        });
        assert_eq!(gathers, imgs.len());
    }

    #[test]
    fn traced_single_dpu_matches_untraced() {
        let m = EbnnModel::generate(ModelConfig { filters: 1, ..ModelConfig::default() });
        let imgs: Vec<_> = (0..4).map(|i| crate::mnist::synth_digit(i, 1)).collect();
        let (features, launch) = run_tier1_batch_with_tasklets(&m, &imgs, 2).unwrap();
        let traced = run_tier1_batch_traced(&m, &imgs, 2).unwrap();
        assert_eq!(traced.features, features);
        assert_eq!(traced.launch, launch);
        assert_eq!(traced.dpu_traces.len(), 1);
        assert_eq!(traced.dpu_traces[0].dma_bytes(), launch.per_dpu[0].dma_bytes);
    }
}
