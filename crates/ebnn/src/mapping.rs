//! The multi-image-per-DPU mapping and end-to-end orchestration (§4.1.3).
//!
//! The pipeline reproduces the paper's flow:
//!
//! 1. the host binarizes and bit-packs the images, groups them into batches
//!    of at most [`crate::IMAGES_PER_DPU`] (= 16, the 2048-byte DMA cap),
//!    and scatters one batch per DPU
//!    (`dpu_prepare_xfer`/`dpu_push_xfer`);
//! 2. the LUT (when enabled) is broadcast to every DPU;
//! 3. each DPU copies its batch MRAM→WRAM with a single DMA transfer and
//!    runs one tasklet per image through the Convolution-Pool block;
//! 4. feature maps return to MRAM; the host gathers them and runs the
//!    softmax head serially per image;
//! 5. the report carries the DPU makespan (all DPUs run concurrently), the
//!    merged subroutine profile, and the host-side classification time.

use crate::dpu_kernel::{conv_pool_block, BnMode, KernelOutput};
use crate::lut::BnLut;
use crate::mnist::GrayImage;
use crate::model::EbnnModel;
use crate::IMAGES_PER_DPU;
use dpu_sim::cost::KernelEstimate;
use dpu_sim::{DpuId, DpuParams, Profiler};
use pim_host::{DpuSet, HostError, KernelRun, OptLevel, PaddedBuf, XferBatch};

/// Whether the BN-BinAct block runs in floating point inside the DPU or
/// via the host-built LUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnPlacement {
    /// Float BN inside the DPU (Fig. 4.2(a)).
    DpuFloat,
    /// LUT built on the host, looked up in the DPU (Fig. 4.2(b)).
    HostLut,
}

/// End-to-end eBNN inference pipeline over a simulated DPU set.
#[derive(Debug, Clone)]
pub struct EbnnPipeline {
    /// The model.
    pub model: EbnnModel,
    /// Device parameters.
    pub params: DpuParams,
    /// Compiler optimization level for the DPU program.
    pub opt: OptLevel,
    /// Tasklets per DPU (the paper uses 16: one per image).
    pub tasklets: usize,
    /// BN placement.
    pub placement: BnPlacement,
}

impl EbnnPipeline {
    /// A pipeline with the paper's defaults: 16 tasklets, LUT placement,
    /// `-O0` (the configuration of the Fig. 4.4 comparison).
    #[must_use]
    pub fn new(model: EbnnModel) -> Self {
        Self {
            model,
            params: DpuParams::default(),
            opt: OptLevel::O0,
            tasklets: IMAGES_PER_DPU,
            placement: BnPlacement::HostLut,
        }
    }

    /// Switch BN placement (builder style).
    #[must_use]
    pub fn with_placement(mut self, placement: BnPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Switch tasklet count (builder style).
    ///
    /// # Panics
    /// When outside `1..=24`.
    #[must_use]
    pub fn with_tasklets(mut self, tasklets: usize) -> Self {
        assert!((1..=24).contains(&tasklets), "tasklets must be 1..=24");
        self.tasklets = tasklets;
        self
    }

    /// Switch optimization level (builder style).
    #[must_use]
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Run inference over a batch of grayscale images.
    ///
    /// # Errors
    /// Host-runtime failures (allocation, transfer, symbol) — none occur
    /// for well-formed inputs.
    pub fn infer(&self, images: &[GrayImage]) -> Result<InferenceReport, HostError> {
        assert!(!images.is_empty(), "empty batch");
        let image_bytes = crate::IMAGE_SLOT_BYTES;
        let batch_cap = IMAGES_PER_DPU;
        let dpus = images.len().div_ceil(batch_cap);
        let features = EbnnModel::feature_count(&self.model.config);
        let feat_wire = KernelOutput::wire_bytes(features);

        let mut set = DpuSet::allocate_with(dpus, self.params)?;
        set.define_symbol("images", batch_cap * image_bytes)?;
        set.define_symbol("n_images", 8)?;
        set.define_symbol("lut", crate::align_up8(19 * self.model.config.filters))?;
        set.define_symbol("features", batch_cap * feat_wire)?;

        // 1. Scatter image batches (prepare/push protocol).
        let packed: Vec<crate::bconv::BinaryImage> =
            images.iter().map(|g| self.model.binarize(&g.pixels)).collect();
        let mut batch = XferBatch::new();
        let mut batch_sizes = Vec::with_capacity(dpus);
        for chunk in packed.chunks(batch_cap) {
            let mut buf = Vec::with_capacity(batch_cap * image_bytes);
            for img in chunk {
                let mut slot = img.to_bytes();
                slot.resize(image_bytes, 0);
                buf.extend_from_slice(&slot);
            }
            batch_sizes.push(chunk.len());
            buf.resize(batch_cap * image_bytes, 0);
            batch.prepare(buf);
        }
        batch.push(&mut set, "images", 0, batch_cap * image_bytes)?;

        // 2. Broadcast the LUT and per-DPU image counts.
        let lut = BnLut::for_conv3x3(&self.model.bn);
        if self.placement == BnPlacement::HostLut {
            let wire = PaddedBuf::new(&lut.to_bytes());
            set.copy_to("lut", 0, &wire.data)?;
        }
        for (i, &n) in batch_sizes.iter().enumerate() {
            set.copy_to_dpu(DpuId(i as u32), "n_images", 0, &(n as u64).to_le_bytes())?;
        }

        // 3. Per-DPU kernel execution with cycle accounting.
        let mut per_dpu = Vec::with_capacity(dpus);
        let mut profile = Profiler::new();
        let lut_bytes = lut.to_bytes().len();
        for (d, chunk) in packed.chunks(batch_cap).enumerate() {
            let mut run = KernelRun::new(self.params, self.opt, self.tasklets);
            // Batch DMA MRAM→WRAM: one transfer, issued by tasklet 0
            // (≤ 2048 B — the constraint that caps batches at 16 images).
            run.charge_dma(0, chunk.len() * image_bytes);
            if self.placement == BnPlacement::HostLut {
                run.charge_dma(0, crate::align_up8(lut_bytes));
            }
            let mut outputs: Vec<KernelOutput> = Vec::with_capacity(chunk.len());
            for (i, img) in chunk.iter().enumerate() {
                let t = i % self.tasklets;
                let mode = match self.placement {
                    BnPlacement::DpuFloat => BnMode::Float(&self.model.bn),
                    BnPlacement::HostLut => BnMode::Lut(&lut),
                };
                let out =
                    conv_pool_block(img, &self.model.filters, mode, run.tally(t), &mut profile);
                // Feature write-back WRAM→MRAM, charged to the tasklet.
                run.charge_dma(t, feat_wire);
                outputs.push(out);
            }
            // 4. Features land in MRAM for the host to gather.
            for (i, out) in outputs.iter().enumerate() {
                set.copy_to_dpu(DpuId(d as u32), "features", i * feat_wire, &out.to_wire())?;
            }
            per_dpu.push(run.estimate());
        }

        // 5. Host gathers features and classifies serially (§4.1.3).
        let host_start = std::time::Instant::now();
        let mut predictions = Vec::with_capacity(images.len());
        for (d, &n) in batch_sizes.iter().enumerate() {
            for i in 0..n {
                let mut wire = vec![0u8; feat_wire];
                set.copy_from_dpu(DpuId(d as u32), "features", i * feat_wire, &mut wire)?;
                let out = KernelOutput::from_wire(&wire, features);
                predictions.push(self.model.classifier.predict(&out.features));
            }
        }
        let host_seconds = host_start.elapsed().as_secs_f64();

        let makespan_cycles = per_dpu.iter().map(|e| e.cycles).max().unwrap_or(0);
        Ok(InferenceReport {
            predictions,
            dpus_used: dpus,
            per_dpu,
            makespan_cycles,
            dpu_seconds: self.params.cycles_to_seconds(makespan_cycles),
            host_seconds,
            profile,
            mram_residency: set.system().mram_residency(),
        })
    }
}

/// Everything one inference run produced.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Predicted class per input image.
    pub predictions: Vec<usize>,
    /// Number of DPUs the batch was spread over.
    pub dpus_used: usize,
    /// Per-DPU cycle estimates.
    pub per_dpu: Vec<KernelEstimate>,
    /// Cycles until the slowest DPU finished.
    pub makespan_cycles: u64,
    /// DPU completion time in seconds.
    pub dpu_seconds: f64,
    /// Host-side gather + softmax time (wall clock).
    pub host_seconds: f64,
    /// Merged subroutine profile across all DPUs.
    pub profile: Profiler,
    /// COW MRAM arena accounting at gather time: what the batch actually
    /// cost in host memory (broadcast LUT pages stored once) vs the dense
    /// `dpus × 64 MiB` it addresses.
    pub mram_residency: dpu_sim::MramResidency,
}

impl InferenceReport {
    /// End-to-end completion time: concurrent DPUs, then serial host work.
    #[must_use]
    pub fn completion_seconds(&self) -> f64 {
        self.dpu_seconds + self.host_seconds
    }

    /// Throughput in frames per second of DPU time.
    #[must_use]
    pub fn frames_per_second(&self) -> f64 {
        self.predictions.len() as f64 / self.dpu_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::synth_digit;
    use crate::model::ModelConfig;

    fn small_model() -> EbnnModel {
        EbnnModel::generate(ModelConfig { filters: 4, ..ModelConfig::default() })
    }

    fn batch(n: usize) -> Vec<GrayImage> {
        (0..n).map(|i| synth_digit(i % 10, (i / 10) as u64)).collect()
    }

    #[test]
    fn predictions_match_host_reference() {
        let model = small_model();
        let imgs = batch(4);
        let pipe = EbnnPipeline::new(model.clone());
        let rep = pipe.infer(&imgs).unwrap();
        for (img, &pred) in imgs.iter().zip(&rep.predictions) {
            let expected = model.predict(&model.binarize(&img.pixels));
            assert_eq!(pred, expected);
        }
    }

    #[test]
    fn float_and_lut_agree_functionally() {
        let model = small_model();
        let imgs = batch(3);
        let lut = EbnnPipeline::new(model.clone()).infer(&imgs).unwrap();
        let float =
            EbnnPipeline::new(model).with_placement(BnPlacement::DpuFloat).infer(&imgs).unwrap();
        assert_eq!(lut.predictions, float.predictions);
    }

    #[test]
    fn lut_is_faster_than_float_bn() {
        let model = small_model();
        let imgs = batch(16);
        let lut = EbnnPipeline::new(model.clone()).infer(&imgs).unwrap();
        let float =
            EbnnPipeline::new(model).with_placement(BnPlacement::DpuFloat).infer(&imgs).unwrap();
        let speedup = float.dpu_seconds / lut.dpu_seconds;
        assert!(speedup > 1.2, "LUT speedup {speedup:.2} too small");
    }

    #[test]
    fn batches_spill_over_dpus() {
        let model = small_model();
        let rep = EbnnPipeline::new(model).infer(&batch(20)).unwrap();
        assert_eq!(rep.dpus_used, 2);
        assert_eq!(rep.predictions.len(), 20);
        assert_eq!(rep.per_dpu.len(), 2);
        // Second DPU has fewer images, so it finishes no later.
        assert!(rep.per_dpu[1].cycles <= rep.per_dpu[0].cycles);
        // The COW arena stores only touched pages, not 2 x 64 MiB.
        let res = rep.mram_residency;
        assert_eq!(res.logical_bytes, 2 * 64 * 1024 * 1024);
        assert!(res.resident_bytes < res.logical_bytes / 100);
    }

    #[test]
    fn profile_reflects_placement() {
        let model = small_model();
        let imgs = batch(2);
        let lut = EbnnPipeline::new(model.clone()).infer(&imgs).unwrap();
        assert_eq!(lut.profile.distinct_float_subroutines(), 0);
        let float =
            EbnnPipeline::new(model).with_placement(BnPlacement::DpuFloat).infer(&imgs).unwrap();
        assert!(float.profile.distinct_float_subroutines() >= 8);
    }
}
