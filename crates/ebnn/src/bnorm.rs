//! BatchNorm + BinaryActivation — the floating-point block the LUT rewrite
//! removes from the DPU.
//!
//! The paper's Algorithm 1 spells the per-filter BN computation out as five
//! weight arrays `W0..W4` applied to a pooled pre-activation `i`:
//!
//! ```text
//! tmp = ((((i + W0[j]) − W1[j]) / W2[j]) * W3[j]) + W4[j]
//! out = if tmp >= 0 { 1 } else { 0 }              (BinaryActivation)
//! ```
//!
//! (`W0` folds the conv bias, `W1` the running mean, `W2` the running
//! standard deviation, `W3` the learned gamma, `W4` the learned beta.)

use serde::{Deserialize, Serialize};

/// Per-filter BatchNorm parameters (the paper's `W0..W4`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm {
    /// Conv bias folded into BN (`W0`).
    pub w0: Vec<f32>,
    /// Running mean (`W1`).
    pub w1: Vec<f32>,
    /// Running standard deviation (`W2`, strictly positive).
    pub w2: Vec<f32>,
    /// Learned scale gamma (`W3`).
    pub w3: Vec<f32>,
    /// Learned shift beta (`W4`).
    pub w4: Vec<f32>,
}

impl BatchNorm {
    /// Build from per-filter parameter rows.
    ///
    /// # Panics
    /// When the arrays disagree in length or any `w2` is not positive.
    #[must_use]
    pub fn new(w0: Vec<f32>, w1: Vec<f32>, w2: Vec<f32>, w3: Vec<f32>, w4: Vec<f32>) -> Self {
        let n = w0.len();
        assert!(
            w1.len() == n && w2.len() == n && w3.len() == n && w4.len() == n,
            "BatchNorm parameter arrays must agree in length"
        );
        assert!(w2.iter().all(|&s| s > 0.0), "standard deviations must be positive");
        Self { w0, w1, w2, w3, w4 }
    }

    /// Number of filters.
    #[must_use]
    pub fn filters(&self) -> usize {
        self.w0.len()
    }

    /// The normalized (pre-activation) value for filter `j` — Algorithm 1
    /// lines 9–13, evaluated exactly as written (no algebraic fusing, so the
    /// LUT built from this function matches bit-for-bit).
    ///
    /// # Panics
    /// When `j` is out of range.
    #[must_use]
    pub fn normalize(&self, x: i32, j: usize) -> f32 {
        let mut tmp = x as f32;
        tmp += self.w0[j];
        tmp -= self.w1[j];
        tmp /= self.w2[j];
        tmp *= self.w3[j];
        tmp += self.w4[j];
        tmp
    }

    /// BatchNorm followed by BinaryActivation — Algorithm 1 lines 9–17.
    ///
    /// # Panics
    /// When `j` is out of range.
    #[must_use]
    pub fn bn_binact(&self, x: i32, j: usize) -> u8 {
        u8::from(self.normalize(x, j) >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simple() -> BatchNorm {
        BatchNorm::new(
            vec![0.5, -1.0],
            vec![0.0, 2.0],
            vec![1.0, 4.0],
            vec![1.0, -1.0],
            vec![0.0, 0.25],
        )
    }

    #[test]
    fn normalize_follows_algorithm_1_order() {
        let bn = simple();
        // filter 0: ((3 + 0.5 - 0) / 1) * 1 + 0 = 3.5
        assert_eq!(bn.normalize(3, 0), 3.5);
        // filter 1: ((3 - 1 - 2) / 4) * -1 + 0.25 = 0.25
        assert_eq!(bn.normalize(3, 1), 0.25);
    }

    #[test]
    fn binact_thresholds_at_zero() {
        let bn = simple();
        assert_eq!(bn.bn_binact(3, 0), 1);
        assert_eq!(bn.bn_binact(-9, 0), 0);
        // Exactly zero activates (>= 0).
        let bn0 = BatchNorm::new(vec![0.0], vec![0.0], vec![1.0], vec![1.0], vec![0.0]);
        assert_eq!(bn0.bn_binact(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_std_rejected() {
        let _ = BatchNorm::new(vec![0.0], vec![0.0], vec![0.0], vec![1.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "agree in length")]
    fn ragged_params_rejected() {
        let _ = BatchNorm::new(vec![0.0, 1.0], vec![0.0], vec![1.0], vec![1.0], vec![0.0]);
    }

    proptest! {
        /// BinAct is monotone in x when the effective slope (w3/w2) is
        /// positive: larger pre-activations can only turn 0→1.
        #[test]
        fn monotone_for_positive_gain(
            w0 in -4.0f32..4.0, w1 in -4.0f32..4.0,
            w2 in 0.5f32..4.0, w3 in 0.1f32..4.0, w4 in -4.0f32..4.0,
            x in -9i32..9,
        ) {
            let bn = BatchNorm::new(vec![w0], vec![w1], vec![w2], vec![w3], vec![w4]);
            prop_assert!(bn.bn_binact(x + 1, 0) >= bn.bn_binact(x, 0));
        }
    }
}
