//! Deep (multi-block) eBNN — the depth extension the paper's future work
//! calls for (§6.1: "CNNs from AlexNet to ResNet or choosing a CNN such as
//! eBNN and going from small image sizes to larger sizes ... The more CNNs
//! are tested in UPMEM's system the more conclusions could be made").
//!
//! The paper's implementation uses a single Convolution-Pool block; the
//! original eBNN architecture stacks several. This module generalizes the
//! binary pipeline to multi-channel feature maps so blocks compose:
//!
//! ```text
//! 28×28×1 → [conv3×3 ×F₁, pool2, BN-BinAct] → 14×14×F₁
//!         → [conv3×3 ×F₂, pool2, BN-BinAct] → 7×7×F₂ → … → classifier
//! ```
//!
//! A C-channel binary convolution sums XNOR-popcounts over channels, so the
//! pre-activation range is `[-9·C, 9·C]` and each block's LUT has
//! `18·C + 1` rows — the LUT construction (Algorithm 1) scales with fan-in
//! exactly as the paper describes ("the range of the input values are
//! dependant on only the filter size").

use crate::bconv::BinaryFilter;
use crate::bnorm::BatchNorm;
use crate::lut::BnLut;
use crate::softmax::Classifier;
use crate::{CLASSES, IMAGE_DIM};
use dpu_sim::cost::OpCounts;
use dpu_sim::{Profiler, Subroutine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bit-packed multi-channel binary feature map (`dim ≤ 32`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryFeatureMap {
    /// Channels.
    pub channels: usize,
    /// Spatial edge length.
    pub dim: usize,
    /// `channels × dim` packed rows; bit `c` of `rows[ch*dim + r]` is
    /// pixel `(r, c)` of channel `ch`.
    pub rows: Vec<u32>,
}

impl BinaryFeatureMap {
    /// An all-(-1) map.
    #[must_use]
    pub fn zeros(channels: usize, dim: usize) -> Self {
        assert!(dim <= 32, "packed rows hold at most 32 pixels");
        Self { channels, dim, rows: vec![0; channels * dim] }
    }

    /// Wrap a single-channel image.
    #[must_use]
    pub fn from_image(img: &crate::bconv::BinaryImage) -> Self {
        assert!(img.width <= 32, "packed rows hold at most 32 pixels");
        Self { channels: 1, dim: img.width, rows: img.rows.clone() }
    }

    /// Bit at `(channel, row, col)` as 0/1.
    ///
    /// # Panics
    /// When out of bounds.
    #[must_use]
    pub fn bit(&self, channel: usize, row: usize, col: usize) -> u8 {
        assert!(channel < self.channels && row < self.dim && col < self.dim);
        ((self.rows[channel * self.dim + row] >> col) & 1) as u8
    }

    /// Set bit at `(channel, row, col)`.
    ///
    /// # Panics
    /// When out of bounds.
    pub fn set_bit(&mut self, channel: usize, row: usize, col: usize, v: u8) {
        assert!(channel < self.channels && row < self.dim && col < self.dim);
        let w = &mut self.rows[channel * self.dim + row];
        if v != 0 {
            *w |= 1 << col;
        } else {
            *w &= !(1 << col);
        }
    }

    /// Flatten to 0/1 features, `[channel][row][col]` order.
    #[must_use]
    pub fn to_bits(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.channels * self.dim * self.dim);
        for ch in 0..self.channels {
            for r in 0..self.dim {
                for c in 0..self.dim {
                    out.push(self.bit(ch, r, c));
                }
            }
        }
        out
    }

    /// Bytes of the packed representation.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.rows.len() * 4
    }
}

/// A multi-channel 3×3 binary filter: one [`BinaryFilter`] per input
/// channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepFilter {
    /// Per-channel 3×3 kernels.
    pub per_channel: Vec<BinaryFilter>,
}

impl DeepFilter {
    /// Pre-activation range bound for `channels` inputs: `±9·channels`.
    #[must_use]
    pub fn range(channels: usize) -> i32 {
        9 * channels as i32
    }
}

/// One Convolution-Pool-BN-BinAct block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeepBlock {
    /// Input channels the block expects.
    pub in_channels: usize,
    /// Filters (output channels).
    pub filters: Vec<DeepFilter>,
    /// BatchNorm parameters (one set per filter).
    pub bn: BatchNorm,
    /// Host-built LUT over the block's pre-activation range.
    pub lut: BnLut,
}

impl DeepBlock {
    /// The conv sum at `(row, col)` for `filter`, packed-row path.
    fn conv_at(&self, input: &BinaryFeatureMap, filter: usize, row: usize, col: usize) -> i32 {
        let f = &self.filters[filter];
        let mut sum = 0i32;
        for ch in 0..self.in_channels {
            let k = &f.per_channel[ch];
            let mut matches = 0u32;
            for fr in 0..3 {
                let ir = row as isize + fr as isize - 1;
                let packed = if ir < 0 || ir >= input.dim as isize {
                    0u32
                } else {
                    input.rows[ch * input.dim + ir as usize]
                };
                let window = ((u64::from(packed) << 1) >> col) as u32 & 0b111;
                let xnor = !(window ^ u32::from(k.rows[fr])) & 0b111;
                matches += xnor.count_ones();
            }
            sum += 2 * matches as i32 - 9;
        }
        sum
    }

    /// Run the block: conv → 2×2 max-pool → LUT activation. Charges the
    /// Tier-2 tally and profile exactly like the single-block kernel.
    ///
    /// # Panics
    /// When the input shape mismatches the block.
    #[must_use]
    pub fn forward(
        &self,
        input: &BinaryFeatureMap,
        tally: &mut OpCounts,
        profile: &mut Profiler,
    ) -> BinaryFeatureMap {
        assert_eq!(input.channels, self.in_channels, "channel mismatch");
        assert!(input.dim >= 2, "block needs at least a 2x2 input");
        let out_dim = input.dim / 2;
        let mut out = BinaryFeatureMap::zeros(self.filters.len(), out_dim);
        for (j, _) in self.filters.iter().enumerate() {
            tally.load += 3 * self.in_channels as u64; // filter rows
            for pr in 0..out_dim {
                for pc in 0..out_dim {
                    tally.loops += 1;
                    let mut best = i32::MIN;
                    for dr in 0..2 {
                        for dc in 0..2 {
                            let v = self.conv_at(input, j, 2 * pr + dr, 2 * pc + dc);
                            // Per window per channel: 3 row loads + shift/
                            // mask/xnor/popcount + combine.
                            tally.load += 3 * self.in_channels as u64;
                            tally.alu += (4 * 3 + 4) * self.in_channels as u64;
                            best = best.max(v);
                            tally.alu += 1;
                        }
                    }
                    // Output indexing multiply + LUT access.
                    profile.record(Subroutine::Mulsi3);
                    tally.mul32 += 1;
                    tally.alu += 2;
                    tally.load += 1;
                    tally.store += 1;
                    out.set_bit(j, pr, pc, self.lut.lookup(best, j));
                }
            }
        }
        out
    }
}

/// Configuration of a deep eBNN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepConfig {
    /// Filters per block (length = depth). 28×28 inputs support up to 4
    /// blocks (28 → 14 → 7 → 3 → 1).
    pub filters: Vec<usize>,
    /// Weight seed.
    pub seed: u64,
    /// Binarization threshold.
    pub threshold: u8,
}

impl Default for DeepConfig {
    fn default() -> Self {
        // Arbitrary constant, but not interchangeable: the prototype
        // classifier's accuracy on the synthetic digits varies by seed,
        // and this one gives a clearly-above-chance default model under
        // the vendored offline RNG stream.
        Self { filters: vec![8, 16], seed: 0x174, threshold: 128 }
    }
}

/// A deep eBNN: stacked blocks + prototype classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeepEbnn {
    /// Configuration.
    pub config: DeepConfig,
    /// The blocks, in order.
    pub blocks: Vec<DeepBlock>,
    /// Classifier over the final map's bits.
    pub classifier: Classifier,
}

impl DeepEbnn {
    /// Spatial edge after each block for a 28×28 input.
    #[must_use]
    pub fn dims(depth: usize) -> Vec<usize> {
        let mut d = IMAGE_DIM;
        (0..depth)
            .map(|_| {
                d /= 2;
                d
            })
            .collect()
    }

    /// Generate a deep model from the config seed (prototype-fitted
    /// classifier, like the single-block model).
    ///
    /// # Panics
    /// When the depth would shrink the map below 1×1 or the config is
    /// empty.
    #[must_use]
    pub fn generate(config: DeepConfig) -> Self {
        assert!(!config.filters.is_empty(), "at least one block");
        assert!(config.filters.len() <= 4, "28x28 inputs support at most 4 blocks");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut blocks = Vec::with_capacity(config.filters.len());
        let mut in_channels = 1usize;
        for &f_count in &config.filters {
            let filters: Vec<DeepFilter> = (0..f_count)
                .map(|_| DeepFilter {
                    per_channel: (0..in_channels)
                        .map(|_| BinaryFilter::from_u16(rng.gen_range(0..512)))
                        .collect(),
                })
                .collect();
            let range = DeepFilter::range(in_channels);
            // BN parameters scaled to the wider pre-activation range so
            // activations stay balanced at any depth.
            let spread = range as f32;
            let bn = BatchNorm::new(
                (0..f_count).map(|_| rng.gen_range(-spread / 8.0..spread / 8.0)).collect(),
                (0..f_count).map(|_| rng.gen_range(-spread / 4.0..spread / 4.0)).collect(),
                (0..f_count).map(|_| rng.gen_range(spread / 8.0..spread / 2.0)).collect(),
                (0..f_count).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect(),
                (0..f_count).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            );
            let lut = BnLut::build(&bn, -range, range);
            blocks.push(DeepBlock { in_channels, filters, bn, lut });
            in_channels = f_count;
        }

        // Prototype classifier over the final feature map.
        let mut model = Self {
            config: config.clone(),
            blocks,
            classifier: Classifier::new(1, vec![0; CLASSES]),
        };
        let mut protos: [Vec<u8>; CLASSES] = Default::default();
        for (c, proto) in protos.iter_mut().enumerate() {
            let t = crate::mnist::class_template(c);
            *proto = model.features_untallied(&t.pixels);
        }
        model.classifier = Classifier::from_prototypes(&protos);
        model
    }

    /// Forward pass to the final binary features, charging `tally` and
    /// `profile`.
    #[must_use]
    pub fn features(&self, pixels: &[u8], tally: &mut OpCounts, profile: &mut Profiler) -> Vec<u8> {
        let img = crate::bconv::BinaryImage::from_gray(
            pixels,
            IMAGE_DIM,
            IMAGE_DIM,
            self.config.threshold,
        );
        let mut map = BinaryFeatureMap::from_image(&img);
        for block in &self.blocks {
            map = block.forward(&map, tally, profile);
        }
        map.to_bits()
    }

    /// Forward pass without cost accounting (host reference).
    #[must_use]
    pub fn features_untallied(&self, pixels: &[u8]) -> Vec<u8> {
        let mut t = OpCounts::default();
        let mut p = Profiler::new();
        self.features(pixels, &mut t, &mut p)
    }

    /// Predict the class of a grayscale image.
    #[must_use]
    pub fn predict(&self, pixels: &[u8]) -> usize {
        self.classifier.predict(&self.features_untallied(pixels))
    }

    /// Feature count of the final map.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        let dims = Self::dims(self.config.filters.len());
        let last = *dims.last().expect("at least one block");
        self.config.filters.last().unwrap() * last * last
    }

    /// Total WRAM bytes the model's working set needs (packed feature maps
    /// of the widest layer transition + LUTs) — the §6.1 feasibility
    /// criterion.
    #[must_use]
    pub fn working_set_bytes(&self) -> usize {
        let mut max_transition = 0usize;
        let mut dim = IMAGE_DIM;
        let mut channels = 1usize;
        for (block, &f) in self.blocks.iter().zip(&self.config.filters) {
            let in_bytes = channels * dim * 4;
            let out_bytes = f * (dim / 2) * 4;
            max_transition = max_transition.max(in_bytes + out_bytes + block.lut.len());
            dim /= 2;
            channels = f;
        }
        max_transition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::synth_digit;

    #[test]
    fn feature_map_bit_round_trip() {
        let mut m = BinaryFeatureMap::zeros(2, 8);
        m.set_bit(1, 3, 5, 1);
        assert_eq!(m.bit(1, 3, 5), 1);
        assert_eq!(m.bit(0, 3, 5), 0);
        m.set_bit(1, 3, 5, 0);
        assert_eq!(m.bit(1, 3, 5), 0);
    }

    #[test]
    fn dims_shrink_by_half() {
        assert_eq!(DeepEbnn::dims(4), vec![14, 7, 3, 1]);
    }

    #[test]
    fn two_block_model_runs_and_shapes_match() {
        let m = DeepEbnn::generate(DeepConfig::default());
        let f = m.features_untallied(&synth_digit(3, 0).pixels);
        assert_eq!(f.len(), 16 * 7 * 7);
        assert_eq!(f.len(), m.feature_count());
        assert!(f.iter().all(|&b| b <= 1));
    }

    #[test]
    fn single_block_deep_model_matches_flat_model_structure() {
        // A 1-block DeepEbnn has the same feature geometry as EbnnModel.
        let m = DeepEbnn::generate(DeepConfig { filters: vec![8], ..DeepConfig::default() });
        assert_eq!(m.feature_count(), 8 * 14 * 14);
    }

    #[test]
    fn deeper_models_cost_more_in_first_blocks_but_shrink() {
        let shallow = DeepEbnn::generate(DeepConfig { filters: vec![8], ..DeepConfig::default() });
        let deep =
            DeepEbnn::generate(DeepConfig { filters: vec![8, 16, 32], ..DeepConfig::default() });
        let px = synth_digit(1, 0).pixels;
        let mut ts = OpCounts::default();
        let mut ps = Profiler::new();
        let _ = shallow.features(&px, &mut ts, &mut ps);
        let mut td = OpCounts::default();
        let mut pd = Profiler::new();
        let _ = deep.features(&px, &mut td, &mut pd);
        assert!(td.arith_ops() > ts.arith_ops(), "depth adds work");
    }

    #[test]
    fn deep_classifier_beats_chance() {
        let m = DeepEbnn::generate(DeepConfig::default());
        let mut hits = 0;
        for c in 0..CLASSES {
            for i in 0..3 {
                if m.predict(&synth_digit(c, i).pixels) == c {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 12, "deep model accuracy too low: {hits}/30");
    }

    #[test]
    fn activations_stay_balanced_at_depth() {
        let m =
            DeepEbnn::generate(DeepConfig { filters: vec![8, 16, 16], ..DeepConfig::default() });
        let f = m.features_untallied(&synth_digit(7, 2).pixels);
        let ones = f.iter().filter(|&&b| b == 1).count();
        assert!(ones > 0 && ones < f.len(), "degenerate deep activations: {ones}/{}", f.len());
    }

    #[test]
    fn lut_ranges_scale_with_fanin() {
        let m = DeepEbnn::generate(DeepConfig { filters: vec![4, 8], ..DeepConfig::default() });
        assert_eq!(m.blocks[0].lut.min, -9);
        assert_eq!(m.blocks[0].lut.max, 9);
        assert_eq!(m.blocks[1].lut.min, -36); // 4 input channels
        assert_eq!(m.blocks[1].lut.max, 36);
    }

    #[test]
    fn working_set_reflects_widest_transition() {
        let m = DeepEbnn::generate(DeepConfig { filters: vec![8, 16], ..DeepConfig::default() });
        let ws = m.working_set_bytes();
        // Block 2 transition: 8ch x 14 rows in + 16ch x 7 rows out + LUT.
        assert!(ws >= 8 * 14 * 4 + 16 * 7 * 4);
        assert!(ws < 64 * 1024, "fits WRAM");
    }
}

/// End-to-end deep eBNN inference over a simulated DPU set, using the same
/// multi-image-per-DPU orchestration as the single-block pipeline: image
/// batches scattered to MRAM, per-tasklet block execution with cycle
/// accounting, per-block LUT broadcast, feature transport back through
/// MRAM, host-side classification.
#[derive(Debug, Clone)]
pub struct DeepPipeline {
    /// The deep model.
    pub model: DeepEbnn,
    /// Device parameters.
    pub params: dpu_sim::DpuParams,
    /// Compiler optimization level for the DPU program.
    pub opt: pim_host::OptLevel,
    /// Tasklets per DPU.
    pub tasklets: usize,
}

/// Result of one deep-pipeline batch.
#[derive(Debug, Clone)]
pub struct DeepReport {
    /// Predicted class per image.
    pub predictions: Vec<usize>,
    /// DPUs used.
    pub dpus_used: usize,
    /// Cycles until the slowest DPU finished.
    pub makespan_cycles: u64,
    /// DPU completion seconds.
    pub dpu_seconds: f64,
}

impl DeepPipeline {
    /// A pipeline with the paper-style defaults (16 tasklets, `-O0`).
    #[must_use]
    pub fn new(model: DeepEbnn) -> Self {
        Self {
            model,
            params: dpu_sim::DpuParams::default(),
            opt: pim_host::OptLevel::O0,
            tasklets: crate::IMAGES_PER_DPU,
        }
    }

    /// Run inference over a batch of grayscale images.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `images` is empty.
    pub fn infer(
        &self,
        images: &[crate::mnist::GrayImage],
    ) -> Result<DeepReport, pim_host::HostError> {
        assert!(!images.is_empty(), "empty batch");
        let batch_cap = crate::IMAGES_PER_DPU;
        let dpus = images.len().div_ceil(batch_cap);
        let features = self.model.feature_count();
        let feat_pad = features.div_ceil(8) * 8;
        let lut_bytes: usize = self.model.blocks.iter().map(|b| b.lut.len()).sum();

        let mut set = pim_host::DpuSet::allocate_with(dpus, self.params)?;
        set.define_symbol("images", batch_cap * crate::IMAGE_SLOT_BYTES)?;
        set.define_symbol("luts", lut_bytes.div_ceil(8) * 8)?;
        set.define_symbol("features", batch_cap * feat_pad)?;

        let mut per_dpu = Vec::with_capacity(dpus);
        let mut predictions = Vec::with_capacity(images.len());
        for (d, chunk) in images.chunks(batch_cap).enumerate() {
            let mut run = pim_host::KernelRun::new(self.params, self.opt, self.tasklets);
            // Batch image DMA + per-block LUT DMA (tasklet 0).
            run.charge_dma(0, chunk.len() * crate::IMAGE_SLOT_BYTES);
            for b in &self.model.blocks {
                run.charge_dma(0, b.lut.len().div_ceil(8) * 8);
            }
            for (i, g) in chunk.iter().enumerate() {
                let t = i % self.tasklets;
                let mut profile = Profiler::new();
                let bits = self.model.features(&g.pixels, run.tally(t), &mut profile);
                run.charge_dma(t, feat_pad);
                // Transport through MRAM (one byte per feature bit).
                let mut wire = bits.clone();
                wire.resize(feat_pad, 0);
                set.copy_to_dpu(dpu_sim::DpuId(d as u32), "features", i * feat_pad, &wire)?;
            }
            // Host gathers and classifies.
            for i in 0..chunk.len() {
                let mut wire = vec![0u8; feat_pad];
                set.copy_from_dpu(dpu_sim::DpuId(d as u32), "features", i * feat_pad, &mut wire)?;
                predictions.push(self.model.classifier.predict(&wire[..features]));
            }
            per_dpu.push(run.estimate());
        }
        let makespan_cycles = per_dpu.iter().map(|e| e.cycles).max().unwrap_or(0);
        Ok(DeepReport {
            predictions,
            dpus_used: dpus,
            makespan_cycles,
            dpu_seconds: self.params.cycles_to_seconds(makespan_cycles),
        })
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use crate::mnist::synth_digit;

    #[test]
    fn deep_pipeline_matches_host_reference() {
        let model = DeepEbnn::generate(DeepConfig { filters: vec![4, 8], ..DeepConfig::default() });
        let imgs: Vec<_> = (0..5).map(|i| synth_digit(i, 1)).collect();
        let report = DeepPipeline::new(model.clone()).infer(&imgs).unwrap();
        for (img, &pred) in imgs.iter().zip(&report.predictions) {
            assert_eq!(pred, model.predict(&img.pixels));
        }
        assert_eq!(report.dpus_used, 1);
        assert!(report.dpu_seconds > 0.0);
    }

    #[test]
    fn deeper_pipelines_cost_more() {
        let imgs: Vec<_> = (0..4).map(|i| synth_digit(i, 0)).collect();
        let shallow = DeepPipeline::new(DeepEbnn::generate(DeepConfig {
            filters: vec![4],
            ..DeepConfig::default()
        }))
        .infer(&imgs)
        .unwrap();
        let deep = DeepPipeline::new(DeepEbnn::generate(DeepConfig {
            filters: vec![4, 8, 8],
            ..DeepConfig::default()
        }))
        .infer(&imgs)
        .unwrap();
        assert!(deep.makespan_cycles > shallow.makespan_cycles);
    }

    #[test]
    fn deep_batches_spill_over_dpus() {
        let model = DeepEbnn::generate(DeepConfig { filters: vec![2], ..DeepConfig::default() });
        let imgs: Vec<_> = (0..20).map(|i| synth_digit(i % 10, (i / 10) as u64)).collect();
        let report = DeepPipeline::new(model).infer(&imgs).unwrap();
        assert_eq!(report.dpus_used, 2);
        assert_eq!(report.predictions.len(), 20);
    }
}
