//! Full-precision reference model for validating the binarized path.
//!
//! The binary kernel computes exact integer arithmetic; the only place
//! precision can matter is the BN block. This module re-implements the
//! whole forward pass in `f64` and provides agreement checks used by the
//! test suite: binarized-vs-reference activations agree everywhere except
//! within a small band around the activation threshold (where `f32`
//! rounding may legitimately flip a bit).

use crate::bconv::{BinaryFilter, BinaryImage};
use crate::bnorm::BatchNorm;
use crate::POOLED_DIM;

/// `f64` conv-pool-BN forward pass producing pre-activation values (not
/// thresholded), `[filter][row][col]`.
#[must_use]
pub fn normalized_f64(img: &BinaryImage, filters: &[BinaryFilter], bn: &BatchNorm) -> Vec<f64> {
    let mut out = Vec::with_capacity(filters.len() * POOLED_DIM * POOLED_DIM);
    for (j, f) in filters.iter().enumerate() {
        for pr in 0..POOLED_DIM {
            for pc in 0..POOLED_DIM {
                let mut best = i32::MIN;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let mut sum = 0i32;
                        for fr in 0..3 {
                            for fc in 0..3 {
                                let ir = (2 * pr + dr) as isize + fr as isize - 1;
                                let ic = (2 * pc + dc) as isize + fc as isize - 1;
                                let pix = if ir < 0
                                    || ic < 0
                                    || ir >= img.height() as isize
                                    || ic >= img.width as isize
                                {
                                    -1
                                } else {
                                    img.pixel(ir as usize, ic as usize)
                                };
                                sum += pix * f.weight(fr as usize, fc as usize);
                            }
                        }
                        best = best.max(sum);
                    }
                }
                let mut tmp = f64::from(best);
                tmp += f64::from(bn.w0[j]);
                tmp -= f64::from(bn.w1[j]);
                tmp /= f64::from(bn.w2[j]);
                tmp *= f64::from(bn.w3[j]);
                tmp += f64::from(bn.w4[j]);
                out.push(tmp);
            }
        }
    }
    out
}

/// Compare binary features against the `f64` reference: returns the number
/// of positions where they disagree *outside* the `tolerance` band around
/// the threshold. Zero for a correct implementation.
#[must_use]
pub fn disagreements(features: &[u8], reference: &[f64], tolerance: f64) -> usize {
    assert_eq!(features.len(), reference.len(), "shape mismatch");
    features
        .iter()
        .zip(reference)
        .filter(|(&b, &r)| r.abs() > tolerance && (b == 1) != (r >= 0.0))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::synth_digit;
    use crate::model::{EbnnModel, ModelConfig};

    #[test]
    fn binary_path_agrees_with_f64_reference() {
        let m = EbnnModel::generate(ModelConfig::default());
        for class in [0usize, 4, 9] {
            let img = m.binarize(&synth_digit(class, 0).pixels);
            let features = m.features(&img);
            let reference = normalized_f64(&img, &m.filters, &m.bn);
            assert_eq!(disagreements(&features, &reference, 1e-4), 0, "class {class}");
        }
    }

    #[test]
    fn disagreements_counts_flips() {
        let features = vec![1u8, 0, 1];
        let reference = vec![5.0f64, -5.0, -5.0];
        assert_eq!(disagreements(&features, &reference, 1e-6), 1);
        // Within tolerance the flip is forgiven.
        let near = vec![1e-9f64, -5.0, 1e-9];
        assert_eq!(disagreements(&[0, 0, 1], &near, 1e-6), 0);
    }
}
