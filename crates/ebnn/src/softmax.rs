//! Host-side classifier head: fully-connected layer + softmax.
//!
//! The paper keeps the softmax layer on the host: after all DPUs finish the
//! Convolution-Pool block the host "serially sends a single image's
//! processed result to the softmax layer for inference" (§4.1.3). The head
//! here is a fixed-point fully-connected layer over the binary feature map
//! followed by a float softmax — floats are fine on the host, which is the
//! whole point of the split.

use crate::CLASSES;
use serde::{Deserialize, Serialize};

/// Fully-connected + softmax classifier over binary features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classifier {
    /// Number of binary input features.
    pub features: usize,
    /// Row-major `CLASSES × features` signed 8-bit weights.
    pub weights: Vec<i8>,
}

impl Classifier {
    /// A classifier with explicit weights.
    ///
    /// # Panics
    /// When `weights.len() != CLASSES * features`.
    #[must_use]
    pub fn new(features: usize, weights: Vec<i8>) -> Self {
        assert_eq!(weights.len(), CLASSES * features, "weight shape mismatch");
        Self { features, weights }
    }

    /// Nearest-prototype weights: the weight of (class, feature) is +1 when
    /// the class prototype has that feature set, −1 otherwise. The logit
    /// then equals (matches − mismatches) against the prototype — Hamming
    /// similarity in the binary feature space.
    ///
    /// # Panics
    /// When any prototype has the wrong feature count.
    #[must_use]
    pub fn from_prototypes(prototypes: &[Vec<u8>; CLASSES]) -> Self {
        let features = prototypes[0].len();
        let mut weights = Vec::with_capacity(CLASSES * features);
        for p in prototypes {
            assert_eq!(p.len(), features, "prototype shape mismatch");
            weights.extend(p.iter().map(|&b| if b != 0 { 1i8 } else { -1i8 }));
        }
        Self { features, weights }
    }

    /// Integer logits for a binary feature vector (features as 0/1, used as
    /// ±1 in the dot product).
    ///
    /// # Panics
    /// When `features.len()` mismatches.
    #[must_use]
    pub fn logits(&self, features: &[u8]) -> [i32; CLASSES] {
        assert_eq!(features.len(), self.features, "feature vector shape mismatch");
        let mut out = [0i32; CLASSES];
        for (c, row) in self.weights.chunks_exact(self.features).enumerate() {
            let mut acc = 0i32;
            for (&w, &b) in row.iter().zip(features) {
                let x = if b != 0 { 1 } else { -1 };
                acc += i32::from(w) * x;
            }
            out[c] = acc;
        }
        out
    }

    /// Softmax probabilities over the logits (host float path).
    #[must_use]
    pub fn softmax(&self, features: &[u8]) -> [f32; CLASSES] {
        let logits = self.logits(features);
        let max = logits.iter().copied().max().unwrap_or(0) as f32;
        let mut exps = [0f32; CLASSES];
        let mut sum = 0f32;
        // Scale down so synthetic logits (up to ±features) don't saturate.
        let scale = 1.0 / (self.features as f32).sqrt();
        for (e, &l) in exps.iter_mut().zip(&logits) {
            *e = ((l as f32 - max) * scale).exp();
            sum += *e;
        }
        for e in &mut exps {
            *e /= sum;
        }
        exps
    }

    /// Predicted class (argmax of the logits; ties break to the lower
    /// class index).
    #[must_use]
    pub fn predict(&self, features: &[u8]) -> usize {
        let logits = self.logits(features);
        let mut best = 0;
        for c in 1..CLASSES {
            if logits[c] > logits[best] {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Classifier {
        // 4 features; class c responds to feature c (classes 4..10 dead).
        let mut w = vec![-1i8; CLASSES * 4];
        for c in 0..4 {
            w[c * 4 + c] = 8;
        }
        Classifier::new(4, w)
    }

    #[test]
    fn predicts_matching_feature() {
        let c = tiny();
        assert_eq!(c.predict(&[1, 0, 0, 0]), 0);
        assert_eq!(c.predict(&[0, 0, 1, 0]), 2);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let c = tiny();
        let p = c.softmax(&[1, 0, 1, 0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn prototype_classifier_recovers_prototypes() {
        let mut protos: [Vec<u8>; CLASSES] = Default::default();
        for (c, p) in protos.iter_mut().enumerate() {
            *p = (0..32).map(|i| u8::from(i % CLASSES == c)).collect();
        }
        let clf = Classifier::from_prototypes(&protos);
        for (c, proto) in protos.iter().enumerate() {
            assert_eq!(clf.predict(proto), c, "prototype {c} misclassified");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_feature_count_panics() {
        let _ = tiny().logits(&[1, 0]);
    }

    proptest! {
        /// Argmax of softmax equals argmax of logits (softmax is monotone).
        #[test]
        fn softmax_preserves_argmax(bits in proptest::collection::vec(0u8..2, 4)) {
            let c = tiny();
            let pred = c.predict(&bits);
            let p = c.softmax(&bits);
            let soft_arg = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            // Ties may differ; only check when the max is strict.
            let logits = c.logits(&bits);
            let strict = logits.iter().filter(|&&l| l == logits[pred]).count() == 1;
            if strict {
                prop_assert_eq!(pred, soft_arg);
            }
        }
    }
}

impl Classifier {
    /// Multi-prototype weights: average the ±1 feature votes of several
    /// samples per class (scaled into `i8`), which tolerates input jitter
    /// far better than a single noise-free template.
    ///
    /// # Panics
    /// When any class has no samples or feature lengths disagree.
    #[must_use]
    pub fn from_prototype_sets(sets: &[Vec<Vec<u8>>]) -> Self {
        assert_eq!(sets.len(), CLASSES, "one sample set per class");
        let features = sets[0].first().expect("at least one sample per class").len();
        let mut weights = Vec::with_capacity(CLASSES * features);
        for samples in sets {
            assert!(!samples.is_empty(), "at least one sample per class");
            for f in 0..features {
                let mut acc = 0i32;
                for s in samples {
                    assert_eq!(s.len(), features, "feature length mismatch");
                    acc += if s[f] != 0 { 1 } else { -1 };
                }
                // Scale votes into i8: full agreement → ±8.
                let w = (acc * 8) / samples.len() as i32;
                weights.push(w.clamp(-127, 127) as i8);
            }
        }
        Self { features, weights }
    }
}

#[cfg(test)]
mod prototype_set_tests {
    use super::*;

    #[test]
    fn averaged_prototypes_downweight_noisy_features() {
        // Class 0: feature 0 always set, feature 1 set half the time.
        let mut sets: Vec<Vec<Vec<u8>>> = vec![vec![vec![0, 0]]; CLASSES];
        sets[0] = vec![vec![1, 1], vec![1, 0], vec![1, 1], vec![1, 0]];
        let clf = Classifier::from_prototype_sets(&sets);
        let w0 = &clf.weights[0..2];
        assert_eq!(w0[0], 8, "stable feature gets full weight");
        assert_eq!(w0[1], 0, "coin-flip feature cancels out");
    }

    #[test]
    fn single_sample_sets_match_plain_prototypes() {
        let protos: Vec<Vec<u8>> =
            (0..CLASSES).map(|c| (0..16).map(|i| u8::from(i % CLASSES == c)).collect()).collect();
        let sets: Vec<Vec<Vec<u8>>> = protos.iter().map(|p| vec![p.clone()]).collect();
        let clf = Classifier::from_prototype_sets(&sets);
        for (c, p) in protos.iter().enumerate() {
            assert_eq!(clf.predict(p), c);
        }
    }
}
