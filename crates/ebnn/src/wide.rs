//! Binary images wider than 32 pixels — the datapath for §6.1's "going
//! from small image sizes to larger sizes" study.
//!
//! [`crate::bconv::BinaryImage`] packs one row per `u32`, which caps inputs
//! at 32 px (MNIST needs 28). [`WideBinaryImage`] packs rows into `u64`
//! words, supporting arbitrary widths, and [`wide_conv_pool`] runs the same
//! conv-pool block with windows that may straddle word boundaries. The
//! per-window DPU cost gains two word-select operations, which
//! [`wide_conv_pool_tally`] charges — so the image-size experiments can
//! measure, not just bound, large-input latency.

use crate::bconv::BinaryFilter;
use dpu_sim::cost::OpCounts;
use serde::{Deserialize, Serialize};

/// A bit-packed binary image of arbitrary width.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WideBinaryImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl WideBinaryImage {
    /// Binarize a grayscale image at `threshold`.
    ///
    /// # Panics
    /// When `pixels.len() != width * height` or either dimension is zero.
    #[must_use]
    pub fn from_gray(pixels: &[u8], width: usize, height: usize, threshold: u8) -> Self {
        assert!(width > 0 && height > 0, "degenerate image");
        assert_eq!(pixels.len(), width * height, "pixel buffer shape mismatch");
        let words_per_row = width.div_ceil(64);
        let mut words = vec![0u64; words_per_row * height];
        for r in 0..height {
            for c in 0..width {
                if pixels[r * width + c] >= threshold {
                    words[r * words_per_row + c / 64] |= 1 << (c % 64);
                }
            }
        }
        Self { width, height, words_per_row, words }
    }

    /// Pixel at (`row`, `col`) as ±1.
    ///
    /// # Panics
    /// When out of bounds.
    #[must_use]
    pub fn pixel(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.height && col < self.width, "pixel out of range");
        let w = self.words[row * self.words_per_row + col / 64];
        if (w >> (col % 64)) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// The 3-bit window `[col-1, col, col+1]` of `row`, bit 0 = col−1;
    /// out-of-image positions read 0 (pad = −1). Handles word straddles.
    #[must_use]
    fn window3(&self, row: isize, col: usize) -> u32 {
        if row < 0 || row >= self.height as isize {
            return 0;
        }
        let base = row as usize * self.words_per_row;
        let mut out = 0u32;
        for (i, c) in [(0i32, col as isize - 1), (1, col as isize), (2, col as isize + 1)] {
            if c < 0 || c >= self.width as isize {
                continue;
            }
            let c = c as usize;
            if (self.words[base + c / 64] >> (c % 64)) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Packed bytes per image (8 bytes per row word).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// 3×3 binary convolution at one output pixel (SAME padding, pad −1).
#[must_use]
pub fn wide_conv3x3_at(img: &WideBinaryImage, filter: &BinaryFilter, row: usize, col: usize) -> i8 {
    let mut matches = 0u32;
    for fr in 0..3 {
        let window = img.window3(row as isize + fr as isize - 1, col);
        let xnor = !(window ^ u32::from(filter.rows[fr])) & 0b111;
        matches += xnor.count_ones();
    }
    (2 * matches as i32 - BinaryFilter::AREA) as i8
}

/// Conv + 2×2 max-pool over a wide image (even dimensions), one filter.
///
/// # Panics
/// When either dimension is odd.
#[must_use]
pub fn wide_conv_pool(img: &WideBinaryImage, filter: &BinaryFilter) -> Vec<i8> {
    assert!(
        img.width.is_multiple_of(2) && img.height.is_multiple_of(2),
        "2x2 pooling needs even dimensions"
    );
    let (ph, pw) = (img.height / 2, img.width / 2);
    let mut pooled = vec![0i8; ph * pw];
    for pr in 0..ph {
        for pc in 0..pw {
            let mut best = i8::MIN;
            for dr in 0..2 {
                for dc in 0..2 {
                    best = best.max(wide_conv3x3_at(img, filter, 2 * pr + dr, 2 * pc + dc));
                }
            }
            pooled[pr * pw + pc] = best;
        }
    }
    pooled
}

/// Charge the DPU cost of [`wide_conv_pool`] to `tally`: per window the
/// narrow kernel's loads/ALU plus two word-select operations (the
/// `col / 64` word index and cross-word bit splice).
pub fn wide_conv_pool_tally(img: &WideBinaryImage, filters: usize, tally: &mut OpCounts) {
    let windows = (img.width * img.height * filters) as u64;
    let pooled = windows / 4;
    tally.load += 3 * windows; // row words
    tally.alu += (4 * 3 + 4 + 2) * windows; // narrow kernel + word select
    tally.alu += pooled; // pool compares
    tally.loops += pooled;
    tally.load += pooled; // LUT access
    tally.mul32 += pooled; // output indexing multiply
    tally.store += pooled;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bconv::{conv3x3_packed, BinaryImage};
    use proptest::prelude::*;

    fn gradient(width: usize, height: usize) -> Vec<u8> {
        (0..width * height).map(|i| ((i * 37) % 256) as u8).collect()
    }

    #[test]
    fn agrees_with_narrow_image_on_28px() {
        let px = gradient(28, 28);
        let wide = WideBinaryImage::from_gray(&px, 28, 28, 128);
        let narrow = BinaryImage::from_gray(&px, 28, 28, 128);
        let f = BinaryFilter::from_u16(0b101_110_011);
        for r in 0..28 {
            for c in 0..28 {
                assert_eq!(wide.pixel(r, c), narrow.pixel(r, c));
                assert_eq!(
                    wide_conv3x3_at(&wide, &f, r, c),
                    conv3x3_packed(&narrow, &f, r, c),
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn word_straddle_at_column_64() {
        // 128-px-wide image: columns 63/64/65 cross the word boundary.
        let mut px = vec![0u8; 128 * 4];
        for c in 62..=66 {
            px[128 + c] = 255; // row 1 lit around the boundary
        }
        let img = WideBinaryImage::from_gray(&px, 128, 4, 128);
        assert_eq!(img.pixel(1, 63), 1);
        assert_eq!(img.pixel(1, 64), 1);
        assert_eq!(img.pixel(0, 64), -1);
        // An all-ones filter centred at (1, 64): row 1 contributes 3
        // matches, rows 0 and 2 are dark (0 matches each).
        let f = BinaryFilter { rows: [7, 7, 7] };
        assert_eq!(wide_conv3x3_at(&img, &f, 1, 64), 2 * 3 - 9);
    }

    #[test]
    fn pool_shapes_scale() {
        let px = gradient(64, 64);
        let img = WideBinaryImage::from_gray(&px, 64, 64, 128);
        let f = BinaryFilter::from_u16(0b010_111_010);
        let pooled = wide_conv_pool(&img, &f);
        assert_eq!(pooled.len(), 32 * 32);
        assert!(pooled.iter().all(|&v| (-9..=9).contains(&v)));
    }

    #[test]
    fn tally_scales_quadratically_with_dim() {
        let mk = |d: usize| {
            let img = WideBinaryImage::from_gray(&gradient(d, d), d, d, 128);
            let mut t = OpCounts::default();
            wide_conv_pool_tally(&img, 8, &mut t);
            t.issue_slots(dpu_sim::cost::OptLevel::O0)
        };
        let (s56, s112) = (mk(56), mk(112));
        let ratio = s112 as f64 / s56 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    proptest! {
        /// Wide and narrow paths agree for any image that fits both.
        #[test]
        fn wide_equals_narrow(
            px in proptest::collection::vec(any::<u8>(), 28 * 28),
            fbits in 0u16..512,
            r in 0usize..28,
            c in 0usize..28,
        ) {
            let wide = WideBinaryImage::from_gray(&px, 28, 28, 128);
            let narrow = BinaryImage::from_gray(&px, 28, 28, 128);
            let f = BinaryFilter::from_u16(fbits);
            prop_assert_eq!(
                wide_conv3x3_at(&wide, &f, r, c),
                conv3x3_packed(&narrow, &f, r, c)
            );
        }

        /// Packed size matches the analytic slot formula the §6.1 study uses.
        #[test]
        fn packed_bytes_formula(w in 1usize..200, h in 1usize..64) {
            let img = WideBinaryImage::from_gray(&vec![0u8; w * h], w, h, 128);
            prop_assert_eq!(img.packed_bytes(), w.div_ceil(64) * 8 * h);
        }
    }
}
