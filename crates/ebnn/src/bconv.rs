//! Binary images, binary filters, and the bit-packed Convolution-Pool block.
//!
//! eBNN binarizes inputs, weights and temporaries so convolution reduces to
//! XNOR + popcount (paper §4.1.1). Pixels and weights take values in
//! {-1, +1}, stored as bits (1 ↔ +1, 0 ↔ -1); the dot product of two ±1
//! vectors of length n with `m` matching bits is `2m − n`.
//!
//! Images are packed one row per `u32` (bit *c* of row word *r* is the
//! pixel at column *c*). A 28×28 image is therefore 112 bytes, and 16
//! images — 1792 bytes — fit inside a single ≤2048-byte DMA transfer,
//! reproducing the paper's 16-images-per-DPU cap (§4.1.3).

use crate::{IMAGE_DIM, POOLED_DIM};
use serde::{Deserialize, Serialize};

/// A bit-packed binary image: `height` rows of up to 32 binary pixels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryImage {
    /// Image width in pixels (≤ 32).
    pub width: usize,
    /// One packed row per image row; bit `c` is column `c`.
    pub rows: Vec<u32>,
}

impl BinaryImage {
    /// Binarize a grayscale image (`height × width`, row-major bytes) at
    /// `threshold`: pixels `>= threshold` become +1 (bit 1).
    ///
    /// # Panics
    /// When `width > 32` or `pixels.len()` is not `width × height`.
    #[must_use]
    pub fn from_gray(pixels: &[u8], width: usize, height: usize, threshold: u8) -> Self {
        assert!(width <= 32, "packed rows hold at most 32 pixels");
        assert_eq!(pixels.len(), width * height, "pixel buffer shape mismatch");
        let rows = (0..height)
            .map(|r| {
                let mut w = 0u32;
                for c in 0..width {
                    if pixels[r * width + c] >= threshold {
                        w |= 1 << c;
                    }
                }
                w
            })
            .collect();
        Self { width, rows }
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Pixel at (`row`, `col`) as ±1.
    ///
    /// # Panics
    /// When out of bounds.
    #[must_use]
    pub fn pixel(&self, row: usize, col: usize) -> i32 {
        assert!(col < self.width, "column out of range");
        if (self.rows[row] >> col) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Serialize to the MRAM wire format: one little-endian `u32` per row.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.rows.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Parse the MRAM wire format produced by [`BinaryImage::to_bytes`].
    ///
    /// # Panics
    /// When `bytes` is not a multiple of 4.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], width: usize) -> Self {
        assert_eq!(bytes.len() % 4, 0, "wire format is whole u32 rows");
        let rows =
            bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Self { width, rows }
    }

    /// Bytes of the wire format for an image of the given height.
    #[must_use]
    pub fn wire_bytes(height: usize) -> usize {
        height * 4
    }
}

/// A 3×3 binary convolution filter (bit 1 ↔ weight +1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryFilter {
    /// Three rows, low 3 bits each; bit `c` of row `r` is weight (r, c).
    pub rows: [u8; 3],
}

impl BinaryFilter {
    /// Filter side length.
    pub const DIM: usize = 3;
    /// Number of weights.
    pub const AREA: i32 = 9;

    /// Weight at (`row`, `col`) as ±1.
    ///
    /// # Panics
    /// When out of bounds.
    #[must_use]
    pub fn weight(&self, row: usize, col: usize) -> i32 {
        assert!(row < 3 && col < 3, "filter index out of range");
        if (self.rows[row] >> col) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Pack into a 2-byte wire format (9 bits, little-endian u16).
    #[must_use]
    pub fn to_u16(&self) -> u16 {
        u16::from(self.rows[0] & 7)
            | (u16::from(self.rows[1] & 7) << 3)
            | (u16::from(self.rows[2] & 7) << 6)
    }

    /// Unpack the [`BinaryFilter::to_u16`] wire format.
    #[must_use]
    pub fn from_u16(v: u16) -> Self {
        Self { rows: [(v & 7) as u8, ((v >> 3) & 7) as u8, ((v >> 6) & 7) as u8] }
    }
}

/// Pooled pre-activation feature map of one filter: `POOLED_DIM²` sums in
/// `[-9, 9]`.
pub type ConvPoolOutput = Vec<i8>;

/// 3×3 binary convolution with SAME padding (pad value −1), evaluated at
/// (`row`, `col`) of `img` against `filter`. Result in `[-9, 9]`.
///
/// This is the *reference* scalar path; the kernels in
/// [`crate::dpu_kernel`] compute the same value with the packed-row
/// shift/XNOR/popcount sequence a DPU executes.
#[must_use]
pub fn conv3x3_at(img: &BinaryImage, filter: &BinaryFilter, row: usize, col: usize) -> i8 {
    let mut sum = 0i32;
    for fr in 0..3 {
        for fc in 0..3 {
            let ir = row as isize + fr as isize - 1;
            let ic = col as isize + fc as isize - 1;
            let pix = if ir < 0 || ic < 0 || ir >= img.height() as isize || ic >= img.width as isize
            {
                -1
            } else {
                img.pixel(ir as usize, ic as usize)
            };
            sum += pix * filter.weight(fr, fc);
        }
    }
    sum as i8
}

/// Packed-window convolution of one output pixel: extracts the three 3-bit
/// windows with shifts, XNORs them against the filter rows and popcounts —
/// the exact operation sequence the DPU kernel is charged for.
#[must_use]
pub fn conv3x3_packed(img: &BinaryImage, filter: &BinaryFilter, row: usize, col: usize) -> i8 {
    let mut matches = 0u32;
    for fr in 0..3 {
        let ir = row as isize + fr as isize - 1;
        // Out-of-range rows contribute all-(-1) pixels: bits 0.
        let packed =
            if ir < 0 || ir >= img.height() as isize { 0u32 } else { img.rows[ir as usize] };
        // Window bits [col-1, col, col+1]; shifting a 33-bit view keeps the
        // col = 0 left pad at 0. Columns beyond `width` must read as pad
        // (bit 0), which holds because packed rows never set bits ≥ width.
        let window = (((u64::from(packed)) << 1) >> col) as u32 & 0b111;
        let xnor = !(window ^ u32::from(filter.rows[fr])) & 0b111;
        matches += xnor.count_ones();
    }
    (2 * matches as i32 - BinaryFilter::AREA) as i8
}

/// Full conv + 2×2 max-pool for one filter: returns the pooled `14×14`
/// pre-activation map (row-major).
#[must_use]
pub fn conv_pool(img: &BinaryImage, filter: &BinaryFilter) -> ConvPoolOutput {
    assert_eq!(img.width, IMAGE_DIM, "eBNN block is built for 28x28 inputs");
    assert_eq!(img.height(), IMAGE_DIM, "eBNN block is built for 28x28 inputs");
    let mut pooled = vec![0i8; POOLED_DIM * POOLED_DIM];
    for pr in 0..POOLED_DIM {
        for pc in 0..POOLED_DIM {
            let mut best = i8::MIN;
            for dr in 0..2 {
                for dc in 0..2 {
                    let v = conv3x3_packed(img, filter, 2 * pr + dr, 2 * pc + dc);
                    best = best.max(v);
                }
            }
            pooled[pr * POOLED_DIM + pc] = best;
        }
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn checker_image() -> BinaryImage {
        let px: Vec<u8> = (0..IMAGE_DIM * IMAGE_DIM)
            .map(|i| if (i / IMAGE_DIM + i % IMAGE_DIM).is_multiple_of(2) { 255 } else { 0 })
            .collect();
        BinaryImage::from_gray(&px, IMAGE_DIM, IMAGE_DIM, 128)
    }

    #[test]
    fn binarize_and_pixel() {
        let img = checker_image();
        assert_eq!(img.pixel(0, 0), 1);
        assert_eq!(img.pixel(0, 1), -1);
        assert_eq!(img.pixel(1, 0), -1);
        assert_eq!(img.pixel(1, 1), 1);
    }

    #[test]
    fn wire_format_round_trip() {
        let img = checker_image();
        let bytes = img.to_bytes();
        assert_eq!(bytes.len(), 112);
        assert_eq!(BinaryImage::from_bytes(&bytes, IMAGE_DIM), img);
    }

    #[test]
    fn filter_wire_round_trip() {
        for v in 0..512u16 {
            let f = BinaryFilter::from_u16(v);
            assert_eq!(f.to_u16(), v);
        }
    }

    #[test]
    fn all_ones_filter_on_all_ones_image_gives_nine() {
        let px = vec![255u8; IMAGE_DIM * IMAGE_DIM];
        let img = BinaryImage::from_gray(&px, IMAGE_DIM, IMAGE_DIM, 128);
        let f = BinaryFilter { rows: [7, 7, 7] };
        // Interior pixel: all 9 products are +1·+1.
        assert_eq!(conv3x3_at(&img, &f, 5, 5), 9);
        // Corner: 5 pad pixels (−1) against +1 weights.
        assert_eq!(conv3x3_at(&img, &f, 0, 0), 4 - 5);
    }

    #[test]
    fn packed_matches_scalar_reference_on_checkerboard() {
        let img = checker_image();
        let f = BinaryFilter { rows: [0b101, 0b010, 0b101] };
        for r in 0..IMAGE_DIM {
            for c in 0..IMAGE_DIM {
                assert_eq!(
                    conv3x3_packed(&img, &f, r, c),
                    conv3x3_at(&img, &f, r, c),
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn pooled_map_has_expected_shape_and_range() {
        let img = checker_image();
        let f = BinaryFilter { rows: [0b111, 0b000, 0b111] };
        let pooled = conv_pool(&img, &f);
        assert_eq!(pooled.len(), POOLED_DIM * POOLED_DIM);
        assert!(pooled.iter().all(|&v| (-9..=9).contains(&v)));
    }

    proptest! {
        /// The packed shift/XNOR/popcount path equals the scalar ±1 dot
        /// product everywhere, for arbitrary images and filters.
        #[test]
        fn packed_equals_scalar(
            pixels in proptest::collection::vec(any::<u8>(), IMAGE_DIM * IMAGE_DIM),
            fbits in 0u16..512,
            r in 0usize..IMAGE_DIM,
            c in 0usize..IMAGE_DIM,
        ) {
            let img = BinaryImage::from_gray(&pixels, IMAGE_DIM, IMAGE_DIM, 128);
            let f = BinaryFilter::from_u16(fbits);
            prop_assert_eq!(conv3x3_packed(&img, &f, r, c), conv3x3_at(&img, &f, r, c));
        }

        /// Pooled values never leave the [-9, 9] pre-activation range.
        #[test]
        fn pooled_range_invariant(
            pixels in proptest::collection::vec(any::<u8>(), IMAGE_DIM * IMAGE_DIM),
            fbits in 0u16..512,
        ) {
            let img = BinaryImage::from_gray(&pixels, IMAGE_DIM, IMAGE_DIM, 128);
            let f = BinaryFilter::from_u16(fbits);
            let pooled = conv_pool(&img, &f);
            prop_assert!(pooled.iter().all(|&v| (-9..=9).contains(&v)));
        }

        /// Pooling dominates: every pooled value is >= each of its window's
        /// conv values.
        #[test]
        fn pool_takes_window_max(
            pixels in proptest::collection::vec(any::<u8>(), IMAGE_DIM * IMAGE_DIM),
            fbits in 0u16..512,
            pr in 0usize..POOLED_DIM,
            pc in 0usize..POOLED_DIM,
        ) {
            let img = BinaryImage::from_gray(&pixels, IMAGE_DIM, IMAGE_DIM, 128);
            let f = BinaryFilter::from_u16(fbits);
            let pooled = conv_pool(&img, &f);
            let got = pooled[pr * POOLED_DIM + pc];
            for dr in 0..2 {
                for dc in 0..2 {
                    prop_assert!(got >= conv3x3_packed(&img, &f, 2 * pr + dr, 2 * pc + dc));
                }
            }
        }
    }
}
