//! # ebnn — Embedded Binarized Neural Network on the simulated UPMEM PIM
//!
//! Reproduction of the paper's first CNN implementation (§4.1): a
//! minimalistic eBNN — one binary Convolution-Pool block followed by a
//! host-side classifier — mapped onto DPUs with the **multi-image-per-DPU**
//! scheme:
//!
//! * images are binarized and bit-packed on the host (one `u32` per 28-pixel
//!   row), so a 16-image batch fits in a single ≤2048-byte MRAM→WRAM DMA —
//!   the transfer cap that limits each DPU to 16 concurrent images (§4.1.3);
//! * each DPU runs 16 tasklets, one image per tasklet;
//! * the Convolution-Pool block runs in the DPU; BatchNorm + Binary
//!   Activation either run in the DPU with floating-point subroutines
//!   ([`BnMode::Float`]) or are replaced by a host-built look-up table
//!   ([`BnMode::Lut`]) per the paper's Algorithm 1 — the rewrite that cuts
//!   the subroutine profile from 11+ routines to 2 (Fig. 4.3) and speeds the
//!   16-image batch up by ~1.4× (Fig. 4.4);
//! * the classifier head (fully-connected + softmax) runs on the host, fed
//!   by the binary feature maps read back from MRAM.
//!
//! The MNIST inputs are synthesized ([`mnist`]) — the evaluation measures
//! latency of fixed-shape inference, not accuracy on real digits — but the
//! classifier is given nearest-prototype weights so end-to-end predictions
//! are still meaningful on the synthetic digits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bconv;
pub mod bnorm;
pub mod codegen;
pub mod deep;
pub mod dpu_kernel;
pub mod lut;
pub mod mapping;
pub mod mnist;
pub mod model;
pub mod reference;
pub mod softmax;
pub mod wide;

pub use bconv::{BinaryFilter, BinaryImage, ConvPoolOutput};
pub use bnorm::BatchNorm;
pub use codegen::{run_tier1_batch_multi_dpu_resilient, ResilientBatch};
pub use deep::{DeepConfig, DeepEbnn};
pub use dpu_kernel::{conv_pool_block, BnMode, KernelOutput};
pub use lut::BnLut;
pub use mapping::{EbnnPipeline, InferenceReport};
pub use mnist::{synth_digit, SynthMnist};
pub use model::{EbnnModel, ModelConfig};
pub use softmax::Classifier;
pub use wide::WideBinaryImage;

/// MNIST image edge length in pixels.
pub const IMAGE_DIM: usize = 28;

/// Pooled feature-map edge length (2×2 max pool over 28×28).
pub const POOLED_DIM: usize = IMAGE_DIM / 2;

/// Images per DPU: the paper's 16-image cap from the 2048-byte DMA limit
/// (one [`IMAGE_SLOT_BYTES`]-byte slot per image, 16 x 128 = 2048).
pub const IMAGES_PER_DPU: usize = 16;

/// MRAM/WRAM slot per image: 112 bytes of packed rows padded to a
/// power-of-two stride, so a full 16-image batch exactly fills one maximum
/// 2048-byte DMA transfer — the constraint behind the paper's batch size.
pub const IMAGE_SLOT_BYTES: usize = 128;

/// Number of output classes.
pub const CLASSES: usize = 10;

/// Round a byte count up to the 8-byte transfer rule.
#[must_use]
pub fn align_up8(bytes: usize) -> usize {
    bytes.div_ceil(8) * 8
}
