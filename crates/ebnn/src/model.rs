//! The eBNN model: configuration, seeded weights, and the prototype
//! classifier head.
//!
//! The paper adopts "a custom architecture for eBNN ... one
//! Convolutional-Pooling block, followed by a Softmax layer" (§4.1.1).
//! Weights are generated from a seed — the evaluation measures inference
//! latency, which is shape- not value-dependent — but the classifier head
//! is fitted to the synthetic digit prototypes so end-to-end predictions
//! are meaningful.

use crate::bconv::{conv_pool, BinaryFilter, BinaryImage};
use crate::bnorm::BatchNorm;
use crate::mnist::class_template;
use crate::softmax::Classifier;
use crate::{CLASSES, IMAGE_DIM, POOLED_DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of 3×3 binary convolution filters.
    pub filters: usize,
    /// Seed for weight generation.
    pub seed: u64,
    /// Binarization threshold for grayscale inputs.
    pub threshold: u8,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // The paper's custom eBNN has one conv-pool block; the filter count
        // is unspecified. Eight filters lands the simulated per-image
        // latency on the paper's 1.48 ms (see EXPERIMENTS.md).
        Self { filters: 8, seed: 0xeb, threshold: 128 }
    }
}

/// A complete eBNN: binary filters + BatchNorm parameters + classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbnnModel {
    /// Hyper-parameters.
    pub config: ModelConfig,
    /// The conv filters.
    pub filters: Vec<BinaryFilter>,
    /// BatchNorm + BinaryActivation parameters (one set per filter).
    pub bn: BatchNorm,
    /// Host-side classifier head.
    pub classifier: Classifier,
}

impl EbnnModel {
    /// Number of binary features feeding the classifier.
    #[must_use]
    pub fn feature_count(config: &ModelConfig) -> usize {
        config.filters * POOLED_DIM * POOLED_DIM
    }

    /// Generate a model from the config seed. Filters are random binary
    /// patterns; BN parameters are drawn so activations are neither stuck
    /// at 0 nor at 1; the classifier is fitted to the synthetic class
    /// prototypes run through this very conv-pool block.
    #[must_use]
    pub fn generate(config: ModelConfig) -> Self {
        assert!(config.filters > 0, "model needs at least one filter");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let filters: Vec<BinaryFilter> =
            (0..config.filters).map(|_| BinaryFilter::from_u16(rng.gen_range(0..512))).collect();
        let n = config.filters;
        let bn = BatchNorm::new(
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect(),
            (0..n).map(|_| rng.gen_range(0.5..4.0)).collect(),
            (0..n).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect(),
            (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        );

        // Prototype classifier: push each noise-free class template through
        // the block and use the resulting binary features as ±1 weights.
        // (Averaging several jittered samples per class — see
        // `Classifier::from_prototype_sets` — was tried and performs
        // *worse* here: the binarized features are not shift-invariant, so
        // averaging cancels the informative bits.)
        let mut protos: [Vec<u8>; CLASSES] = Default::default();
        for (c, proto) in protos.iter_mut().enumerate() {
            let t = class_template(c);
            let img = BinaryImage::from_gray(&t.pixels, IMAGE_DIM, IMAGE_DIM, config.threshold);
            *proto = forward_features(&img, &filters, &bn);
        }
        let classifier = Classifier::from_prototypes(&protos);

        Self { config, filters, bn, classifier }
    }

    /// Host-reference forward pass to binary features (bypasses the DPU
    /// path entirely; used to validate kernels).
    #[must_use]
    pub fn features(&self, img: &BinaryImage) -> Vec<u8> {
        forward_features(img, &self.filters, &self.bn)
    }

    /// Full host-reference inference.
    #[must_use]
    pub fn predict(&self, img: &BinaryImage) -> usize {
        self.classifier.predict(&self.features(img))
    }

    /// Binarize a grayscale image with the model's threshold.
    #[must_use]
    pub fn binarize(&self, pixels: &[u8]) -> BinaryImage {
        BinaryImage::from_gray(pixels, IMAGE_DIM, IMAGE_DIM, self.config.threshold)
    }
}

/// Conv-pool + BN-BinAct to a flat binary feature vector
/// (`[filter][row][col]` order).
fn forward_features(img: &BinaryImage, filters: &[BinaryFilter], bn: &BatchNorm) -> Vec<u8> {
    let mut out = Vec::with_capacity(filters.len() * POOLED_DIM * POOLED_DIM);
    for (j, f) in filters.iter().enumerate() {
        for &x in &conv_pool(img, f) {
            out.push(bn.bn_binact(i32::from(x), j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::synth_digit;

    #[test]
    fn generation_is_deterministic() {
        let a = EbnnModel::generate(ModelConfig::default());
        let b = EbnnModel::generate(ModelConfig::default());
        assert_eq!(a, b);
        let c = EbnnModel::generate(ModelConfig { seed: 1, ..ModelConfig::default() });
        assert_ne!(a.filters, c.filters);
    }

    #[test]
    fn feature_shape() {
        let m = EbnnModel::generate(ModelConfig::default());
        let img = m.binarize(&synth_digit(0, 0).pixels);
        let f = m.features(&img);
        assert_eq!(f.len(), 8 * 14 * 14);
        assert!(f.iter().all(|&b| b <= 1));
    }

    #[test]
    fn features_not_degenerate() {
        // BN parameters must not collapse every activation to 0 or 1.
        let m = EbnnModel::generate(ModelConfig::default());
        let img = m.binarize(&synth_digit(5, 1).pixels);
        let f = m.features(&img);
        let ones = f.iter().filter(|&&b| b == 1).count();
        assert!(ones > f.len() / 20, "features almost all zero");
        assert!(ones < f.len() * 19 / 20, "features almost all one");
    }

    #[test]
    fn prototype_classifier_beats_chance_on_jittered_digits() {
        let m = EbnnModel::generate(ModelConfig::default());
        let mut hits = 0;
        let mut total = 0;
        for c in 0..CLASSES {
            for i in 0..5 {
                let img = m.binarize(&synth_digit(c, i).pixels);
                if m.predict(&img) == c {
                    hits += 1;
                }
                total += 1;
            }
        }
        // Chance is 10 %; the prototype head should do far better.
        assert!(hits * 100 / total >= 50, "accuracy too low: {hits}/{total}");
    }

    #[test]
    #[should_panic(expected = "at least one filter")]
    fn zero_filters_rejected() {
        let _ = EbnnModel::generate(ModelConfig { filters: 0, ..ModelConfig::default() });
    }
}
