//! Deterministic synthetic MNIST-like digits.
//!
//! The paper evaluates eBNN on MNIST (Fig. 4.1). Real MNIST files are not
//! available in this environment, and the evaluation measures
//! latency/throughput of fixed-shape inference rather than accuracy on real
//! digits, so the reproduction substitutes a seeded generator: each class is
//! a stroke template rasterized at 28×28 with per-sample jitter and pixel
//! noise. The substitution is recorded in `DESIGN.md`.

use crate::{CLASSES, IMAGE_DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One grayscale 28×28 image (row-major bytes, 0 or 255 after rasterizing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Row-major pixels.
    pub pixels: Vec<u8>,
    /// Ground-truth class.
    pub label: usize,
}

/// A stroke segment: two `(x, y)` endpoints in 28×28 coordinates.
type Segment = ((i32, i32), (i32, i32));

/// Stroke segments per digit class.
fn segments(class: usize) -> &'static [Segment] {
    match class {
        0 => &[((9, 5), (19, 5)), ((19, 5), (19, 23)), ((19, 23), (9, 23)), ((9, 23), (9, 5))],
        1 => &[((14, 4), (14, 24)), ((10, 8), (14, 4))],
        2 => &[((8, 5), (19, 5)), ((19, 5), (19, 13)), ((19, 13), (8, 23)), ((8, 23), (20, 23))],
        3 => &[((8, 5), (19, 5)), ((11, 13), (19, 13)), ((8, 23), (19, 23)), ((19, 5), (19, 23))],
        4 => &[((9, 4), (9, 14)), ((9, 14), (20, 14)), ((16, 4), (16, 24))],
        5 => &[
            ((20, 5), (9, 5)),
            ((9, 5), (9, 13)),
            ((9, 13), (19, 13)),
            ((19, 13), (19, 23)),
            ((19, 23), (8, 23)),
        ],
        6 => {
            &[((10, 5), (10, 23)), ((10, 23), (19, 23)), ((19, 23), (19, 14)), ((19, 14), (10, 14))]
        }
        7 => &[((8, 5), (20, 5)), ((20, 5), (11, 24))],
        8 => &[
            ((9, 5), (19, 5)),
            ((19, 5), (19, 23)),
            ((19, 23), (9, 23)),
            ((9, 23), (9, 5)),
            ((9, 14), (19, 14)),
        ],
        9 => &[((9, 5), (19, 5)), ((19, 5), (19, 24)), ((9, 5), (9, 13)), ((9, 13), (19, 13))],
        _ => panic!("digit class must be 0..=9"),
    }
}

/// Rasterize a thick line segment into `px`.
fn draw(px: &mut [u8], a: (i32, i32), b: (i32, i32)) {
    let steps = (b.0 - a.0).abs().max((b.1 - a.1).abs()).max(1);
    for s in 0..=steps {
        let x = a.0 + (b.0 - a.0) * s / steps;
        let y = a.1 + (b.1 - a.1) * s / steps;
        for dx in 0..2 {
            for dy in 0..2 {
                let (px_x, px_y) = (x + dx, y + dy);
                if (0..IMAGE_DIM as i32).contains(&px_x) && (0..IMAGE_DIM as i32).contains(&px_y) {
                    px[(px_y as usize) * IMAGE_DIM + px_x as usize] = 255;
                }
            }
        }
    }
}

/// Synthesize digit `class` (0..=9), sample `index`, with deterministic
/// jitter and ~2 % pixel noise.
///
/// The same `(class, index)` always yields the same image.
///
/// # Panics
/// When `class >= 10`.
#[must_use]
pub fn synth_digit(class: usize, index: u64) -> GrayImage {
    assert!(class < CLASSES, "digit class must be 0..=9");
    let mut rng = StdRng::seed_from_u64(0x5eed_0000 + (class as u64) * 1_000_003 + index);
    let (jx, jy) = (rng.gen_range(-2..=2), rng.gen_range(-2..=2));
    let mut pixels = vec![0u8; IMAGE_DIM * IMAGE_DIM];
    for &(a, b) in segments(class) {
        draw(&mut pixels, (a.0 + jx, a.1 + jy), (b.0 + jx, b.1 + jy));
    }
    for p in pixels.iter_mut() {
        if rng.gen_bool(0.02) {
            *p = 255 - *p;
        }
    }
    GrayImage { pixels, label: class }
}

/// The noise-free template of a class (used for prototype classifier
/// weights).
#[must_use]
pub fn class_template(class: usize) -> GrayImage {
    let mut pixels = vec![0u8; IMAGE_DIM * IMAGE_DIM];
    for &(a, b) in segments(class) {
        draw(&mut pixels, a, b);
    }
    GrayImage { pixels, label: class }
}

/// A deterministic synthetic dataset: `per_class` samples of each digit.
#[derive(Debug, Clone)]
pub struct SynthMnist {
    /// All images, class-major order.
    pub images: Vec<GrayImage>,
}

impl SynthMnist {
    /// Generate `per_class` jittered samples per digit class.
    #[must_use]
    pub fn generate(per_class: usize) -> Self {
        let images = (0..CLASSES)
            .flat_map(|c| (0..per_class).map(move |i| synth_digit(c, i as u64)))
            .collect();
        Self { images }
    }

    /// Number of images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        assert_eq!(synth_digit(3, 7), synth_digit(3, 7));
        assert_ne!(synth_digit(3, 7), synth_digit(3, 8));
        assert_ne!(synth_digit(3, 7), synth_digit(4, 7));
    }

    #[test]
    fn every_class_draws_something() {
        for c in 0..CLASSES {
            let img = synth_digit(c, 0);
            let lit = img.pixels.iter().filter(|&&p| p > 128).count();
            assert!(lit > 20, "class {c} too sparse: {lit} pixels");
            assert!(lit < IMAGE_DIM * IMAGE_DIM / 2, "class {c} too dense");
            assert_eq!(img.label, c);
        }
    }

    #[test]
    fn templates_differ_between_classes() {
        for a in 0..CLASSES {
            for b in (a + 1)..CLASSES {
                let ta = class_template(a);
                let tb = class_template(b);
                let diff = ta.pixels.iter().zip(&tb.pixels).filter(|(x, y)| x != y).count();
                assert!(diff > 10, "classes {a} and {b} almost identical");
            }
        }
    }

    #[test]
    fn dataset_shape() {
        let ds = SynthMnist::generate(3);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.images[0].label, 0);
        assert_eq!(ds.images[29].label, 9);
    }

    #[test]
    #[should_panic(expected = "0..=9")]
    fn class_out_of_range_panics() {
        let _ = synth_digit(10, 0);
    }
}
