//! `im2col`: unroll convolution input into the GEMM `B` matrix.
//!
//! For a convolution with `C` input channels, `k×k` kernels, stride `s` and
//! padding `p` over an `H×W` input, `B` has `C·k·k` rows and
//! `out_h·out_w` columns; column `(oy, ox)` stacks the receptive field of
//! output pixel `(oy, ox)` channel-major. Out-of-image taps read 0.

/// Shape bookkeeping for one im2col.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2colDims {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel edge.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Im2colDims {
    /// Output spatial height.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Rows of `B` (`C·k·k`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Columns of `B` (`out_h · out_w`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unroll `input` (channel-major `C×H×W`) into the `B` matrix
/// (row-major `rows() × cols()`).
///
/// # Panics
/// When `input.len() != channels*height*width` or the kernel exceeds the
/// padded input.
#[must_use]
pub fn im2col(input: &[i16], d: Im2colDims) -> Vec<i16> {
    assert_eq!(input.len(), d.channels * d.height * d.width, "input shape mismatch");
    assert!(d.kernel <= d.height + 2 * d.pad, "kernel taller than padded input");
    assert!(d.kernel <= d.width + 2 * d.pad, "kernel wider than padded input");
    assert!(d.stride > 0, "stride must be positive");
    let (out_h, out_w) = (d.out_h(), d.out_w());
    let cols = out_h * out_w;
    let mut b = vec![0i16; d.rows() * cols];
    for c in 0..d.channels {
        for ky in 0..d.kernel {
            for kx in 0..d.kernel {
                let row = (c * d.kernel + ky) * d.kernel + kx;
                for oy in 0..out_h {
                    let iy = (oy * d.stride + ky) as isize - d.pad as isize;
                    for ox in 0..out_w {
                        let ix = (ox * d.stride + kx) as isize - d.pad as isize;
                        let v = if iy < 0
                            || ix < 0
                            || iy >= d.height as isize
                            || ix >= d.width as isize
                        {
                            0
                        } else {
                            input[(c * d.height + iy as usize) * d.width + ix as usize]
                        };
                        b[row * cols + oy * out_w + ox] = v;
                    }
                }
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_by_one_kernel_is_identity() {
        let d = Im2colDims { channels: 2, height: 3, width: 3, kernel: 1, stride: 1, pad: 0 };
        let input: Vec<i16> = (0..18).collect();
        let b = im2col(&input, d);
        assert_eq!(b, input);
    }

    #[test]
    fn padding_reads_zero() {
        let d = Im2colDims { channels: 1, height: 2, width: 2, kernel: 3, stride: 1, pad: 1 };
        let input = vec![1i16, 2, 3, 4];
        let b = im2col(&input, d);
        assert_eq!(d.cols(), 4);
        assert_eq!(d.rows(), 9);
        // Column 0 = receptive field of output (0,0): top-left 3x3 window
        // centred at (0,0) → rows (ky,kx): only (1,1),(1,2),(2,1),(2,2) hit.
        let col0: Vec<i16> = (0..9).map(|r| b[r * 4]).collect();
        assert_eq!(col0, vec![0, 0, 0, 0, 1, 2, 0, 3, 4]);
    }

    #[test]
    fn stride_two_downsamples() {
        let d = Im2colDims { channels: 1, height: 4, width: 4, kernel: 2, stride: 2, pad: 0 };
        assert_eq!(d.out_h(), 2);
        assert_eq!(d.out_w(), 2);
        let input: Vec<i16> = (0..16).collect();
        let b = im2col(&input, d);
        // First row of B = top-left tap of each window: pixels 0,2,8,10.
        assert_eq!(&b[0..4], &[0, 2, 8, 10]);
    }

    proptest! {
        /// Convolution via im2col + dot products equals direct convolution.
        #[test]
        fn im2col_gemm_equals_direct_conv(
            seed in any::<u64>(),
            h in 3usize..7, w in 3usize..7,
            ch in 1usize..3,
            pad in 0usize..2,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let d = Im2colDims { channels: ch, height: h, width: w, kernel: 3, stride: 1, pad };
            if d.kernel > h + 2 * pad || d.kernel > w + 2 * pad {
                return Ok(());
            }
            let input: Vec<i16> = (0..ch * h * w).map(|_| rng.gen_range(-50..50)).collect();
            let weights: Vec<i16> = (0..d.rows()).map(|_| rng.gen_range(-50..50)).collect();
            let b = im2col(&input, d);
            let cols = d.cols();
            // GEMM row: weights · B
            let by_gemm: Vec<i64> = (0..cols)
                .map(|j| (0..d.rows()).map(|r| i64::from(weights[r]) * i64::from(b[r * cols + j])).sum())
                .collect();
            // Direct convolution
            let (out_h, out_w) = (d.out_h(), d.out_w());
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = 0i64;
                    for c in 0..ch {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let iy = (oy + ky) as isize - pad as isize;
                                let ix = (ox + kx) as isize - pad as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    let wv = weights[(c * 3 + ky) * 3 + kx];
                                    let iv = input[(c * h + iy as usize) * w + ix as usize];
                                    acc += i64::from(wv) * i64::from(iv);
                                }
                            }
                        }
                    }
                    prop_assert_eq!(acc, by_gemm[oy * out_w + ox]);
                }
            }
        }
    }
}
