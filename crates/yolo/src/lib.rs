//! # yolo-pim — quantized YOLOv3 on the simulated UPMEM PIM
//!
//! Reproduction of the paper's second CNN implementation (§4.2): a
//! fixed-point YOLOv3 whose convolutions are lowered to the GEMM of
//! Algorithm 2 and mapped onto DPUs with the **multi-DPU-per-image** scheme
//! of Fig. 4.6:
//!
//! * convolution → [`im2col()`] → GEMM with `A` the weights (`M×K`, one row
//!   per filter), `B` the unrolled input (`K×N`), `C` the output (`M×N`);
//! * each layer uses `M` DPUs — DPU *i* receives row *i* of `A`, **all** of
//!   `B`, and produces row *i* of `C`;
//! * inside a DPU, tasklets split the inner loop over output columns;
//! * quantization/de-quantization stays on the host (the DPU only sees
//!   fixed point), and Algorithm 2's `absolutemax(ctmp[j]/32, 32767)`
//!   re-scales accumulators into `i16`;
//! * `B` and the `ctmp` accumulator are far too large for WRAM, so the
//!   kernel's accesses overwhelmingly hit MRAM — the §4.3.3 explanation for
//!   YOLOv3's poor showing, reproduced by the cycle model's DMA bounds.
//!
//! [`darknet`] carries the full 416×416 Darknet-53 + YOLOv3-head layer
//! table for latency reproduction, plus scaled-down variants whose data
//! actually flows through simulated MRAM in tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod codegen;
pub mod darknet;
pub mod detect;
pub mod gemm;
pub mod im2col;
pub mod layers;
pub mod mapping;
pub mod quant;
pub mod reference;

pub use cfg::{parse_cfg, to_cfg, CfgError};
pub use codegen::{run_tier1_layer_resilient, ResilientLayer};
pub use darknet::{darknet53_yolov3, tiny_config, NetworkConfig};
pub use detect::{decode_and_nms, Detection};
pub use gemm::{gemm, GemmDims};
pub use im2col::im2col;
pub use layers::{Activation, ConvSpec, LayerSpec, Shape};
pub use mapping::{GemmMapping, LayerReport, NetworkReport, YoloPipeline};
pub use quant::{dequantize, quantize, QuantParams};

/// Round a byte count up to the host transfer rule (8 bytes).
#[must_use]
pub fn align8(bytes: usize) -> usize {
    bytes.div_ceil(8) * 8
}
