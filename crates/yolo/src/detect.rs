//! YOLO head decoding and non-maximum suppression (host side).
//!
//! Completes the network: raw head activations → sigmoid-decoded boxes →
//! class scores → NMS. With synthetic weights the boxes carry no semantic
//! meaning, but the full post-processing path is exercised so the pipeline
//! is structurally complete (the paper's Fig. 4.5 classification boxes are
//! "placed as a result of network completion").

use crate::layers::Shape;
use crate::mapping::YoloHeadOutput;
use serde::{Deserialize, Serialize};

/// One detection box in input-image coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Box center x.
    pub x: f32,
    /// Box center y.
    pub y: f32,
    /// Box width.
    pub w: f32,
    /// Box height.
    pub h: f32,
    /// Objectness × best class probability.
    pub confidence: f32,
    /// Best class index.
    pub class: usize,
}

impl Detection {
    /// Intersection-over-union with another box.
    #[must_use]
    pub fn iou(&self, other: &Detection) -> f32 {
        let half =
            |d: &Detection| (d.x - d.w / 2.0, d.y - d.h / 2.0, d.x + d.w / 2.0, d.y + d.h / 2.0);
        let (ax0, ay0, ax1, ay1) = half(self);
        let (bx0, by0, bx1, by1) = half(other);
        let iw = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let ih = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = iw * ih;
        let union = self.w * self.h + other.w * other.h - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Decode one head's activations into candidate detections.
///
/// The head layout is Darknet's: per anchor, channels
/// `[tx, ty, tw, th, obj, class...]`, spatially `shape.h × shape.w`.
#[must_use]
pub fn decode_head(head: &YoloHeadOutput, input_dim: usize, conf_threshold: f32) -> Vec<Detection> {
    let Shape { c, h, w } = head.shape;
    let anchors = &head.anchors;
    let per_anchor = c / anchors.len();
    assert!(per_anchor >= 5, "head needs at least 5 channels per anchor");
    let classes = per_anchor - 5;
    let at = |ch: usize, y: usize, x: usize| head.data[(ch * h + y) * w + x];
    let mut out = Vec::new();
    for (a, &(aw, ah)) in anchors.iter().enumerate() {
        let base = a * per_anchor;
        for y in 0..h {
            for x in 0..w {
                let obj = sigmoid(at(base + 4, y, x));
                if obj < conf_threshold {
                    continue;
                }
                let (mut best_c, mut best_p) = (0usize, f32::MIN);
                for k in 0..classes.max(1) {
                    let p = if classes == 0 { 1.0 } else { sigmoid(at(base + 5 + k, y, x)) };
                    if p > best_p {
                        best_p = p;
                        best_c = k;
                    }
                }
                let conf = obj * best_p;
                if conf < conf_threshold {
                    continue;
                }
                let cell = input_dim as f32 / w as f32;
                out.push(Detection {
                    x: (x as f32 + sigmoid(at(base, y, x))) * cell,
                    y: (y as f32 + sigmoid(at(base + 1, y, x))) * cell,
                    w: aw * at(base + 2, y, x).clamp(-4.0, 4.0).exp(),
                    h: ah * at(base + 3, y, x).clamp(-4.0, 4.0).exp(),
                    confidence: conf,
                    class: best_c,
                });
            }
        }
    }
    out
}

/// Greedy per-class non-maximum suppression.
#[must_use]
pub fn nms(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    dets.sort_by(|a, b| {
        b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep: Vec<Detection> = Vec::new();
    for d in dets {
        if keep.iter().all(|k| k.class != d.class || k.iou(&d) < iou_threshold) {
            keep.push(d);
        }
    }
    keep
}

/// Decode all heads and suppress duplicates — the full post-processing of
/// one frame.
#[must_use]
pub fn decode_and_nms(
    heads: &[YoloHeadOutput],
    input_dim: usize,
    conf_threshold: f32,
    iou_threshold: f32,
) -> Vec<Detection> {
    let mut all = Vec::new();
    for h in heads {
        all.extend(decode_head(h, input_dim, conf_threshold));
    }
    nms(all, iou_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(x: f32, y: f32, w: f32, h: f32, conf: f32, class: usize) -> Detection {
        Detection { x, y, w, h, confidence: conf, class }
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = boxed(10.0, 10.0, 4.0, 4.0, 1.0, 0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = boxed(100.0, 100.0, 4.0, 4.0, 1.0, 0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = boxed(0.0, 0.0, 4.0, 4.0, 1.0, 0);
        let b = boxed(2.0, 0.0, 4.0, 4.0, 1.0, 0);
        // Intersection 2x4=8, union 32-8=24.
        assert!((a.iou(&b) - 8.0 / 24.0).abs() < 1e-6);
    }

    #[test]
    fn nms_keeps_best_per_cluster() {
        let dets = vec![
            boxed(10.0, 10.0, 8.0, 8.0, 0.9, 1),
            boxed(11.0, 10.0, 8.0, 8.0, 0.7, 1), // overlaps the first
            boxed(40.0, 40.0, 8.0, 8.0, 0.8, 1), // separate
            boxed(10.0, 10.0, 8.0, 8.0, 0.6, 2), // other class, same spot
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 3);
        assert!((kept[0].confidence - 0.9).abs() < 1e-6);
    }

    #[test]
    fn decode_head_finds_strong_cell() {
        use crate::layers::Shape;
        // 1 anchor, 5+1 channels, 2x2 grid; activate cell (1,0).
        let shape = Shape { c: 6, h: 2, w: 2 };
        let mut data = vec![-10.0f32; 6 * 4];
        let set = |ch: usize, y: usize, x: usize, v: f32, data: &mut [f32]| {
            data[(ch * 2 + y) * 2 + x] = v;
        };
        set(4, 1, 0, 10.0, &mut data); // objectness
        set(5, 1, 0, 10.0, &mut data); // class 0
        set(2, 1, 0, 0.0, &mut data); // tw → exp(0)=1
        set(3, 1, 0, 0.0, &mut data);
        let head =
            crate::mapping::YoloHeadOutput { layer: 0, shape, data, anchors: vec![(16.0, 16.0)] };
        let dets = decode_head(&head, 32, 0.5);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, 0);
        assert!((d.w - 16.0).abs() < 1e-3);
        // Cell (y=1,x=0) of a 2x2 grid on a 32px input → x in [0,16), y in [16,32).
        assert!(d.x < 16.0 && d.y >= 16.0);
    }

    #[test]
    fn low_confidence_is_dropped() {
        use crate::layers::Shape;
        let head = crate::mapping::YoloHeadOutput {
            layer: 0,
            shape: Shape { c: 6, h: 2, w: 2 },
            data: vec![-10.0; 24],
            anchors: vec![(8.0, 8.0)],
        };
        assert!(decode_head(&head, 32, 0.3).is_empty());
    }
}
