//! The fixed-point GEMM of the paper's Algorithm 2.
//!
//! ```text
//! procedure GEMM(M, N, K, ALPHA, A, B, C)
//!   ctmp <- array(4*N)                      // i32 accumulators
//!   for i in 0..M:
//!     for k in 0..K:
//!       APART = ALPHA * A[i*K + k]
//!       for j in 0..N:
//!         ctmp[j] = APART * B[k*N + j] + ctmp[j]
//!     for j in 0..N:
//!       C[i*N + j] = absolutemax(ctmp[j] / 32, 32767)
//!       ctmp[j] = 0
//! ```
//!
//! `A` is `M×K` (one row per filter), `B` is `K×N` (im2col'd input), `C` is
//! `M×N`. `absolutemax(x, 32767)` clamps to the `i16` range; the divide by
//! 32 re-scales the product of two Q-formats back into range.

use serde::{Deserialize, Serialize};

/// Dimensions of one GEMM call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Rows of `A` and `C` — the layer's filter count.
    pub m: usize,
    /// Columns of `B` and `C` — output pixels of the layer.
    pub n: usize,
    /// Inner dimension — `in_channels × kernel × kernel`.
    pub k: usize,
}

impl GemmDims {
    /// Multiply-accumulate operations this GEMM performs.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Bytes of the three matrices at `i16` precision.
    #[must_use]
    pub fn bytes(&self) -> (u64, u64, u64) {
        ((self.m * self.k * 2) as u64, (self.k * self.n * 2) as u64, (self.m * self.n * 2) as u64)
    }
}

/// The accumulator re-scale of Algorithm 2 line 9:
/// `absolutemax(x / 32, 32767)` — divide, then clamp symmetrically.
#[must_use]
pub fn absolutemax_rescale(acc: i64) -> i16 {
    let scaled = acc / 32;
    scaled.clamp(-32767, 32767) as i16
}

/// Algorithm 2, verbatim (host-reference single-threaded path).
///
/// # Panics
/// When slice lengths don't match `dims`.
pub fn gemm(dims: GemmDims, alpha: i32, a: &[i16], b: &[i16], c: &mut [i16]) {
    let GemmDims { m, n, k } = dims;
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    let mut ctmp = vec![0i64; n];
    for i in 0..m {
        for kk in 0..k {
            let apart = i64::from(alpha) * i64::from(a[i * k + kk]);
            let brow = &b[kk * n..(kk + 1) * n];
            for (acc, &bv) in ctmp.iter_mut().zip(brow) {
                *acc += apart * i64::from(bv);
            }
        }
        for (j, acc) in ctmp.iter_mut().enumerate() {
            c[i * n + j] = absolutemax_rescale(*acc);
            *acc = 0;
        }
    }
}

/// One row of the GEMM — what a single DPU computes under the Fig. 4.6
/// mapping: row `i` of `A` against all of `B`, producing row `i` of `C`.
///
/// # Panics
/// When slice lengths don't match.
pub fn gemm_row(dims: GemmDims, alpha: i32, a_row: &[i16], b: &[i16], c_row: &mut [i16]) {
    let GemmDims { n, k, .. } = dims;
    assert_eq!(a_row.len(), k, "A row shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c_row.len(), n, "C row shape mismatch");
    let mut ctmp = vec![0i64; n];
    for kk in 0..k {
        let apart = i64::from(alpha) * i64::from(a_row[kk]);
        let brow = &b[kk * n..(kk + 1) * n];
        for (acc, &bv) in ctmp.iter_mut().zip(brow) {
            *acc += apart * i64::from(bv);
        }
    }
    for (out, acc) in c_row.iter_mut().zip(&ctmp) {
        *out = absolutemax_rescale(*acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_vector() {
        // A = 32*I so the /32 rescale cancels.
        let dims = GemmDims { m: 3, n: 2, k: 3 };
        let mut a = vec![0i16; 9];
        for i in 0..3 {
            a[i * 3 + i] = 32;
        }
        let b = vec![1i16, 2, 3, 4, 5, 6];
        let mut c = vec![0i16; 6];
        gemm(dims, 1, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn rescale_clamps_symmetrically() {
        assert_eq!(absolutemax_rescale(32 * 40000), 32767);
        assert_eq!(absolutemax_rescale(-32 * 40000), -32767);
        assert_eq!(absolutemax_rescale(64), 2);
        assert_eq!(absolutemax_rescale(-64), -2);
    }

    #[test]
    fn alpha_scales_output() {
        let dims = GemmDims { m: 1, n: 1, k: 1 };
        let mut c1 = vec![0i16; 1];
        let mut c2 = vec![0i16; 1];
        gemm(dims, 1, &[32], &[10], &mut c1);
        gemm(dims, 3, &[32], &[10], &mut c2);
        assert_eq!(c2[0], 3 * c1[0]);
    }

    #[test]
    fn macs_and_bytes() {
        let d = GemmDims { m: 64, n: 100, k: 27 };
        assert_eq!(d.macs(), 64 * 100 * 27);
        assert_eq!(d.bytes(), (64 * 27 * 2, 27 * 100 * 2, 64 * 100 * 2));
    }

    proptest! {
        /// Row-per-DPU decomposition equals the monolithic GEMM — the
        /// functional core of the Fig. 4.6 mapping.
        #[test]
        fn rows_compose_to_full_gemm(
            m in 1usize..5, n in 1usize..8, k in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let dims = GemmDims { m, n, k };
            let a: Vec<i16> = (0..m * k).map(|_| rng.gen_range(-100..100)).collect();
            let b: Vec<i16> = (0..k * n).map(|_| rng.gen_range(-100..100)).collect();
            let mut c_full = vec![0i16; m * n];
            gemm(dims, 2, &a, &b, &mut c_full);
            for i in 0..m {
                let mut c_row = vec![0i16; n];
                gemm_row(dims, 2, &a[i * k..(i + 1) * k], &b, &mut c_row);
                prop_assert_eq!(&c_row[..], &c_full[i * n..(i + 1) * n]);
            }
        }

        /// The i64 accumulator never wraps for i16 operands at YOLO scales.
        #[test]
        fn accumulator_headroom(k in 1usize..2000) {
            // worst case |alpha*a*b| = 1 * 32767^2 ≈ 2^30; k of them stays
            // far below i64::MAX.
            let worst = (k as i64) * 32767 * 32767;
            prop_assert!(worst < i64::MAX / 4);
        }
    }
}
