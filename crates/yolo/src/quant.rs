//! Fixed-point quantization — the host-side half of the paper's split.
//!
//! The DPU "only supports fixed-point operations", so the host quantizes
//! float tensors to `i16` before dispatch and de-quantizes results after
//! (§4.2.3: "Since quantization/de-quantization is not supported by the
//! DPUs, the GEMM functions are only delegated to the DPUs"). Symmetric
//! linear quantization with a power-of-two scale keeps the DPU-side
//! arithmetic to shifts.

use serde::{Deserialize, Serialize};

/// Symmetric power-of-two quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Values are multiplied by `2^shift` when quantizing.
    pub shift: u32,
}

impl QuantParams {
    /// Parameters quantizing `[-range, range]` floats into the full `i16`
    /// span with a power-of-two scale.
    ///
    /// # Panics
    /// When `range` is not positive and finite.
    #[must_use]
    pub fn for_range(range: f32) -> Self {
        assert!(range.is_finite() && range > 0.0, "range must be positive");
        // Largest power-of-two scale keeping range within i16.
        let mut shift = 0u32;
        while (range * ((1u64 << (shift + 1)) as f32)) <= i16::MAX as f32 && shift < 14 {
            shift += 1;
        }
        Self { shift }
    }

    /// The multiplicative scale `2^shift`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        (1u64 << self.shift) as f32
    }
}

/// Quantize floats to `i16` with saturation.
#[must_use]
pub fn quantize(values: &[f32], q: QuantParams) -> Vec<i16> {
    values
        .iter()
        .map(|&v| {
            let scaled = (v * q.scale()).round();
            scaled.clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16
        })
        .collect()
}

/// De-quantize `i16` values back to floats.
#[must_use]
pub fn dequantize(values: &[i16], q: QuantParams) -> Vec<f32> {
    values.iter().map(|&v| f32::from(v) / q.scale()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = QuantParams::for_range(4.0);
        let vals = vec![0.0f32, 1.5, -3.99, 0.333, std::f32::consts::E];
        let back = dequantize(&quantize(&vals, q), q);
        let step = 1.0 / q.scale();
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn saturation_clamps() {
        let q = QuantParams { shift: 14 };
        let out = quantize(&[10.0, -10.0], q);
        assert_eq!(out, vec![i16::MAX, i16::MIN]);
    }

    #[test]
    fn range_fits_i16() {
        for range in [0.5f32, 1.0, 4.0, 100.0] {
            let q = QuantParams::for_range(range);
            let v = quantize(&[range, -range], q);
            assert!(v[0] > i16::MAX / 4, "range {range} underuses i16: {}", v[0]);
        }
    }

    proptest! {
        #[test]
        fn quantize_is_monotone(a in -4.0f32..4.0, b in -4.0f32..4.0) {
            let q = QuantParams::for_range(4.0);
            let (qa, qb) = (quantize(&[a], q)[0], quantize(&[b], q)[0]);
            if a <= b {
                prop_assert!(qa <= qb);
            }
        }

        #[test]
        fn round_trip_bounded(v in -4.0f32..4.0) {
            let q = QuantParams::for_range(4.0);
            let back = dequantize(&quantize(&[v], q), q)[0];
            prop_assert!((v - back).abs() <= 0.5 / q.scale() + 1e-6);
        }
    }
}
