//! Float reference convolution for validating the quantized GEMM path.
//!
//! The paper uses "a quantized version of YOLOv3" because the DPUs only do
//! fixed point; the accuracy cost of quantization is bounded by comparing
//! the fixed-point GEMM+rescale against a float convolution of the same
//! weights.

use crate::im2col::Im2colDims;

/// Direct float convolution: `weights` is `M × (C·k·k)` row-major,
/// `input` is `C×H×W`; returns `M × out_h·out_w`.
///
/// # Panics
/// When shapes mismatch.
#[must_use]
pub fn conv_f32(weights: &[f32], m: usize, input: &[f32], d: Im2colDims) -> Vec<f32> {
    assert_eq!(input.len(), d.channels * d.height * d.width, "input shape mismatch");
    assert_eq!(weights.len(), m * d.rows(), "weight shape mismatch");
    let (out_h, out_w) = (d.out_h(), d.out_w());
    let mut out = vec![0f32; m * out_h * out_w];
    for f in 0..m {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0f32;
                for c in 0..d.channels {
                    for ky in 0..d.kernel {
                        for kx in 0..d.kernel {
                            let iy = (oy * d.stride + ky) as isize - d.pad as isize;
                            let ix = (ox * d.stride + kx) as isize - d.pad as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < d.height
                                && (ix as usize) < d.width
                            {
                                let w = weights[f * d.rows() + (c * d.kernel + ky) * d.kernel + kx];
                                let v = input[(c * d.height + iy as usize) * d.width + ix as usize];
                                acc += w * v;
                            }
                        }
                    }
                }
                out[f * out_h * out_w + oy * out_w + ox] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmDims};
    use crate::im2col::im2col;
    use crate::quant::{dequantize, quantize, QuantParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantized_gemm_tracks_float_conv() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Im2colDims { channels: 3, height: 8, width: 8, kernel: 3, stride: 1, pad: 1 };
        let m = 4;
        let wf: Vec<f32> = (0..m * d.rows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xf: Vec<f32> = (0..3 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let reference = conv_f32(&wf, m, &xf, d);

        // Weights in Q5 so Algorithm 2's /32 rescale cancels the weight
        // scale and the output keeps the activation scale (Q7) — the
        // scheme that makes layers chainable in fixed point.
        let qw = QuantParams { shift: 5 };
        let qx = QuantParams { shift: 7 };
        let wq = quantize(&wf, qw);
        let xq = quantize(&xf, qx);
        let b = im2col(&xq, d);
        let dims = GemmDims { m, n: d.cols(), k: d.rows() };
        let mut c = vec![0i16; m * d.cols()];
        gemm(dims, 1, &wq, &b, &mut c);
        let back = dequantize(&c, qx);
        let mut worst = 0f32;
        for (r, b) in reference.iter().zip(&back) {
            worst = worst.max((r - b).abs());
        }
        // 27-tap conv of values in [-1,1] at Q5 weights: half-step error
        // per tap bounds the sum to well under 0.3.
        assert!(worst < 0.3, "quantization error too large: {worst}");
    }
}
