//! Darknet `.cfg` parsing and emission.
//!
//! YOLOv3 ships as a Darknet configuration file; supporting the format
//! means a user can point this crate at their own `.cfg` instead of the
//! built-in table. The parser covers the sections YOLOv3 uses
//! (`[net] [convolutional] [shortcut] [route] [upsample] [yolo]`) with
//! Darknet's index conventions: `shortcut from` and `route layers` accept
//! negative (relative) or non-negative (absolute) layer indices, and
//! `[yolo]`'s `mask` selects from the 9-entry `anchors` list.
//!
//! [`to_cfg`] emits the same format back, and the round-trip against the
//! built-in [`crate::darknet::darknet53_yolov3`] table is tested — the
//! hand-built table and the parser validate each other.

use crate::darknet::NetworkConfig;
use crate::layers::{Activation, ConvSpec, LayerSpec, Shape};
use std::fmt;

/// Errors from `.cfg` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CfgError {}

#[derive(Debug)]
struct Section {
    name: String,
    line: usize,
    keys: Vec<(String, String)>,
}

impl Section {
    fn get(&self, key: &str) -> Option<&str> {
        self.keys.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, CfgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.trim().parse().map_err(|_| CfgError {
                line: self.line,
                msg: format!("bad integer for `{key}`: `{v}`"),
            }),
        }
    }
}

fn split_sections(text: &str) -> Result<Vec<Section>, CfgError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(&['#', ';'][..]).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| CfgError { line: line_no, msg: "unterminated section".into() })?;
            sections.push(Section { name: name.to_owned(), line: line_no, keys: Vec::new() });
        } else if let Some((k, v)) = line.split_once('=') {
            let section = sections.last_mut().ok_or_else(|| CfgError {
                line: line_no,
                msg: "key before any [section]".into(),
            })?;
            section.keys.push((k.trim().to_owned(), v.trim().to_owned()));
        } else {
            return Err(CfgError { line: line_no, msg: format!("unparseable line `{line}`") });
        }
    }
    Ok(sections)
}

/// Resolve a Darknet layer reference (negative = relative to the current
/// layer) to an absolute index.
fn resolve_index(v: i64, current: usize, line: usize) -> Result<usize, CfgError> {
    let abs = if v < 0 { current as i64 + v } else { v };
    if abs < 0 || abs >= current as i64 {
        return Err(CfgError {
            line,
            msg: format!("layer reference {v} resolves outside 0..{current}"),
        });
    }
    Ok(abs as usize)
}

/// Parse Darknet `.cfg` text into a [`NetworkConfig`].
///
/// # Errors
/// [`CfgError`] with a line number on any malformed section, key, or layer
/// reference.
pub fn parse_cfg(name: &str, text: &str) -> Result<NetworkConfig, CfgError> {
    let sections = split_sections(text)?;
    let mut iter = sections.into_iter();
    let net = iter
        .next()
        .filter(|s| s.name == "net" || s.name == "network")
        .ok_or(CfgError { line: 1, msg: "first section must be [net]".into() })?;
    let width = net.get_usize("width", 416)?;
    let height = net.get_usize("height", 416)?;
    let channels = net.get_usize("channels", 3)?;
    if width != height {
        return Err(CfgError { line: net.line, msg: "only square inputs supported".into() });
    }

    let mut layers = Vec::new();
    for s in iter {
        let current = layers.len();
        match s.name.as_str() {
            "convolutional" => {
                let filters = s.get_usize("filters", 1)?;
                let size = s.get_usize("size", 1)?;
                let stride = s.get_usize("stride", 1)?;
                // Darknet: pad=1 means "use size/2 padding".
                let pad =
                    if s.get_usize("pad", 0)? == 1 { size / 2 } else { s.get_usize("padding", 0)? };
                let activation = match s.get("activation").unwrap_or("linear") {
                    "leaky" => Activation::Leaky,
                    "linear" => Activation::Linear,
                    other => {
                        return Err(CfgError {
                            line: s.line,
                            msg: format!("unsupported activation `{other}`"),
                        })
                    }
                };
                layers.push(LayerSpec::Conv(ConvSpec { filters, size, stride, pad, activation }));
            }
            "shortcut" => {
                let v: i64 = s
                    .get("from")
                    .ok_or(CfgError { line: s.line, msg: "[shortcut] needs `from`".into() })?
                    .trim()
                    .parse()
                    .map_err(|_| CfgError { line: s.line, msg: "bad `from`".into() })?;
                layers.push(LayerSpec::Shortcut { from: resolve_index(v, current, s.line)? });
            }
            "route" => {
                let list = s
                    .get("layers")
                    .ok_or(CfgError { line: s.line, msg: "[route] needs `layers`".into() })?;
                let mut resolved = Vec::new();
                for tok in list.split(',') {
                    let v: i64 = tok.trim().parse().map_err(|_| CfgError {
                        line: s.line,
                        msg: format!("bad route index `{tok}`"),
                    })?;
                    resolved.push(resolve_index(v, current, s.line)?);
                }
                layers.push(LayerSpec::Route { layers: resolved });
            }
            "maxpool" => {
                let size = s.get_usize("size", 2)?;
                let stride = s.get_usize("stride", size)?;
                let pad = s.get_usize("padding", 0)?;
                layers.push(LayerSpec::MaxPool { size, stride, pad });
            }
            "upsample" => {
                if s.get_usize("stride", 2)? != 2 {
                    return Err(CfgError { line: s.line, msg: "only stride-2 upsample".into() });
                }
                layers.push(LayerSpec::Upsample);
            }
            "yolo" => {
                let anchors_raw = s.get("anchors").unwrap_or("");
                let nums: Vec<f32> = anchors_raw
                    .split(',')
                    .filter(|t| !t.trim().is_empty())
                    .map(|t| t.trim().parse::<f32>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| CfgError { line: s.line, msg: "bad anchors".into() })?;
                let all: Vec<(f32, f32)> = nums.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                let anchors = match s.get("mask") {
                    None => all,
                    Some(mask) => mask
                        .split(',')
                        .map(|t| {
                            let i: usize = t.trim().parse().map_err(|_| CfgError {
                                line: s.line,
                                msg: format!("bad mask entry `{t}`"),
                            })?;
                            all.get(i).copied().ok_or(CfgError {
                                line: s.line,
                                msg: format!("mask index {i} outside anchors"),
                            })
                        })
                        .collect::<Result<_, _>>()?,
                };
                layers.push(LayerSpec::Yolo { anchors });
            }
            other => {
                return Err(CfgError {
                    line: s.line,
                    msg: format!("unsupported section [{other}]"),
                })
            }
        }
    }
    Ok(NetworkConfig {
        name: name.to_owned(),
        input: Shape { c: channels, h: height, w: width },
        layers,
    })
}

/// Emit a [`NetworkConfig`] as Darknet `.cfg` text (relative indices for
/// shortcut/route references before the current layer, Darknet style).
#[must_use]
pub fn to_cfg(net: &NetworkConfig) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "[net]\nwidth={}\nheight={}\nchannels={}\n",
        net.input.w, net.input.h, net.input.c
    );
    for (i, layer) in net.layers.iter().enumerate() {
        match layer {
            LayerSpec::Conv(c) => {
                let act = match c.activation {
                    Activation::Leaky => "leaky",
                    Activation::Linear => "linear",
                };
                let _ = writeln!(
                    s,
                    "[convolutional]\nfilters={}\nsize={}\nstride={}\npad={}\nactivation={act}\n",
                    c.filters,
                    c.size,
                    c.stride,
                    usize::from(c.pad == c.size / 2 && c.pad > 0)
                );
            }
            LayerSpec::Shortcut { from } => {
                let _ = writeln!(s, "[shortcut]\nfrom={}\n", *from as i64 - i as i64);
            }
            LayerSpec::Route { layers } => {
                let list: Vec<String> =
                    layers.iter().map(|&l| (l as i64 - i as i64).to_string()).collect();
                let _ = writeln!(s, "[route]\nlayers={}\n", list.join(","));
            }
            LayerSpec::MaxPool { size, stride, pad } => {
                let _ = writeln!(s, "[maxpool]\nsize={size}\nstride={stride}\npadding={pad}\n");
            }
            LayerSpec::Upsample => {
                let _ = writeln!(s, "[upsample]\nstride=2\n");
            }
            LayerSpec::Yolo { anchors } => {
                let list: Vec<String> =
                    anchors.iter().flat_map(|&(w, h)| [format!("{w}"), format!("{h}")]).collect();
                let _ = writeln!(s, "[yolo]\nanchors={}\n", list.join(","));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::darknet::{darknet53_yolov3, tiny_config};

    #[test]
    fn parses_a_minimal_cfg() {
        let text = "\
            [net]\n\
            width=32\n\
            height=32\n\
            channels=3\n\
            \n\
            [convolutional]\n\
            filters=8\n\
            size=3\n\
            stride=1\n\
            pad=1\n\
            activation=leaky\n\
            \n\
            [convolutional]\n\
            filters=4\n\
            size=1\n\
            stride=1\n\
            activation=linear\n\
            \n\
            [shortcut]\n\
            from=-2\n\
            # a comment\n\
            \n\
            [upsample]\n\
            stride=2\n\
            \n\
            [route]\n\
            layers = -1, 0\n\
            \n\
            [yolo]\n\
            mask = 0,1\n\
            anchors = 10,14, 23,27, 37,58\n";
        let net = parse_cfg("mini", text).unwrap();
        assert_eq!(net.input, Shape { c: 3, h: 32, w: 32 });
        assert_eq!(net.layers.len(), 6);
        assert!(matches!(net.layers[2], LayerSpec::Shortcut { from: 0 }));
        assert!(matches!(&net.layers[4], LayerSpec::Route { layers } if layers == &vec![3, 0]));
        match &net.layers[5] {
            LayerSpec::Yolo { anchors } => {
                assert_eq!(anchors, &vec![(10.0, 14.0), (23.0, 27.0)]);
            }
            other => panic!("expected yolo, got {other:?}"),
        }
        // Shapes resolve (shortcut of conv0's 8ch output vs conv1's 4ch
        // would panic — but conv1 has 4 filters vs conv0 8: the shortcut
        // *should* fail shape-check downstream, which we don't trigger
        // here) — instead verify the route concatenation works.
        let _ = net.layers.len();
    }

    #[test]
    fn round_trips_the_builtin_yolov3() {
        let net = darknet53_yolov3();
        let text = to_cfg(&net);
        let back = parse_cfg("yolov3-416", &text).unwrap();
        assert_eq!(back.input, net.input);
        assert_eq!(back.layers, net.layers);
        assert_eq!(back.total_macs(), net.total_macs());
    }

    #[test]
    fn round_trips_the_tiny_config() {
        let net = tiny_config();
        let back = parse_cfg(&net.name, &to_cfg(&net)).unwrap();
        assert_eq!(back.layers, net.layers);
        assert_eq!(back.shapes(), net.shapes());
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        assert!(parse_cfg("x", "filters=3\n").unwrap_err().msg.contains("before any"));
        let e = parse_cfg("x", "[net]\nwidth=416\nheight=416\n[bogus]\n").unwrap_err();
        assert_eq!(e.line, 4);
        let e2 = parse_cfg("x", "[net]\nwidth=32\nheight=32\n[shortcut]\nfrom=-5\n").unwrap_err();
        assert!(e2.msg.contains("resolves outside"));
        let e3 = parse_cfg("x", "[net]\nwidth=32\nheight=64\n").unwrap_err();
        assert!(e3.msg.contains("square"));
    }

    #[test]
    fn parsed_cfg_feeds_the_pipeline() {
        let net = tiny_config();
        let parsed = parse_cfg(&net.name, &to_cfg(&net)).unwrap();
        let input: Vec<f32> = vec![0.3; parsed.input.len()];
        let (heads, _) = crate::YoloPipeline::new(parsed).run(&input).unwrap();
        assert_eq!(heads.len(), 2);
    }
}
