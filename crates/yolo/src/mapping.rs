//! The multi-DPU-per-image GEMM mapping (Fig. 4.6) and network-level
//! orchestration.
//!
//! Per layer, the outer loop of Algorithm 2 is unrolled across DPUs: DPU
//! *i* receives row *i* of the weight matrix `A`, the **entire** input
//! matrix `B`, and computes row *i* of the output `C` — so a layer with `M`
//! filters occupies `M` DPUs. Tasklets inside a DPU split the inner loop:
//! tasklet *t* owns every column `j ≡ t (mod T)` ("one column index ... and
//! subsequent multiples", §4.2.3).
//!
//! ## Where the 65 seconds go
//!
//! Two costs dominate, both reproduced by this module:
//!
//! 1. **Host→DPU traffic.** Because every DPU gets all of `B`, a layer
//!    ships `M × |B|` bytes over the host link. Summed over YOLOv3's 75
//!    conv layers that is `2 bytes × total MACs ≈ 65 GB`; at a realistic
//!    ~1 GB/s effective host→MRAM bandwidth this alone accounts for the
//!    paper's 65 s/frame and ≈0.9 s/layer average.
//! 2. **MRAM-resident working set.** `B` and the `ctmp` accumulator exceed
//!    WRAM (§4.3.4 quotes 160 KB of internal buffer against a 5.8 KB
//!    per-tasklet stack), so every inner-loop access is an 8-byte DMA
//!    round-trip — the kernel is memory-bound (§4.3.3).

use crate::darknet::NetworkConfig;
use crate::gemm::{gemm_row, GemmDims};
use crate::im2col::{im2col, Im2colDims};
use crate::layers::{LayerSpec, Shape};
use crate::quant::{dequantize, quantize, QuantParams};
use dpu_sim::cost::KernelEstimate;
use dpu_sim::{DpuId, DpuParams};
use pim_host::{DpuSet, HostError, KernelRun, OptLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Effective host→MRAM bandwidth in bytes/second used for transfer-time
/// accounting. UPMEM's measured host link sustains on the order of
/// 0.3–6 GB/s depending on access pattern (Gómez-Luna et al. 2021); the
/// serial per-DPU copy pattern of this mapping sits near the low end.
pub const DEFAULT_HOST_BW: f64 = 1.0e9;

/// Configuration of the GEMM-on-DPUs mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmMapping {
    /// Device parameters.
    pub params: DpuParams,
    /// Compiler optimization level of the DPU program.
    pub opt: OptLevel,
    /// Tasklets per DPU (the paper saturates at 11).
    pub tasklets: usize,
    /// Host→DPU effective bandwidth, bytes/second.
    pub host_bw: f64,
}

impl Default for GemmMapping {
    fn default() -> Self {
        Self {
            params: DpuParams::default(),
            opt: OptLevel::O3,
            tasklets: 11,
            host_bw: DEFAULT_HOST_BW,
        }
    }
}

impl GemmMapping {
    /// Cycle/time estimate for one conv layer under this mapping, without
    /// materializing data. Every DPU runs the identical kernel (same `B`,
    /// same row length), so one per-DPU estimate covers the layer.
    #[must_use]
    pub fn estimate_layer(&self, dims: GemmDims) -> LayerReport {
        let mut run = KernelRun::new(self.params, self.opt, self.tasklets);
        let t_count = self.tasklets;
        let ctmp_in_wram = self.ctmp_fits_wram(dims);

        // A row: K i16, one up-front DMA into WRAM (it fits: K ≤ 9216).
        run.charge_dma(0, dims.k * 2);

        for t in 0..t_count {
            // Columns owned by tasklet t: j ≡ t (mod T).
            let cols = (dims.n + t_count - 1 - t) / t_count;
            let iters = (dims.k * cols) as u64;
            let tally = run.tally(t);
            // Inner loop body per iteration: the multiply, the accumulate,
            // addressing, and the memory traffic. The B element always
            // comes from MRAM (B never fits WRAM), through the
            // `mram_read` library wrapper (~8 instructions of address
            // arithmetic, bounds masking and word extract around the DMA
            // instruction — what "almost all memory accesses go to MRAM"
            // costs, §4.3.3). The ctmp accumulator read-modify-write goes
            // the same way *unless* the per-tasklet ctmp tile fits the
            // tasklet's WRAM stack budget — the paper's §4.3.4 complaint
            // is precisely that at YOLOv3's widest layers it does not.
            tally.mul16 += iters;
            tally.loops += iters;
            if ctmp_in_wram {
                tally.alu += (3 + 8) * iters;
                tally.load += iters; // ctmp read in WRAM
                tally.store += iters; // ctmp write in WRAM
                tally.mram_transfers += iters;
                tally.mram_bytes += 8 * iters;
            } else {
                tally.alu += (3 + 3 * 8) * iters;
                tally.mram_transfers += 3 * iters;
                tally.mram_bytes += 24 * iters;
            }
            // APART recomputation per k (shared A row in WRAM).
            tally.mul16 += dims.k as u64;
            tally.load += dims.k as u64;
            // Epilogue per owned column: /32 (a shift), clamp, C store.
            tally.alu += 3 * cols as u64;
            tally.mram_transfers += cols as u64;
            tally.mram_bytes += 8 * cols as u64;
        }
        let kernel = run.estimate();
        self.report(dims, kernel)
    }

    /// Whether each tasklet's slice of the `ctmp` accumulator (4 bytes per
    /// owned column) fits in half of its WRAM stack budget. At 64 KiB WRAM
    /// and 11 tasklets the budget is ≈5.8 KiB (§4.3.4), so layers wider
    /// than ≈8000 output pixels spill `ctmp` to MRAM.
    #[must_use]
    pub fn ctmp_fits_wram(&self, dims: GemmDims) -> bool {
        let cols_per_tasklet = dims.n.div_ceil(self.tasklets);
        4 * cols_per_tasklet <= self.params.max_stack_bytes(self.tasklets) / 2
    }

    fn report(&self, dims: GemmDims, kernel: KernelEstimate) -> LayerReport {
        let (a_bytes, b_bytes, c_bytes) = dims.bytes();
        // Every DPU receives the whole B; A and C move one row per DPU.
        let host_bytes = b_bytes * dims.m as u64 + a_bytes + c_bytes;
        let host_transfer_seconds = host_bytes as f64 / self.host_bw;
        let dpu_seconds = kernel.seconds(&self.params);
        LayerReport {
            dims,
            dpus: dims.m,
            memory_bound: kernel.is_memory_bound(),
            kernel,
            dpu_seconds,
            host_bytes,
            host_transfer_seconds,
            total_seconds: dpu_seconds + host_transfer_seconds,
            measured_host_bytes: 0,
        }
    }

    /// Functionally execute one layer's GEMM on a simulated DPU set: scatter
    /// `A` rows, broadcast `B`, run the row kernels, gather `C`. Data
    /// really flows through each DPU's MRAM. Use with small dims; the
    /// timing model is identical to [`GemmMapping::estimate_layer`].
    ///
    /// # Errors
    /// Host-runtime failures (allocation beyond 2560 DPUs, transfer
    /// violations).
    ///
    /// # Panics
    /// When slice lengths don't match `dims`.
    pub fn run_layer(
        &self,
        dims: GemmDims,
        alpha: i32,
        a: &[i16],
        b: &[i16],
    ) -> Result<(Vec<i16>, LayerReport), HostError> {
        assert_eq!(a.len(), dims.m * dims.k, "A shape mismatch");
        assert_eq!(b.len(), dims.k * dims.n, "B shape mismatch");
        let mut set = DpuSet::allocate_with(dims.m, self.params)?;
        let a_row_bytes = crate::align8(dims.k * 2);
        let b_bytes = crate::align8(dims.k * dims.n * 2);
        let c_row_bytes = crate::align8(dims.n * 2);
        set.define_symbol("a_row", a_row_bytes)?;
        set.define_symbol("b", b_bytes)?;
        set.define_symbol("c_row", c_row_bytes)?;
        set.define_symbol("n_cols", 8)?;

        // Scatter A rows; broadcast B (Eq. 3.1); send true N (8-byte rule).
        let mut batch = pim_host::XferBatch::new();
        for i in 0..dims.m {
            let row = &a[i * dims.k..(i + 1) * dims.k];
            batch.prepare(pim_host::to_wire(row).data);
        }
        batch.push(&mut set, "a_row", 0, a_row_bytes)?;
        set.copy_values_to("b", b)?;
        set.copy_scalar_to("n_cols", dims.n as u64)?;

        // Run the row kernel on every DPU (functional + write into MRAM).
        for i in 0..dims.m {
            let mut c_row = vec![0i16; dims.n];
            gemm_row(dims, alpha, &a[i * dims.k..(i + 1) * dims.k], b, &mut c_row);
            set.copy_values_to_dpu(DpuId(i as u32), "c_row", 0, &c_row)?;
        }

        // Gather C (Eq. 3.2/3.3 in the FROM direction).
        let mut c = vec![0i16; dims.m * dims.n];
        for i in 0..dims.m {
            let row: Vec<i16> = set.copy_values_from_dpu(DpuId(i as u32), "c_row", 0, dims.n)?;
            c[i * dims.n..(i + 1) * dims.n].copy_from_slice(&row);
        }
        let mut report = self.estimate_layer(dims);
        report.measured_host_bytes = set.total_bytes_to_dpus();
        Ok((c, report))
    }
}

impl GemmMapping {
    /// Estimate the *alternative* mapping the paper's future work proposes
    /// (§6.1): one whole frame per DPU, emulating the eBNN
    /// multi-image-per-DPU method, with different frames on different DPUs.
    ///
    /// The catch the analysis exposes: the full YOLOv3 weight set
    /// (≈123 MB at `i16`) exceeds the 64 MB MRAM, so the mapping is
    /// *infeasible* at full scale — which is exactly why the paper's
    /// implementation spread single frames across DPUs instead. For
    /// scaled-down networks whose weights fit, the mapping wins decisively
    /// on system throughput: weights are broadcast once and each frame
    /// ships only its input over the host link, instead of `M × |B|` per
    /// layer.
    #[must_use]
    pub fn estimate_frame_per_dpu(
        &self,
        network: &crate::darknet::NetworkConfig,
    ) -> FramePerDpuReport {
        let layers = network.conv_layers();
        let weights_bytes: u64 = layers.iter().map(|(_, _, _, d)| d.bytes().0).sum();
        // Activations double-buffer: the two largest consecutive tensors.
        let shapes = network.shapes();
        let max_act: u64 = shapes.iter().map(|s| (s.len() * 2) as u64).max().unwrap_or(0);
        let fits_mram = weights_bytes + 2 * max_act + (network.input.len() * 2) as u64
            <= self.params.mram_bytes as u64;

        // One DPU computes every GEMM of the frame sequentially.
        let mut frame_cycles = 0u64;
        for (_, _, _, dims) in &layers {
            let mut run = KernelRun::new(self.params, self.opt, self.tasklets);
            let ctmp_in_wram = self.ctmp_fits_wram(*dims);
            for t in 0..self.tasklets {
                let cols = (dims.n + self.tasklets - 1 - t) / self.tasklets;
                let iters = (dims.m * dims.k * cols) as u64;
                let tally = run.tally(t);
                tally.mul16 += iters;
                tally.loops += iters;
                if ctmp_in_wram {
                    // B element + A element from MRAM, ctmp in WRAM.
                    tally.alu += (3 + 2 * 8) * iters;
                    tally.load += iters;
                    tally.store += iters;
                    tally.mram_transfers += 2 * iters;
                    tally.mram_bytes += 16 * iters;
                } else {
                    tally.alu += (3 + 4 * 8) * iters;
                    tally.mram_transfers += 4 * iters;
                    tally.mram_bytes += 32 * iters;
                }
                let out = (dims.m * cols) as u64;
                tally.alu += 3 * out;
                tally.mram_transfers += out;
                tally.mram_bytes += 8 * out;
            }
            frame_cycles += run.estimate().cycles;
        }
        let frame_seconds = self.params.cycles_to_seconds(frame_cycles);
        let input_bytes_per_frame = (network.input.len() * 2) as u64;
        let dpus = dpu_sim::params::SYSTEM_DPUS as f64;
        // Steady-state: all DPUs hold the weights and chew independent
        // frames; the host link only carries inputs and detections.
        let compute_fps = dpus / frame_seconds;
        let link_fps = self.host_bw / input_bytes_per_frame as f64;
        FramePerDpuReport {
            weights_bytes,
            fits_mram,
            frame_cycles,
            frame_seconds,
            input_bytes_per_frame,
            system_frames_per_second: compute_fps.min(link_fps),
        }
    }
}

/// Analysis of the frame-per-DPU mapping (future work §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FramePerDpuReport {
    /// Total weight bytes the DPU must hold resident.
    pub weights_bytes: u64,
    /// Whether weights + activations fit the 64 MB MRAM.
    pub fits_mram: bool,
    /// Cycles for one frame on one DPU.
    pub frame_cycles: u64,
    /// Seconds for one frame on one DPU.
    pub frame_seconds: f64,
    /// Host-link bytes per frame in steady state (input only).
    pub input_bytes_per_frame: u64,
    /// Steady-state system throughput with all 2560 DPUs busy
    /// (compute- or host-link-bound, whichever is lower).
    pub system_frames_per_second: f64,
}

/// Timing report of one conv layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// GEMM dimensions.
    pub dims: GemmDims,
    /// DPUs occupied (= filter count).
    pub dpus: usize,
    /// Per-DPU kernel estimate (all DPUs are symmetric).
    pub kernel: KernelEstimate,
    /// DPU compute time (all DPUs concurrent).
    pub dpu_seconds: f64,
    /// Bytes moved over the host link for this layer.
    pub host_bytes: u64,
    /// Host link time.
    pub host_transfer_seconds: f64,
    /// Layer completion time.
    pub total_seconds: f64,
    /// Whether the DPU kernel is DMA-bound (§4.3.3).
    pub memory_bound: bool,
    /// Host bytes actually moved when the layer ran functionally through
    /// simulated MRAM (0 for estimate-only reports) — a cross-check of
    /// `host_bytes`.
    pub measured_host_bytes: u64,
}

/// Timing report of a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub name: String,
    /// Per-conv-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total frame latency in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.total_seconds).sum()
    }

    /// Mean conv-layer latency (the paper quotes ≈0.9 s).
    #[must_use]
    pub fn mean_layer_seconds(&self) -> f64 {
        self.total_seconds() / self.layers.len() as f64
    }

    /// Slowest conv layer (the paper quotes ≈6 s).
    #[must_use]
    pub fn max_layer_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.total_seconds).fold(0.0, f64::max)
    }

    /// Aggregate DPU compute seconds.
    #[must_use]
    pub fn dpu_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.dpu_seconds).sum()
    }

    /// Aggregate host transfer seconds.
    #[must_use]
    pub fn host_transfer_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.host_transfer_seconds).sum()
    }

    /// Steady-state frames/second with double buffering: the host streams
    /// frame `i+1`'s matrices while the DPUs compute frame `i`, so the
    /// period is the larger of the two totals rather than their sum. For
    /// this mapping the link dominates, so pipelining buys only
    /// `1 + compute/transfer` ≈ 15 % — quantifying why the paper's
    /// bottleneck cannot be hidden by overlap.
    #[must_use]
    pub fn pipelined_fps(&self) -> f64 {
        1.0 / self.host_transfer_seconds().max(self.dpu_seconds())
    }
}

/// One decoded YOLO-head output (still fixed-point upstream).
#[derive(Debug, Clone, PartialEq)]
pub struct YoloHeadOutput {
    /// Layer index of the head.
    pub layer: usize,
    /// Feature shape at the head.
    pub shape: Shape,
    /// De-quantized activations, channel-major.
    pub data: Vec<f32>,
    /// Anchors of this head.
    pub anchors: Vec<(f32, f32)>,
}

/// End-to-end YOLOv3 pipeline over the simulated system.
#[derive(Debug, Clone)]
pub struct YoloPipeline {
    /// The network table.
    pub network: NetworkConfig,
    /// The GEMM mapping configuration.
    pub mapping: GemmMapping,
    /// Weight generation seed (weights are synthetic; see `DESIGN.md`).
    pub seed: u64,
}

impl YoloPipeline {
    /// Pipeline with default mapping over the given network.
    #[must_use]
    pub fn new(network: NetworkConfig) -> Self {
        Self { network, mapping: GemmMapping::default(), seed: 0x01f }
    }

    /// Timing-only estimate of a full frame (no data materialized) — the
    /// path used for the full 416×416 network.
    #[must_use]
    pub fn estimate(&self) -> NetworkReport {
        let layers = self
            .network
            .conv_layers()
            .into_iter()
            .map(|(_, _, _, dims)| self.mapping.estimate_layer(dims))
            .collect();
        NetworkReport { name: self.network.name.clone(), layers }
    }

    /// Functionally execute a frame through simulated DPUs (use scaled-down
    /// configs). Returns the YOLO-head outputs plus the timing report.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `input` doesn't match the network's input shape.
    pub fn run(&self, input: &[f32]) -> Result<(Vec<YoloHeadOutput>, NetworkReport), HostError> {
        let in_shape = self.network.input;
        assert_eq!(input.len(), in_shape.len(), "input shape mismatch");
        let q = QuantParams::for_range(4.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let shapes = self.network.shapes();
        let mut outputs: Vec<Vec<i16>> = Vec::with_capacity(self.network.layers.len());
        let mut heads = Vec::new();
        let mut reports = Vec::new();
        let mut prev: Vec<i16> = quantize(input, q);
        let mut prev_shape = in_shape;

        for (idx, layer) in self.network.layers.iter().enumerate() {
            let out_shape = shapes[idx];
            let out: Vec<i16> = match layer {
                LayerSpec::Conv(spec) => {
                    let dims = spec.gemm_dims(prev_shape);
                    // Synthetic weights: small ints so accumulators stay
                    // in range after the /32 rescale.
                    let a: Vec<i16> =
                        (0..dims.m * dims.k).map(|_| rng.gen_range(-16..=16)).collect();
                    let b = im2col(
                        &prev,
                        Im2colDims {
                            channels: prev_shape.c,
                            height: prev_shape.h,
                            width: prev_shape.w,
                            kernel: spec.size,
                            stride: spec.stride,
                            pad: spec.pad,
                        },
                    );
                    let (mut c, report) = self.mapping.run_layer(dims, 1, &a, &b)?;
                    reports.push(report);
                    for v in &mut c {
                        *v = spec.activation.apply_i16(*v);
                    }
                    c
                }
                LayerSpec::Shortcut { from } => {
                    let other = &outputs[*from];
                    prev.iter().zip(other).map(|(&x, &y)| x.saturating_add(y)).collect()
                }
                LayerSpec::Route { layers } => {
                    let mut v = Vec::new();
                    for &l in layers {
                        v.extend_from_slice(&outputs[l]);
                    }
                    v
                }
                LayerSpec::MaxPool { size, stride, pad } => {
                    let mut v = vec![i16::MIN; out_shape.len()];
                    for c in 0..prev_shape.c {
                        for oy in 0..out_shape.h {
                            for ox in 0..out_shape.w {
                                let mut best = i16::MIN;
                                for ky in 0..*size {
                                    for kx in 0..*size {
                                        let iy = (oy * stride + ky) as isize - (*pad / 2) as isize;
                                        let ix = (ox * stride + kx) as isize - (*pad / 2) as isize;
                                        if iy >= 0
                                            && ix >= 0
                                            && (iy as usize) < prev_shape.h
                                            && (ix as usize) < prev_shape.w
                                        {
                                            best = best.max(
                                                prev[(c * prev_shape.h + iy as usize)
                                                    * prev_shape.w
                                                    + ix as usize],
                                            );
                                        }
                                    }
                                }
                                v[(c * out_shape.h + oy) * out_shape.w + ox] = best;
                            }
                        }
                    }
                    v
                }
                LayerSpec::Upsample => {
                    let mut v = vec![0i16; out_shape.len()];
                    for c in 0..prev_shape.c {
                        for y in 0..out_shape.h {
                            for x in 0..out_shape.w {
                                v[(c * out_shape.h + y) * out_shape.w + x] =
                                    prev[(c * prev_shape.h + y / 2) * prev_shape.w + x / 2];
                            }
                        }
                    }
                    v
                }
                LayerSpec::Yolo { anchors } => {
                    heads.push(YoloHeadOutput {
                        layer: idx,
                        shape: prev_shape,
                        data: dequantize(&prev, q),
                        anchors: anchors.clone(),
                    });
                    prev.clone()
                }
            };
            outputs.push(out.clone());
            prev = out;
            prev_shape = out_shape;
        }
        Ok((heads, NetworkReport { name: self.network.name.clone(), layers: reports }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::darknet::{darknet53_yolov3, tiny_config};
    use crate::gemm::gemm;

    #[test]
    fn run_layer_matches_host_gemm() {
        let mapping = GemmMapping::default();
        let dims = GemmDims { m: 4, n: 10, k: 6 };
        let a: Vec<i16> = (0..24).map(|i| (i * 7 % 50 - 25) as i16).collect();
        let b: Vec<i16> = (0..60).map(|i| (i * 13 % 60 - 30) as i16).collect();
        let (c_dpu, report) = mapping.run_layer(dims, 2, &a, &b).unwrap();
        let mut c_host = vec![0i16; 40];
        gemm(dims, 2, &a, &b, &mut c_host);
        assert_eq!(c_dpu, c_host);
        assert_eq!(report.dpus, 4);
        assert!(report.memory_bound, "GEMM kernel must be MRAM-bound");
    }

    #[test]
    fn measured_host_traffic_tracks_the_estimate() {
        // The functional path's actual host-link bytes must agree with the
        // analytic `host_bytes` (the functional path additionally carries
        // the C rows *to* MRAM on the kernel's behalf, so it can exceed
        // the estimate slightly, never the reverse by much).
        let mapping = GemmMapping::default();
        let dims = GemmDims { m: 6, n: 40, k: 12 };
        let a = vec![1i16; dims.m * dims.k];
        let b = vec![2i16; dims.k * dims.n];
        let (_, report) = mapping.run_layer(dims, 1, &a, &b).unwrap();
        assert!(report.measured_host_bytes > 0);
        let ratio = report.measured_host_bytes as f64 / report.host_bytes as f64;
        assert!((0.8..2.0).contains(&ratio), "measured/estimated = {ratio}");
    }

    #[test]
    fn estimate_scales_with_dims() {
        let mapping = GemmMapping::default();
        let small = mapping.estimate_layer(GemmDims { m: 8, n: 100, k: 72 });
        let big = mapping.estimate_layer(GemmDims { m: 8, n: 400, k: 72 });
        assert!(big.kernel.cycles > 3 * small.kernel.cycles);
        // Same per-DPU work, more DPUs => same DPU time, more host bytes.
        let wide = mapping.estimate_layer(GemmDims { m: 16, n: 100, k: 72 });
        assert_eq!(wide.kernel.cycles, small.kernel.cycles);
        assert!(wide.host_bytes > small.host_bytes);
    }

    #[test]
    fn threading_helps_until_eleven() {
        let dims = GemmDims { m: 1, n: 3300, k: 64 };
        let time = |t: usize| {
            let m = GemmMapping { tasklets: t, ..GemmMapping::default() };
            m.estimate_layer(dims).dpu_seconds
        };
        let t1 = time(1);
        let t4 = time(4);
        let t11 = time(11);
        let t16 = time(16);
        let t24 = time(24);
        assert!(t4 < t1 / 2.0, "4 tasklets should cut time by >2x");
        assert!(t11 < t4, "11 beats 4");
        // Past the 11-stage pipeline the speedup flattens out (Fig. 4.7a):
        // most of the remaining headroom is the DMA-stall fraction.
        let s11 = t1 / t11;
        let s16 = t1 / t16;
        let s24 = t1 / t24;
        assert!(s16 < s11 * 1.25, "16 tasklets barely beat 11: {s11:.1} vs {s16:.1}");
        assert!(s24 < s11 * 1.35, "24 tasklets barely beat 11: {s11:.1} vs {s24:.1}");
    }

    #[test]
    fn full_network_estimate_matches_paper_shape() {
        let pipe = YoloPipeline::new(darknet53_yolov3());
        let rep = pipe.estimate();
        assert_eq!(rep.layers.len(), 75);
        let total = rep.total_seconds();
        // Paper: 65 s/frame, ≈0.9 s mean layer. Same order of magnitude.
        assert!(total > 20.0 && total < 200.0, "total {total}");
        assert!(rep.mean_layer_seconds() > 0.25, "mean {}", rep.mean_layer_seconds());
        assert!(rep.max_layer_seconds() < 10.0);
        // Host transfer dominates DPU compute — the mapping's bottleneck.
        assert!(rep.host_transfer_seconds() > rep.dpu_seconds());
    }

    #[test]
    fn tiny_network_runs_end_to_end() {
        let net = tiny_config();
        let pipe = YoloPipeline::new(net.clone());
        let input: Vec<f32> = (0..net.input.len()).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
        let (heads, report) = pipe.run(&input).unwrap();
        assert_eq!(heads.len(), 2);
        assert_eq!(report.layers.len(), net.conv_count());
        assert_eq!(heads[0].shape.c, 18);
        assert!(heads[0].data.iter().any(|&v| v != 0.0), "head output all zero");
    }

    #[test]
    fn deterministic_runs() {
        let net = tiny_config();
        let input: Vec<f32> = vec![0.25; net.input.len()];
        let (h1, _) = YoloPipeline::new(net.clone()).run(&input).unwrap();
        let (h2, _) = YoloPipeline::new(net).run(&input).unwrap();
        assert_eq!(h1, h2);
    }
}

#[cfg(test)]
mod frame_per_dpu_tests {
    use super::*;
    use crate::darknet::{darknet53_yolov3, darknet53_yolov3_scaled};

    #[test]
    fn full_yolov3_weights_overflow_mram() {
        // §6.1: "the difficulty of fitting one image into a DPU" — the
        // full model's i16 weights are ~123 MB against 64 MB MRAM.
        let r = GemmMapping::default().estimate_frame_per_dpu(&darknet53_yolov3());
        assert!(r.weights_bytes > 100_000_000, "weights {}", r.weights_bytes);
        assert!(!r.fits_mram);
    }

    #[test]
    fn halved_network_fits_and_wins_on_throughput() {
        let mapping = GemmMapping::default();
        let net = darknet53_yolov3_scaled(2, 416);
        let frame = mapping.estimate_frame_per_dpu(&net);
        assert!(frame.fits_mram, "half-width weights {} must fit", frame.weights_bytes);
        // Row mapping: one frame at a time, transfer-dominated.
        let row = YoloPipeline { network: net, mapping, seed: 0 }.estimate();
        let row_fps = 1.0 / row.total_seconds();
        assert!(
            frame.system_frames_per_second > 10.0 * row_fps,
            "frame-per-DPU {} fps vs row {} fps",
            frame.system_frames_per_second,
            row_fps
        );
        // But its single-frame latency is far worse (one DPU does all MACs).
        assert!(frame.frame_seconds > row.dpu_seconds());
    }

    #[test]
    fn ctmp_fit_threshold_matches_stack_budget() {
        let mapping = GemmMapping::default();
        // 13x13 head layers fit; 104x104 backbone layers do not.
        assert!(mapping.ctmp_fits_wram(GemmDims { m: 1024, n: 169, k: 4608 }));
        assert!(!mapping.ctmp_fits_wram(GemmDims { m: 128, n: 10816, k: 576 }));
    }
}

#[cfg(test)]
mod pipelining_tests {
    use super::*;
    use crate::darknet::darknet53_yolov3;

    #[test]
    fn pipelined_fps_bounded_by_the_link() {
        let rep = YoloPipeline::new(darknet53_yolov3()).estimate();
        let serial_fps = 1.0 / rep.total_seconds();
        let pipelined = rep.pipelined_fps();
        assert!(pipelined > serial_fps, "overlap must help");
        // But not by much: the link is ~6x the compute, so the ceiling is
        // ~(1 + compute/transfer) of the serial rate.
        let bound = serial_fps * (1.0 + rep.dpu_seconds() / rep.host_transfer_seconds()) * 1.01;
        assert!(pipelined <= bound, "pipelined {pipelined} vs bound {bound}");
    }
}
