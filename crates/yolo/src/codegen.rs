//! Tier-1 code generation for the GEMM row kernel: Algorithm 2's inner
//! loops as a complete DPU program with tasklet-strided columns, executed
//! across a multi-DPU set under the Fig. 4.6 mapping.
//!
//! Together with `ebnn::codegen` this closes the loop on both CNN paths:
//! the exact orchestration the paper describes — row-of-`A` scatter,
//! whole-`B` broadcast, per-DPU row kernels, `C`-row gather — runs at
//! instruction level and is checked bit-for-bit against the host GEMM.
//!
//! ## WRAM layout
//!
//! ```text
//! 0x0000  params     n, k, alpha, tasklet stride (4 × u32)
//! 0x0040  A row      K × i16 (chunk-DMA'd by tasklet 0)
//! ....    C row      N × i16 (written by all tasklets, strided)
//! ....    staging    8 bytes per tasklet for B-element DMAs
//! ```

use crate::gemm::GemmDims;
use dpu_sim::asm::assemble;
use dpu_sim::{DpuId, Program};
use pim_host::{DpuSet, HostError, LaunchResult};
use pim_trace::TraceBuffer;

/// MRAM symbol offsets (sequential `define_symbol` order).
pub mod mram {
    /// `n, k, alpha, stride` (4 × u32).
    pub const PARAMS: u32 = 0;
    /// The DPU's row of `A`.
    pub const A_ROW: u32 = 16;
    /// Start of `B` for capacity `a_cap` (computed at runtime).
    #[must_use]
    pub fn b_base(a_cap: u32) -> u32 {
        A_ROW + a_cap
    }
}

/// WRAM addresses for the given dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmWramLayout {
    /// Params block.
    pub params: u32,
    /// A-row base.
    pub a_row: u32,
    /// C-row base.
    pub c_row: u32,
    /// Per-tasklet staging slots.
    pub staging: u32,
}

impl GemmWramLayout {
    /// Layout for one GEMM row kernel.
    ///
    /// # Panics
    /// When `A` + `C` rows overflow the WRAM data region.
    #[must_use]
    pub fn new(dims: GemmDims) -> Self {
        let params = 0u32;
        let a_row = 0x40u32;
        let a_bytes = ((dims.k * 2).div_ceil(8) * 8) as u32;
        let c_row = a_row + a_bytes;
        let c_bytes = ((dims.n * 2).div_ceil(8) * 8) as u32;
        let staging = c_row + c_bytes;
        let end = staging + 24 * 8;
        assert!(end <= 48 * 1024, "A+C rows overflow WRAM: {end:#x}");
        Self { params, a_row, c_row, staging }
    }
}

/// Generate the strided GEMM row program for the given dimensions.
///
/// Tasklet `t` computes columns `t, t+T, t+2T, …` (the paper's "one column
/// index and subsequent multiples"). `B` stays in MRAM — every element is
/// an 8-byte-granule DMA, reproducing the memory-bound behaviour §4.3.3
/// describes.
///
/// # Panics
/// When the WRAM layout overflows (use small layers; see
/// [`GemmWramLayout::new`]).
#[must_use]
pub fn gemm_row_program(dims: GemmDims) -> Program {
    let l = GemmWramLayout::new(dims);
    let s = format!(
        "\
        me r1\n\
        bne r1, r0, wait0\n\
        ; tasklet 0: params, then the A row in 2048-byte chunks\n\
        movi r3, {par_w}\n\
        movi r4, {par_m}\n\
        movi r5, 16\n\
        mram.read r3, r4, r5\n\
        movi r6, 0              ; offset\n\
        movi r7, {a_bytes}\n\
        aloop: bge r6, r7, adone\n\
        sub r8, r7, r6\n\
        movi r9, 2048\n\
        blt r8, r9, asmall\n\
        mov r8, r9\n\
        asmall:\n\
        movi r3, {a_w}\n\
        add r3, r3, r6\n\
        movi r4, {a_m}\n\
        add r4, r4, r6\n\
        mram.read r3, r4, r8\n\
        add r6, r6, r8\n\
        jmp aloop\n\
        adone:\n\
        wait0: barrier\n\
        lw r2, r0, {par_w}      ; n\n\
        lw r3, r0, {par_w_k}    ; k\n\
        lw r14, r0, {par_w_al}  ; alpha\n\
        lw r18, r0, {par_w_st}  ; stride\n\
        ; staging slot for my B-element DMAs\n\
        lsli r19, r1, 3\n\
        addi r19, r19, {stage}\n\
        mov r6, r1              ; j = id\n\
        jloop: bge r6, r2, jend\n\
        movi r7, 0              ; acc\n\
        movi r8, 0              ; kk\n\
        kloop: bge r8, r3, kend\n\
        ; A[kk] from WRAM, sign-extended\n\
        lsli r10, r8, 1\n\
        addi r10, r10, {a_w}\n\
        lh r11, r10, 0\n\
        lsli r11, r11, 16\n\
        asri r11, r11, 16\n\
        call __mulsi3 r11, r11, r14   ; APART = alpha * A[kk]\n\
        ; B[kk*n + j]: one 2-byte DMA from MRAM\n\
        call __mulsi3 r12, r8, r2\n\
        add r12, r12, r6\n\
        lsli r12, r12, 1\n\
        addi r12, r12, {b_m}\n\
        movi r13, 2\n\
        mram.read r19, r12, r13\n\
        lh r13, r19, 0\n\
        lsli r13, r13, 16\n\
        asri r13, r13, 16\n\
        call __mulsi3 r13, r13, r11\n\
        add r7, r7, r13\n\
        addi r8, r8, 1\n\
        jmp kloop\n\
        kend:\n\
        ; C[j] = absolutemax(acc / 32, 32767)\n\
        movi r10, 32\n\
        call __divsi3 r7, r7, r10\n\
        movi r11, 32767\n\
        blt r7, r11, nohi\n\
        mov r7, r11\n\
        nohi:\n\
        movi r12, -32767\n\
        bge r7, r12, nolo\n\
        mov r7, r12\n\
        nolo:\n\
        lsli r10, r6, 1\n\
        addi r10, r10, {c_w}\n\
        sh r10, 0, r7\n\
        add r6, r6, r18\n\
        jmp jloop\n\
        jend: barrier\n\
        bne r1, r0, done\n\
        ; tasklet 0: write C back in chunks\n\
        movi r6, 0\n\
        movi r7, {c_bytes}\n\
        movi r9, 2048\n\
        closet: bge r6, r7, done\n\
        sub r8, r7, r6\n\
        blt r8, r9, csmall\n\
        mov r8, r9\n\
        csmall:\n\
        movi r3, {c_w}\n\
        add r3, r3, r6\n\
        movi r4, {c_m}\n\
        add r4, r4, r6\n\
        mram.write r3, r4, r8\n\
        add r6, r6, r8\n\
        jmp closet\n\
        done: halt\n",
        par_w = l.params,
        par_w_k = l.params + 4,
        par_w_al = l.params + 8,
        par_w_st = l.params + 12,
        par_m = mram::PARAMS,
        a_w = l.a_row,
        a_m = mram::A_ROW,
        a_bytes = (dims.k * 2).div_ceil(8) * 8,
        b_m = mram::b_base(((dims.k * 2).div_ceil(8) * 8) as u32),
        stage = l.staging,
        c_w = l.c_row,
        c_m = mram::b_base(((dims.k * 2).div_ceil(8) * 8) as u32)
            + ((dims.k * dims.n * 2).div_ceil(8) * 8) as u32,
        c_bytes = (dims.n * 2).div_ceil(8) * 8,
    );
    let program = assemble(&s).expect("generated GEMM program assembles");
    program.validate().expect("generated GEMM program has valid control flow");
    program
}

/// Execute one conv layer's GEMM at instruction level under the Fig. 4.6
/// mapping: `dims.m` DPUs, each loaded with its `A` row and the whole `B`,
/// running [`gemm_row_program`] with `tasklets` threads.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// When slice shapes don't match `dims` or the layout overflows WRAM.
pub fn run_tier1_layer(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
) -> Result<(Vec<i16>, LaunchResult), HostError> {
    tier1_layer_impl(dims, alpha, a, b, tasklets, false).map(|t| (t.c, t.launch))
}

/// A Tier-1 GEMM layer run with full tracing enabled.
#[derive(Debug)]
pub struct TracedLayer {
    /// The `M×N` output matrix, row-major.
    pub c: Vec<i16>,
    /// The launch result (identical to an untraced run).
    pub launch: LaunchResult,
    /// One cycle-stamped simulator trace per DPU (= per `A` row).
    pub dpu_traces: Vec<TraceBuffer>,
    /// Host↔MRAM transfers: `B` broadcast, `A`-row scatter, `C`-row gather.
    pub host_trace: TraceBuffer,
    /// COW MRAM arena accounting after the gather: the broadcast `B`
    /// matrix's whole pages are stored once across the row-per-DPU set.
    pub mram_residency: dpu_sim::MramResidency,
}

/// [`run_tier1_layer`] with tracing: per-DPU simulator traces plus the
/// host-transfer log of the Fig. 4.6 orchestration.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// See [`run_tier1_layer`].
pub fn run_tier1_layer_traced(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
) -> Result<TracedLayer, HostError> {
    tier1_layer_impl(dims, alpha, a, b, tasklets, true)
}

/// [`run_tier1_layer`] with the execution engine tier pinned instead of
/// the ambient selection — the hook the cross-tier identity tests use to
/// prove the tier cannot be observed from the host side.
///
/// # Errors
/// Host-runtime failures.
///
/// # Panics
/// See [`run_tier1_layer`].
pub fn run_tier1_layer_with_engine(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
    engine: dpu_sim::Engine,
) -> Result<(Vec<i16>, LaunchResult), HostError> {
    let mut set = tier1_layer_stage(dims, alpha, a, b, tasklets, false)?;
    set.set_engine(Some(engine));
    let launch = set.launch_loaded(tasklets)?;
    let c = gather_c(&set, dims)?;
    Ok((c, launch))
}

fn tier1_layer_stage(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
    trace: bool,
) -> Result<DpuSet, HostError> {
    assert_eq!(a.len(), dims.m * dims.k, "A shape mismatch");
    assert_eq!(b.len(), dims.k * dims.n, "B shape mismatch");
    assert!((1..=24).contains(&tasklets), "tasklets must be 1..=24");
    let a_cap = (dims.k * 2).div_ceil(8) * 8;
    let b_cap = (dims.k * dims.n * 2).div_ceil(8) * 8;
    let c_cap = (dims.n * 2).div_ceil(8) * 8;

    let mut set = DpuSet::allocate(dims.m)?;
    if trace {
        set.enable_host_tracing();
    }
    set.define_symbol("params", 16)?;
    set.define_symbol("a_row", a_cap)?;
    set.define_symbol("b", b_cap)?;
    set.define_symbol("c_row", c_cap)?;

    let mut params = Vec::with_capacity(16);
    for v in [dims.n as u32, dims.k as u32, alpha as u32, tasklets as u32] {
        params.extend_from_slice(&v.to_le_bytes());
    }
    set.copy_to("params", 0, &params)?;
    set.copy_values_to("b", b)?;
    let mut batch = pim_host::XferBatch::new();
    for i in 0..dims.m {
        batch.prepare(pim_host::to_wire(&a[i * dims.k..(i + 1) * dims.k]).data);
    }
    batch.push(&mut set, "a_row", 0, a_cap)?;

    set.load(&gemm_row_program(dims))?;
    Ok(set)
}

/// Gather the `M×N` output matrix after a launch (row `i` from DPU `i`).
fn gather_c(set: &DpuSet, dims: GemmDims) -> Result<Vec<i16>, HostError> {
    let mut c = vec![0i16; dims.m * dims.n];
    for i in 0..dims.m {
        let row: Vec<i16> = set.copy_values_from_dpu(DpuId(i as u32), "c_row", 0, dims.n)?;
        c[i * dims.n..(i + 1) * dims.n].copy_from_slice(&row);
    }
    Ok(c)
}

/// A persistent row-GEMM executor: the DPU set is allocated once, the
/// shared `B` matrix and params are broadcast once (COW pages shared
/// across the set), and the program is loaded once — each batch then only
/// scatters its `A` rows, launches, and gathers `C` rows. This is the
/// batch-slicing entry point the `pim-serve` runtime builds on; unlike
/// the eBNN-side `Tier1Engine` it has a single A/C buffer pair (the
/// GEMM program bakes its MRAM bases), so the serving pipeline schedules
/// it serially.
#[derive(Debug)]
pub struct RowEngine {
    set: DpuSet,
    dims: GemmDims,
    dpus: usize,
    tasklets: usize,
    staged_rows: usize,
    golden: pim_host::SetSnapshot,
}

impl RowEngine {
    /// Build an engine over `dpus` DPUs computing rows of `A × B` (shapes
    /// from `dims`; `dims.m` is ignored — the batch size is `dpus`).
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `dpus` is zero, `b` doesn't match `dims`, `tasklets` is
    /// outside `1..=24`, or the WRAM layout overflows.
    pub fn new(
        dims: GemmDims,
        alpha: i32,
        b: &[i16],
        dpus: usize,
        tasklets: usize,
    ) -> Result<Self, HostError> {
        assert!(dpus > 0, "engine needs at least one DPU");
        assert_eq!(b.len(), dims.k * dims.n, "B shape mismatch");
        assert!((1..=24).contains(&tasklets), "tasklets must be 1..=24");
        let a_cap = (dims.k * 2).div_ceil(8) * 8;
        let b_cap = (dims.k * dims.n * 2).div_ceil(8) * 8;
        let c_cap = (dims.n * 2).div_ceil(8) * 8;

        let mut set = DpuSet::allocate(dpus)?;
        set.define_symbol("params", 16)?;
        set.define_symbol("a_row", a_cap)?;
        set.define_symbol("b", b_cap)?;
        set.define_symbol("c_row", c_cap)?;

        let mut params = Vec::with_capacity(16);
        for v in [dims.n as u32, dims.k as u32, alpha as u32, tasklets as u32] {
            params.extend_from_slice(&v.to_le_bytes());
        }
        set.copy_to("params", 0, &params)?;
        set.copy_values_to("b", b)?;
        set.load(&gemm_row_program(dims))?;
        let golden = set.snapshot();
        Ok(Self { set, dims, dpus, tasklets, staged_rows: 0, golden })
    }

    /// Rows one batch can hold (= DPUs).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.dpus
    }

    /// The GEMM dimensions this engine was generated for.
    #[must_use]
    pub fn dims(&self) -> GemmDims {
        self.dims
    }

    /// The underlying set (engine pin, parallel threshold).
    #[must_use]
    pub fn set(&self) -> &DpuSet {
        &self.set
    }

    /// Mutable access to the underlying set.
    pub fn set_mut(&mut self) -> &mut DpuSet {
        &mut self.set
    }

    /// Restore the pristine `B`-loaded state captured at build time (see
    /// the eBNN engine's golden-snapshot rationale: fault-armed launches
    /// can leave quarantined DPUs' MRAM corrupted).
    ///
    /// # Errors
    /// Never in practice (the snapshot matches the set by construction).
    pub fn restore_golden(&mut self) -> Result<(), HostError> {
        self.set.restore(&self.golden)?;
        self.staged_rows = 0;
        Ok(())
    }

    /// Scatter up to [`RowEngine::capacity`] `A` rows (`rows.len()` must
    /// be a multiple of `dims.k`). DPUs beyond the staged rows rerun
    /// whatever row they last held; their `C` rows are not gathered.
    /// Returns the bytes written over the host link.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// When `rows` is empty, not a whole number of rows, or oversized.
    pub fn stage(&mut self, rows: &[i16]) -> Result<u64, HostError> {
        assert!(!rows.is_empty(), "empty batch");
        assert_eq!(rows.len() % self.dims.k, 0, "A rows must be whole");
        let n_rows = rows.len() / self.dims.k;
        assert!(n_rows <= self.dpus, "batch exceeds engine capacity");
        let a_cap = (self.dims.k * 2).div_ceil(8) * 8;
        let mut batch = pim_host::XferBatch::new();
        for i in 0..n_rows {
            batch.prepare(pim_host::to_wire(&rows[i * self.dims.k..(i + 1) * self.dims.k]).data);
        }
        for _ in n_rows..self.dpus {
            batch.prepare(vec![0u8; a_cap]);
        }
        batch.push(&mut self.set, "a_row", 0, a_cap)?;
        self.staged_rows = n_rows;
        Ok((a_cap * self.dpus) as u64)
    }

    /// Launch the staged batch.
    ///
    /// # Errors
    /// The first DPU fault encountered.
    pub fn launch(&mut self) -> Result<LaunchResult, HostError> {
        self.set.launch_loaded(self.tasklets)
    }

    /// Launch under a fault-tolerance policy.
    ///
    /// # Errors
    /// Host-runtime staging failures (injected faults are reported, not
    /// returned as errors).
    pub fn launch_resilient(
        &mut self,
        policy: &pim_host::ResilientLaunchPolicy,
    ) -> Result<pim_host::LaunchReport, HostError> {
        self.set.launch_loaded_resilient(self.tasklets, policy)
    }

    /// Profile-guided warmup: see the eBNN engine's `recompile_hot`.
    /// Returns the number of blocks hot enough to compile.
    ///
    /// # Errors
    /// Simulator faults during the profiling replay.
    pub fn recompile_hot(&mut self, min_entries: u64) -> Result<usize, HostError> {
        self.set.recompile_hot_loaded(DpuId(0), self.tasklets, min_entries)
    }

    /// Gather the staged rows' `C` outputs (row `i` from DPU `i`), plus
    /// the bytes read over the host link.
    ///
    /// # Errors
    /// Host-runtime failures.
    pub fn gather(&self) -> Result<(Vec<i16>, u64), HostError> {
        let mut c = vec![0i16; self.staged_rows * self.dims.n];
        for i in 0..self.staged_rows {
            let row: Vec<i16> =
                self.set.copy_values_from_dpu(DpuId(i as u32), "c_row", 0, self.dims.n)?;
            c[i * self.dims.n..(i + 1) * self.dims.n].copy_from_slice(&row);
        }
        let bytes = (self.staged_rows * ((self.dims.n * 2).div_ceil(8) * 8)) as u64;
        Ok((c, bytes))
    }

    /// Rows staged for the next launch.
    #[must_use]
    pub fn staged_rows(&self) -> usize {
        self.staged_rows
    }
}

fn tier1_layer_impl(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
    trace: bool,
) -> Result<TracedLayer, HostError> {
    let mut set = tier1_layer_stage(dims, alpha, a, b, tasklets, trace)?;
    let (launch, dpu_traces) = if trace {
        set.launch_loaded_traced(tasklets)?
    } else {
        (set.launch_loaded(tasklets)?, Vec::new())
    };
    let c = gather_c(&set, dims)?;
    let host_trace = set.take_host_trace().unwrap_or_default();
    let mram_residency = set.system().mram_residency();
    Ok(TracedLayer { c, launch, dpu_traces, host_trace, mram_residency })
}

/// Outcome of a fault-tolerant Tier-1 GEMM layer (see
/// [`run_tier1_layer_resilient`]).
#[derive(Debug, Clone)]
pub struct ResilientLayer {
    /// The `M×N` output matrix, row-major — identical to what
    /// [`run_tier1_layer`] returns, even when some rows were computed on
    /// a stand-in DPU.
    pub c: Vec<i16>,
    /// The full fault-tolerance record for the launch.
    pub report: pim_host::LaunchReport,
    /// Output rows whose home DPU was quarantined and whose values
    /// therefore came from a surviving DPU.
    pub redispatched_rows: Vec<usize>,
}

/// Fault-tolerant variant of [`run_tier1_layer`]: one DPU per `A` row, run
/// under a [`pim_host::ResilientLaunchPolicy`]. A quarantined DPU's row is
/// recomputed on a survivor, so `c` is complete and correct as long as at
/// least one DPU survives.
///
/// # Errors
/// Host-runtime staging failures, or — when even re-dispatch could not
/// serve some row — the last per-DPU error from the report.
///
/// # Panics
/// See [`run_tier1_layer`].
pub fn run_tier1_layer_resilient(
    dims: GemmDims,
    alpha: i32,
    a: &[i16],
    b: &[i16],
    tasklets: usize,
    policy: &pim_host::ResilientLaunchPolicy,
) -> Result<ResilientLayer, HostError> {
    let mut set = tier1_layer_stage(dims, alpha, a, b, tasklets, false)?;
    let report = set.launch_loaded_resilient(tasklets, policy)?;
    if !report.fully_served() {
        return Err(report
            .per_dpu
            .iter()
            .find_map(|r| if r.result.is_none() { r.last_error.clone() } else { None })
            .unwrap_or(HostError::WorkerPanic {
                detail: "unserved DPU carried no error".to_owned(),
            }));
    }
    let c = gather_c(&set, dims)?;
    let redispatched_rows = report.degraded.iter().map(|d| d.from.0 as usize).collect();
    Ok(ResilientLayer { c, report, redispatched_rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn pseudo(seed: &mut u64) -> i16 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 33) % 401) as i16 - 200
    }

    #[test]
    fn tier1_layer_matches_host_gemm() {
        let dims = GemmDims { m: 3, n: 10, k: 6 };
        let mut s = 7u64;
        let a: Vec<i16> = (0..dims.m * dims.k).map(|_| pseudo(&mut s)).collect();
        let b: Vec<i16> = (0..dims.k * dims.n).map(|_| pseudo(&mut s)).collect();
        let mut want = vec![0i16; dims.m * dims.n];
        gemm(dims, 2, &a, &b, &mut want);
        let (got, result) = run_tier1_layer(dims, 2, &a, &b, 4).unwrap();
        assert_eq!(got, want);
        assert_eq!(result.per_dpu.len(), 3);
    }

    #[test]
    fn tier1_layer_correct_at_every_tasklet_count() {
        let dims = GemmDims { m: 2, n: 7, k: 4 };
        let mut s = 13u64;
        let a: Vec<i16> = (0..dims.m * dims.k).map(|_| pseudo(&mut s)).collect();
        let b: Vec<i16> = (0..dims.k * dims.n).map(|_| pseudo(&mut s)).collect();
        let mut want = vec![0i16; dims.m * dims.n];
        gemm(dims, 1, &a, &b, &mut want);
        for t in [1usize, 2, 3, 7, 11] {
            let (got, _) = run_tier1_layer(dims, 1, &a, &b, t).unwrap();
            assert_eq!(got, want, "tasklets = {t}");
        }
    }

    #[test]
    fn tier1_layer_is_memory_bound_like_the_model_says() {
        // The per-element B DMAs dominate: DMA stall cycles exceed a third
        // of total cycles even with the pipeline busy.
        let dims = GemmDims { m: 1, n: 64, k: 32 };
        let a: Vec<i16> = (0..dims.k).map(|i| (i as i16 % 20) - 10).collect();
        let b: Vec<i16> = (0..dims.k * dims.n).map(|i| (i as i16 % 30) - 15).collect();
        let (_, result) = run_tier1_layer(dims, 1, &a, &b, 11).unwrap();
        let r = &result.per_dpu[0];
        assert!(r.dma_transfers as usize >= dims.k * dims.n, "per-element B DMAs");
    }

    #[test]
    fn program_fits_iram_for_real_layer_shapes() {
        // The head layers (13x13) are the ones small enough for Tier-1 runs.
        let p = gemm_row_program(GemmDims { m: 1, n: 169, k: 1024 });
        assert!(p.iram_bytes() <= dpu_sim::params::IRAM_BYTES);
    }
}

#[cfg(test)]
mod traced_tests {
    use super::*;
    use pim_trace::TraceEvent;

    #[test]
    fn traced_layer_is_identical_and_records_per_dpu_traces() {
        let dims = GemmDims { m: 2, k: 4, n: 3 };
        let a: Vec<i16> = (0..8).map(|v| v - 3).collect();
        let b: Vec<i16> = (0..12).map(|v| 2 - v).collect();
        let (c, launch) = run_tier1_layer(dims, 1, &a, &b, 2).unwrap();
        let traced = run_tier1_layer_traced(dims, 1, &a, &b, 2).unwrap();
        assert_eq!(traced.c, c);
        assert_eq!(traced.launch, launch);
        assert_eq!(traced.dpu_traces.len(), dims.m);
        for (d, buf) in traced.dpu_traces.iter().enumerate() {
            assert_eq!(buf.max_end_cycle(), launch.per_dpu[d].cycles, "DPU {d}");
            assert!(
                buf.count_matching(|e| matches!(e, TraceEvent::DmaTransfer { .. })) > 0,
                "DPU {d}"
            );
        }
        assert!(!traced.host_trace.is_empty());
    }
}
