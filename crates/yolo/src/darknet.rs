//! The Darknet-53 + YOLOv3-head network table (§4.2.1), plus scaled-down
//! variants small enough to push real data through the simulated MRAM.

use crate::gemm::GemmDims;
use crate::layers::{ConvSpec, LayerSpec, Shape};
use serde::{Deserialize, Serialize};

/// A network: input shape plus ordered layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Network name for reports.
    pub name: String,
    /// Input tensor shape.
    pub input: Shape,
    /// Ordered layer specs.
    pub layers: Vec<LayerSpec>,
}

impl NetworkConfig {
    /// Output shape of every layer, in order.
    ///
    /// # Panics
    /// When a route/shortcut is inconsistent.
    #[must_use]
    pub fn shapes(&self) -> Vec<Shape> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.layers.len());
        let mut prev = self.input;
        for layer in &self.layers {
            let s = layer.out_shape(prev, &shapes);
            shapes.push(s);
            prev = s;
        }
        shapes
    }

    /// `(layer index, spec, input shape, GEMM dims)` for every conv layer —
    /// the work list the DPU mapping consumes.
    #[must_use]
    pub fn conv_layers(&self) -> Vec<(usize, ConvSpec, Shape, GemmDims)> {
        let shapes = self.shapes();
        let mut out = Vec::new();
        let mut prev = self.input;
        for (i, layer) in self.layers.iter().enumerate() {
            if let LayerSpec::Conv(c) = layer {
                out.push((i, *c, prev, c.gemm_dims(prev)));
            }
            prev = shapes[i];
        }
        out
    }

    /// Total multiply-accumulates of one inference.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.conv_layers().iter().map(|(_, _, _, d)| d.macs()).sum()
    }

    /// Number of convolutional layers.
    #[must_use]
    pub fn conv_count(&self) -> usize {
        self.conv_layers().len()
    }
}

/// Push a Darknet residual block (`1×1` reduce, `3×3` expand, shortcut)
/// `count` times.
fn residual_blocks(layers: &mut Vec<LayerSpec>, reduce: usize, expand: usize, count: usize) {
    for _ in 0..count {
        layers.push(LayerSpec::conv(reduce, 1, 1));
        layers.push(LayerSpec::conv(expand, 3, 1));
        let here = layers.len();
        layers.push(LayerSpec::Shortcut { from: here - 3 });
    }
}

/// The full YOLOv3 network at 416×416 (Darknet-53 backbone, three-scale
/// detection head, 255-channel output convs for 80 COCO classes).
#[must_use]
pub fn darknet53_yolov3() -> NetworkConfig {
    darknet53_yolov3_scaled(1, 416)
}

/// YOLOv3 with every channel count divided by `width_div` (minimum 1 filter)
/// and a custom square input — used to run the *same topology* at a scale
/// where data flows through simulated MRAM end-to-end.
///
/// # Panics
/// When `width_div` is 0 or `input` is not a positive multiple of 32.
#[must_use]
pub fn darknet53_yolov3_scaled(width_div: usize, input: usize) -> NetworkConfig {
    assert!(width_div > 0, "width divisor must be positive");
    assert!(input > 0 && input.is_multiple_of(32), "input must be a positive multiple of 32");
    let w = |f: usize| (f / width_div).max(1);
    let mut l: Vec<LayerSpec> = Vec::with_capacity(107);

    // Backbone: Darknet-53.
    l.push(LayerSpec::conv(w(32), 3, 1)); // 0
    l.push(LayerSpec::conv(w(64), 3, 2)); // 1   /2
    residual_blocks(&mut l, w(32), w(64), 1); // 2-4
    l.push(LayerSpec::conv(w(128), 3, 2)); // 5   /4
    residual_blocks(&mut l, w(64), w(128), 2); // 6-11
    l.push(LayerSpec::conv(w(256), 3, 2)); // 12  /8
    residual_blocks(&mut l, w(128), w(256), 8); // 13-36
    l.push(LayerSpec::conv(w(512), 3, 2)); // 37  /16
    residual_blocks(&mut l, w(256), w(512), 8); // 38-61
    l.push(LayerSpec::conv(w(1024), 3, 2)); // 62  /32
    residual_blocks(&mut l, w(512), w(1024), 4); // 63-74

    // Head, scale 1 (13×13 at 416).
    l.push(LayerSpec::conv(w(512), 1, 1)); // 75
    l.push(LayerSpec::conv(w(1024), 3, 1)); // 76
    l.push(LayerSpec::conv(w(512), 1, 1)); // 77
    l.push(LayerSpec::conv(w(1024), 3, 1)); // 78
    l.push(LayerSpec::conv(w(512), 1, 1)); // 79
    l.push(LayerSpec::conv(w(1024), 3, 1)); // 80
    l.push(LayerSpec::conv_linear(w(255), 1, 1)); // 81
    l.push(LayerSpec::Yolo { anchors: vec![(116.0, 90.0), (156.0, 198.0), (373.0, 326.0)] }); // 82

    // Head, scale 2 (26×26).
    l.push(LayerSpec::Route { layers: vec![79] }); // 83
    l.push(LayerSpec::conv(w(256), 1, 1)); // 84
    l.push(LayerSpec::Upsample); // 85
    l.push(LayerSpec::Route { layers: vec![85, 61] }); // 86
    l.push(LayerSpec::conv(w(256), 1, 1)); // 87
    l.push(LayerSpec::conv(w(512), 3, 1)); // 88
    l.push(LayerSpec::conv(w(256), 1, 1)); // 89
    l.push(LayerSpec::conv(w(512), 3, 1)); // 90
    l.push(LayerSpec::conv(w(256), 1, 1)); // 91
    l.push(LayerSpec::conv(w(512), 3, 1)); // 92
    l.push(LayerSpec::conv_linear(w(255), 1, 1)); // 93
    l.push(LayerSpec::Yolo { anchors: vec![(30.0, 61.0), (62.0, 45.0), (59.0, 119.0)] }); // 94

    // Head, scale 3 (52×52).
    l.push(LayerSpec::Route { layers: vec![91] }); // 95
    l.push(LayerSpec::conv(w(128), 1, 1)); // 96
    l.push(LayerSpec::Upsample); // 97
    l.push(LayerSpec::Route { layers: vec![97, 36] }); // 98
    l.push(LayerSpec::conv(w(128), 1, 1)); // 99
    l.push(LayerSpec::conv(w(256), 3, 1)); // 100
    l.push(LayerSpec::conv(w(128), 1, 1)); // 101
    l.push(LayerSpec::conv(w(256), 3, 1)); // 102
    l.push(LayerSpec::conv(w(128), 1, 1)); // 103
    l.push(LayerSpec::conv(w(256), 3, 1)); // 104
    l.push(LayerSpec::conv_linear(w(255), 1, 1)); // 105
    l.push(LayerSpec::Yolo { anchors: vec![(10.0, 13.0), (16.0, 30.0), (33.0, 23.0)] }); // 106

    let name = if width_div == 1 && input == 416 {
        "yolov3-416".to_owned()
    } else {
        format!("yolov3-{input}-div{width_div}")
    };
    NetworkConfig { name, input: Shape { c: 3, h: input, w: input }, layers: l }
}

/// A small test network with every layer kind, runnable end-to-end through
/// simulated MRAM in milliseconds.
#[must_use]
pub fn tiny_config() -> NetworkConfig {
    let layers = vec![
        LayerSpec::conv(4, 3, 1),         // 0
        LayerSpec::conv(8, 3, 2),         // 1  /2
        LayerSpec::conv(4, 1, 1),         // 2
        LayerSpec::conv(8, 3, 1),         // 3
        LayerSpec::Shortcut { from: 1 },  // 4
        LayerSpec::conv(16, 3, 2),        // 5  /4
        LayerSpec::conv_linear(18, 1, 1), // 6  (3 anchors × 6)
        LayerSpec::Yolo { anchors: vec![(8.0, 8.0), (16.0, 16.0), (24.0, 24.0)] }, // 7
        LayerSpec::Route { layers: vec![5] }, // 8
        LayerSpec::conv(8, 1, 1),         // 9
        LayerSpec::Upsample,              // 10 /2
        LayerSpec::Route { layers: vec![10, 4] }, // 11
        LayerSpec::conv(8, 3, 1),         // 12
        LayerSpec::conv_linear(18, 1, 1), // 13
        LayerSpec::Yolo { anchors: vec![(4.0, 4.0), (8.0, 8.0), (12.0, 12.0)] }, // 14
    ];
    NetworkConfig { name: "yolo-tiny-test".to_owned(), input: Shape { c: 3, h: 32, w: 32 }, layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_network_has_75_convs() {
        let net = darknet53_yolov3();
        // Darknet-53 contributes 52 convs here (the 53rd is the fc layer,
        // absent in YOLOv3); the head adds 23 more.
        assert_eq!(net.conv_count(), 75);
        assert_eq!(net.layers.len(), 107);
    }

    #[test]
    fn full_network_macs_match_literature() {
        let net = darknet53_yolov3();
        let macs = net.total_macs();
        // YOLOv3-416 is ~32.8 GMACs (65.9 BFLOPs) in the literature; the
        // paper's model back-solves to ≈2.7e10.
        assert!(macs > 2.0e10 as u64 && macs < 4.0e10 as u64, "got {macs}");
    }

    #[test]
    fn backbone_downsamples_to_13() {
        let net = darknet53_yolov3();
        let shapes = net.shapes();
        assert_eq!(shapes[74], Shape { c: 1024, h: 13, w: 13 });
        assert_eq!(shapes[81], Shape { c: 255, h: 13, w: 13 });
        assert_eq!(shapes[93], Shape { c: 255, h: 26, w: 26 });
        assert_eq!(shapes[105], Shape { c: 255, h: 52, w: 52 });
    }

    #[test]
    fn route_86_concatenates_upsample_and_layer_61() {
        let net = darknet53_yolov3();
        let shapes = net.shapes();
        assert_eq!(shapes[85], Shape { c: 256, h: 26, w: 26 });
        assert_eq!(shapes[61], Shape { c: 512, h: 26, w: 26 });
        assert_eq!(shapes[86], Shape { c: 768, h: 26, w: 26 });
    }

    #[test]
    fn scaled_variant_shrinks_macs() {
        let full = darknet53_yolov3();
        let half = darknet53_yolov3_scaled(2, 416);
        let small = darknet53_yolov3_scaled(2, 128);
        assert!(half.total_macs() < full.total_macs() / 3);
        assert!(small.total_macs() < half.total_macs());
        // Same topology.
        assert_eq!(half.layers.len(), full.layers.len());
    }

    #[test]
    fn tiny_config_is_consistent() {
        let net = tiny_config();
        let shapes = net.shapes();
        assert_eq!(shapes.len(), net.layers.len());
        assert_eq!(shapes[6], Shape { c: 18, h: 8, w: 8 });
        assert_eq!(shapes[11], Shape { c: 8 + 8, h: 16, w: 16 });
        assert!(net.total_macs() < 10_000_000);
    }

    #[test]
    fn max_filter_count_fits_the_system() {
        // The Fig. 4.6 mapping needs M DPUs per layer; the largest M must
        // fit in the 2560-DPU system.
        let net = darknet53_yolov3();
        let max_m = net.conv_layers().iter().map(|(_, _, _, d)| d.m).max().unwrap();
        assert_eq!(max_m, 1024);
        assert!(max_m <= dpu_sim::params::SYSTEM_DPUS);
    }
}

/// AlexNet expressed in the layer language (227×227 input, ungrouped
/// convolutions — the reading behind the paper's 2.59e9-op constant; see
/// `pim_model::alexnet`). Enables running AlexNet under the *actual*
/// Fig. 4.6 mapping and comparing against the paper's Eq. 5.3 idealization.
#[must_use]
pub fn alexnet_config() -> NetworkConfig {
    let conv = |filters, size, stride, pad| {
        LayerSpec::Conv(crate::layers::ConvSpec {
            filters,
            size,
            stride,
            pad,
            activation: crate::layers::Activation::Leaky,
        })
    };
    let pool = LayerSpec::MaxPool { size: 3, stride: 2, pad: 0 };
    let layers = vec![
        conv(96, 11, 4, 0), // 227 -> 55
        pool.clone(),       // 55 -> 27
        conv(256, 5, 1, 2), // 27
        pool.clone(),       // 27 -> 13
        conv(384, 3, 1, 1), // 13
        conv(384, 3, 1, 1), // 13
        conv(256, 3, 1, 1), // 13
        pool,               // 13 -> 6
        // FC layers as 1x1 convolutions over the flattened activations
        // modelled at 6x6 spatial collapse: fc6 = 4096 filters of 6x6x256.
        LayerSpec::Conv(crate::layers::ConvSpec {
            filters: 4096,
            size: 6,
            stride: 6,
            pad: 0,
            activation: crate::layers::Activation::Leaky,
        }),
        conv(4096, 1, 1, 0),
        conv(1000, 1, 1, 0),
    ];
    NetworkConfig { name: "alexnet-227".to_owned(), input: Shape { c: 3, h: 227, w: 227 }, layers }
}

#[cfg(test)]
mod alexnet_tests {
    use super::*;

    #[test]
    fn alexnet_shapes_follow_the_canonical_table() {
        let net = alexnet_config();
        let shapes = net.shapes();
        assert_eq!(shapes[0], Shape { c: 96, h: 55, w: 55 });
        assert_eq!(shapes[1], Shape { c: 96, h: 27, w: 27 });
        assert_eq!(shapes[3], Shape { c: 256, h: 13, w: 13 });
        assert_eq!(shapes[7], Shape { c: 256, h: 6, w: 6 });
        assert_eq!(shapes[8], Shape { c: 4096, h: 1, w: 1 });
        assert_eq!(shapes[10], Shape { c: 1000, h: 1, w: 1 });
    }

    #[test]
    fn alexnet_macs_match_the_model_crate() {
        // The layer-language AlexNet must agree with pim-model's
        // hand-tabulated ungrouped MAC count (both ≈1.14e9).
        let macs = alexnet_config().total_macs();
        assert!((1.0e9..1.3e9).contains(&(macs as f64)), "got {macs}");
    }

    #[test]
    fn fc_as_conv_needs_more_dpus_than_the_system_has() {
        // fc6's 4096 filters exceed the 2560-DPU system: under the strict
        // one-row-per-DPU mapping AlexNet's FC layers must be split — a
        // real limitation the Fig. 4.6 scheme hits beyond YOLOv3.
        let max_m = alexnet_config().conv_layers().iter().map(|(_, _, _, d)| d.m).max().unwrap();
        assert!(max_m > dpu_sim::params::SYSTEM_DPUS);
    }
}

/// YOLOv3-tiny: the lightweight two-scale variant (convs + maxpools in
/// place of the residual backbone). A natural intermediate point for the
/// §6.1 network-size question — 1/12 the MACs of full YOLOv3.
#[must_use]
pub fn yolov3_tiny() -> NetworkConfig {
    let pool2 = LayerSpec::MaxPool { size: 2, stride: 2, pad: 0 };
    let layers = vec![
        LayerSpec::conv(16, 3, 1),                         // 0   416
        pool2.clone(),                                     // 1   208
        LayerSpec::conv(32, 3, 1),                         // 2
        pool2.clone(),                                     // 3   104
        LayerSpec::conv(64, 3, 1),                         // 4
        pool2.clone(),                                     // 5   52
        LayerSpec::conv(128, 3, 1),                        // 6
        pool2.clone(),                                     // 7   26
        LayerSpec::conv(256, 3, 1),                        // 8   (route target)
        pool2.clone(),                                     // 9   13
        LayerSpec::conv(512, 3, 1),                        // 10
        LayerSpec::MaxPool { size: 2, stride: 1, pad: 1 }, // 11  stays 13
        LayerSpec::conv(1024, 3, 1),                       // 12
        LayerSpec::conv(256, 1, 1),                        // 13  (route target)
        LayerSpec::conv(512, 3, 1),                        // 14
        LayerSpec::conv_linear(255, 1, 1),                 // 15
        LayerSpec::Yolo { anchors: vec![(81.0, 82.0), (135.0, 169.0), (344.0, 319.0)] }, // 16
        LayerSpec::Route { layers: vec![13] },             // 17
        LayerSpec::conv(128, 1, 1),                        // 18
        LayerSpec::Upsample,                               // 19  26
        LayerSpec::Route { layers: vec![19, 8] },          // 20
        LayerSpec::conv(256, 3, 1),                        // 21
        LayerSpec::conv_linear(255, 1, 1),                 // 22
        LayerSpec::Yolo { anchors: vec![(10.0, 14.0), (23.0, 27.0), (37.0, 58.0)] }, // 23
    ];
    NetworkConfig {
        name: "yolov3-tiny-416".to_owned(),
        input: Shape { c: 3, h: 416, w: 416 },
        layers,
    }
}

#[cfg(test)]
mod tiny_yolo_tests {
    use super::*;

    #[test]
    fn tiny_yolo_shapes_match_darknet() {
        let net = yolov3_tiny();
        let shapes = net.shapes();
        assert_eq!(shapes[8], Shape { c: 256, h: 26, w: 26 });
        assert_eq!(shapes[11], Shape { c: 512, h: 13, w: 13 });
        assert_eq!(shapes[12], Shape { c: 1024, h: 13, w: 13 });
        assert_eq!(shapes[15], Shape { c: 255, h: 13, w: 13 });
        assert_eq!(shapes[20], Shape { c: 128 + 256, h: 26, w: 26 });
        assert_eq!(shapes[22], Shape { c: 255, h: 26, w: 26 });
    }

    #[test]
    fn tiny_yolo_macs_are_a_twelfth_of_full() {
        let tiny = yolov3_tiny().total_macs() as f64;
        let full = darknet53_yolov3().total_macs() as f64;
        // Literature: ~2.8 GMACs vs ~32.8 GMACs.
        assert!((2.0e9..4.0e9).contains(&tiny), "tiny {tiny}");
        assert!((8.0..16.0).contains(&(full / tiny)), "ratio {}", full / tiny);
    }

    #[test]
    fn tiny_yolo_round_trips_through_cfg() {
        let net = yolov3_tiny();
        let back = crate::cfg::parse_cfg(&net.name, &crate::cfg::to_cfg(&net)).unwrap();
        assert_eq!(back.layers, net.layers);
    }

    #[test]
    fn tiny_yolo_frame_estimate_sits_between_ebnn_and_full() {
        use crate::mapping::{GemmMapping, YoloPipeline};
        let rep = YoloPipeline { network: yolov3_tiny(), mapping: GemmMapping::default(), seed: 0 }
            .estimate();
        let t = rep.total_seconds();
        assert!(t > 1.0 && t < 20.0, "tiny frame {t} s");
    }
}
