//! Layer types of the Darknet/YOLOv3 network graph.

use crate::gemm::GemmDims;
use serde::{Deserialize, Serialize};

/// Activation applied after a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Leaky ReLU with slope 0.1 (Darknet default).
    Leaky,
    /// Identity (YOLO head convolutions).
    Linear,
}

impl Activation {
    /// Apply to one fixed-point value. Leaky uses the power-of-two-friendly
    /// `x - (7x/8)` lowering... i.e. `x/8 + x/16 ≈ 0.1x` approximated as
    /// `x >> 3` (0.125) — close enough for the fixed-point pipeline and
    /// shift-only on the DPU.
    #[must_use]
    pub fn apply_i16(self, x: i16) -> i16 {
        match self {
            Activation::Linear => x,
            Activation::Leaky => {
                if x >= 0 {
                    x
                } else {
                    x >> 3
                }
            }
        }
    }

    /// Float reference of the same activation (slope 0.125 to match the
    /// fixed-point lowering).
    #[must_use]
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Leaky => {
                if x >= 0.0 {
                    x
                } else {
                    x * 0.125
                }
            }
        }
    }
}

/// A tensor shape `channels × height × width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True for a degenerate shape.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parameters of a convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Output filters (`M` of the GEMM, and the DPU count of the mapping).
    pub filters: usize,
    /// Kernel edge (1 or 3 in YOLOv3).
    pub size: usize,
    /// Stride (1 or 2).
    pub stride: usize,
    /// Zero padding (size/2 in Darknet).
    pub pad: usize,
    /// Post-conv activation.
    pub activation: Activation,
}

impl ConvSpec {
    /// Output shape given an input shape.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        Shape {
            c: self.filters,
            h: (input.h + 2 * self.pad - self.size) / self.stride + 1,
            w: (input.w + 2 * self.pad - self.size) / self.stride + 1,
        }
    }

    /// GEMM dimensions of this layer on a given input.
    #[must_use]
    pub fn gemm_dims(&self, input: Shape) -> GemmDims {
        let out = self.out_shape(input);
        GemmDims { m: self.filters, n: out.h * out.w, k: input.c * self.size * self.size }
    }
}

/// One layer of the network graph. Indices in `Route`/`Shortcut` are
/// absolute layer indices, as in Darknet `.cfg` files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Convolution (runs on the DPUs via GEMM).
    Conv(ConvSpec),
    /// Residual add with the output of an earlier layer (host).
    Shortcut {
        /// Absolute index of the layer to add.
        from: usize,
    },
    /// Concatenate earlier layers' outputs channel-wise (host).
    Route {
        /// Absolute indices of the layers to concatenate.
        layers: Vec<usize>,
    },
    /// Max pooling (host; AlexNet/tiny-YOLO style). Uses Darknet's
    /// convention: `out = (in + pad - size)/stride + 1` with `pad` total
    /// padding split left-light (`pad/2` before, the rest after) — this is
    /// what makes tiny-YOLO's `size=2 stride=1 pad=1` pool keep 13×13.
    MaxPool {
        /// Window edge.
        size: usize,
        /// Stride.
        stride: usize,
        /// Total padding (Darknet style, split across both sides).
        pad: usize,
    },
    /// Nearest-neighbour 2× upsample (host).
    Upsample,
    /// YOLO detection head over the given anchor boxes (host).
    Yolo {
        /// Anchor box `(w, h)` pairs in input pixels.
        anchors: Vec<(f32, f32)>,
    },
}

impl LayerSpec {
    /// Shorthand for a Darknet conv layer (pad = size/2).
    #[must_use]
    pub fn conv(filters: usize, size: usize, stride: usize) -> Self {
        LayerSpec::Conv(ConvSpec {
            filters,
            size,
            stride,
            pad: size / 2,
            activation: Activation::Leaky,
        })
    }

    /// A linear-activation conv (YOLO head output).
    #[must_use]
    pub fn conv_linear(filters: usize, size: usize, stride: usize) -> Self {
        LayerSpec::Conv(ConvSpec {
            filters,
            size,
            stride,
            pad: size / 2,
            activation: Activation::Linear,
        })
    }

    /// Output shape of this layer. `shapes` holds the output shapes of all
    /// preceding layers (for `Route`/`Shortcut`); `input` is the previous
    /// layer's output.
    ///
    /// # Panics
    /// When a route/shortcut index is out of range or shapes mismatch.
    #[must_use]
    pub fn out_shape(&self, input: Shape, shapes: &[Shape]) -> Shape {
        match self {
            LayerSpec::Conv(c) => c.out_shape(input),
            LayerSpec::Shortcut { from } => {
                let other = shapes[*from];
                assert_eq!(other, input, "shortcut shapes must match");
                input
            }
            LayerSpec::Route { layers } => {
                let first = shapes[layers[0]];
                let c = layers
                    .iter()
                    .map(|&l| {
                        let s = shapes[l];
                        assert_eq!((s.h, s.w), (first.h, first.w), "route spatial mismatch");
                        s.c
                    })
                    .sum();
                Shape { c, h: first.h, w: first.w }
            }
            LayerSpec::MaxPool { size, stride, pad } => Shape {
                c: input.c,
                h: (input.h + pad - size) / stride + 1,
                w: (input.w + pad - size) / stride + 1,
            },
            LayerSpec::Upsample => Shape { c: input.c, h: input.h * 2, w: input.w * 2 },
            LayerSpec::Yolo { .. } => input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        let input = Shape { c: 3, h: 416, w: 416 };
        let c = ConvSpec { filters: 32, size: 3, stride: 1, pad: 1, activation: Activation::Leaky };
        assert_eq!(c.out_shape(input), Shape { c: 32, h: 416, w: 416 });
        let down =
            ConvSpec { filters: 64, size: 3, stride: 2, pad: 1, activation: Activation::Leaky };
        assert_eq!(down.out_shape(c.out_shape(input)), Shape { c: 64, h: 208, w: 208 });
    }

    #[test]
    fn gemm_dims_match_convention() {
        let input = Shape { c: 32, h: 208, w: 208 };
        let c = ConvSpec { filters: 64, size: 3, stride: 1, pad: 1, activation: Activation::Leaky };
        let d = c.gemm_dims(input);
        assert_eq!(d.m, 64);
        assert_eq!(d.k, 32 * 9);
        assert_eq!(d.n, 208 * 208);
    }

    #[test]
    fn leaky_is_shift_based() {
        assert_eq!(Activation::Leaky.apply_i16(100), 100);
        assert_eq!(Activation::Leaky.apply_i16(-80), -10);
        assert_eq!(Activation::Linear.apply_i16(-80), -80);
        assert_eq!(Activation::Leaky.apply_f32(-8.0), -1.0);
    }

    #[test]
    fn route_concatenates_channels() {
        let shapes = vec![Shape { c: 8, h: 13, w: 13 }, Shape { c: 16, h: 13, w: 13 }];
        let r = LayerSpec::Route { layers: vec![0, 1] };
        let out = r.out_shape(shapes[1], &shapes);
        assert_eq!(out, Shape { c: 24, h: 13, w: 13 });
    }

    #[test]
    fn maxpool_shapes() {
        // AlexNet's 3x3 stride-2 pools: 55 -> 27 -> ... 13 -> 6.
        let p = LayerSpec::MaxPool { size: 3, stride: 2, pad: 0 };
        assert_eq!(p.out_shape(Shape { c: 96, h: 55, w: 55 }, &[]), Shape { c: 96, h: 27, w: 27 });
        assert_eq!(p.out_shape(Shape { c: 256, h: 13, w: 13 }, &[]), Shape { c: 256, h: 6, w: 6 });
        // tiny-YOLO's stride-1 pool keeps 13x13 via pad=1 (Darknet rule).
        let p1 = LayerSpec::MaxPool { size: 2, stride: 1, pad: 1 };
        assert_eq!(
            p1.out_shape(Shape { c: 512, h: 13, w: 13 }, &[]),
            Shape { c: 512, h: 13, w: 13 }
        );
        // Plain stride-2 halving pool.
        let p2 = LayerSpec::MaxPool { size: 2, stride: 2, pad: 0 };
        assert_eq!(
            p2.out_shape(Shape { c: 16, h: 416, w: 416 }, &[]),
            Shape { c: 16, h: 208, w: 208 }
        );
    }

    #[test]
    fn upsample_doubles_spatial() {
        let s = LayerSpec::Upsample.out_shape(Shape { c: 4, h: 13, w: 13 }, &[]);
        assert_eq!(s, Shape { c: 4, h: 26, w: 26 });
    }

    #[test]
    #[should_panic(expected = "shortcut shapes must match")]
    fn mismatched_shortcut_panics() {
        let shapes = vec![Shape { c: 8, h: 13, w: 13 }];
        let s = LayerSpec::Shortcut { from: 0 };
        let _ = s.out_shape(Shape { c: 4, h: 13, w: 13 }, &shapes);
    }
}
