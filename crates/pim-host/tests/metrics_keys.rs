//! Metrics-key stability: the `launch.*`/`dpu.*`/`tasklet.*`,
//! `resilient.*`/`faults.*` and `obs.*` key sets are a public interface —
//! dashboards, the Prometheus exposition, and the perf-regression
//! baseline all address metrics by these names. Renaming or dropping a
//! key must be a conscious, test-visible change, so this test pins the
//! exact key sets emitted by each snapshot path.

use dpu_sim::asm::assemble;
use dpu_sim::faults::{FaultConfig, FaultPlan};
use pim_host::{DpuSet, LaunchObservation, ResilientLaunchPolicy};
use pim_trace::MetricsRegistry;

fn work_program() -> dpu_sim::Program {
    assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         movi r4, 50\n\
         loop:\n\
         addi r4, r4, -1\n\
         bne r4, r0, loop\n\
         mram.write r1, r2, r3\n\
         halt\n",
    )
    .unwrap()
}

fn key_sets(m: &MetricsRegistry) -> (Vec<String>, Vec<String>, Vec<String>) {
    (
        m.counters().map(|(k, _)| k.to_owned()).collect(),
        m.gauges().map(|(k, _)| k.to_owned()).collect(),
        m.histograms().map(|(k, _)| k.to_owned()).collect(),
    )
}

#[test]
fn launch_metrics_key_set_is_stable() {
    let mut set = DpuSet::allocate(2).unwrap();
    let result = set.launch(&work_program(), 4).unwrap();
    let (counters, gauges, histograms) = key_sets(&result.metrics());
    assert_eq!(
        counters,
        ["launch.dma.bytes", "launch.dma.cycles", "launch.dma.transfers", "launch.instructions"]
    );
    assert_eq!(gauges, ["launch.dpus", "launch.ipc", "launch.makespan_cycles", "launch.tasklets"]);
    assert_eq!(histograms, ["dpu.cycles", "dpu.instructions", "dpu.ipc", "tasklet.occupancy"]);
}

#[test]
fn resilient_metrics_key_set_is_stable() {
    let mut set = DpuSet::allocate(4).unwrap();
    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
    let policy =
        ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
    let report = set.launch_resilient(&work_program(), 2, &policy).unwrap();
    assert!(report.fully_served(), "redispatch serves the offline DPU's work");
    let (counters, gauges, histograms) = key_sets(&report.metrics());
    assert_eq!(
        counters,
        [
            "faults.dpu_offline",
            "integrity.dma_corrected",
            "integrity.scrub_corrected",
            "integrity.scrub_uncorrectable",
            "integrity.scrub_words",
            "launch.dma.bytes",
            "launch.dma.cycles",
            "launch.dma.transfers",
            "launch.instructions",
            "resilient.faults_injected",
            "resilient.healthy_after_repair",
            "resilient.quarantined",
            "resilient.redispatched",
            "resilient.retries",
        ]
    );
    assert_eq!(
        gauges,
        [
            "launch.dpus",
            "launch.ipc",
            "launch.makespan_cycles",
            "launch.tasklets",
            "resilient.makespan_cycles",
            "resilient.unserved",
        ]
    );
    assert_eq!(histograms, ["dpu.cycles", "dpu.instructions", "dpu.ipc", "tasklet.occupancy"]);
}

#[test]
fn observation_metrics_key_set_is_stable() {
    let program = work_program();
    let mut obs = LaunchObservation::new();

    // A plain observed launch on a steal-scheduled set…
    let mut set = DpuSet::allocate(6).unwrap();
    set.launch_observed(&program, 4, &mut obs).unwrap();

    // …plus a resilient launch with a scripted offline DPU.
    let mut faulty = DpuSet::allocate(4).unwrap();
    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
    let policy =
        ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
    let report = faulty.launch_resilient(&program, 2, &policy).unwrap();
    obs.record_report(&report);

    let (counters, gauges, histograms) = key_sets(obs.metrics());
    assert_eq!(
        counters,
        [
            "obs.dma.bytes",
            "obs.dma.cycles",
            "obs.dma.transfers",
            "obs.faults.dpu_offline",
            "obs.faults_injected",
            "obs.healthy_after_repair",
            "obs.instructions",
            "obs.integrity.dma_corrected",
            "obs.integrity.scrub_corrected",
            "obs.integrity.scrub_uncorrectable",
            "obs.launches",
            "obs.pool.batches",
            "obs.quarantined",
            "obs.redispatched",
            "obs.retries",
            "obs.steal.claims",
            "obs.steal.launches",
            "obs.unserved",
        ]
    );
    assert_eq!(
        gauges,
        ["obs.dpus", "obs.pool.shards", "obs.pool.workers", "obs.steal.workers", "obs.tasklets"]
    );
    assert_eq!(
        histograms,
        [
            "obs.dpu.cycles",
            "obs.dpu.instructions",
            "obs.dpu.ipc",
            "obs.launch.makespan_cycles",
            "obs.pool.occupancy",
            "obs.pool.queue_depth",
            "obs.steal.claims_per_worker",
            "obs.tasklet.occupancy",
        ]
    );
}
