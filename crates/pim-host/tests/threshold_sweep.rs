//! Parallel-threshold sweep: re-derive `DEFAULT_PARALLEL_THRESHOLD`.
//!
//! Run with `cargo test --release -p pim-host --test threshold_sweep --
//! --ignored --nocapture` to print sequential vs pooled launch wall-clock
//! at each set size. The default threshold should sit at the crossover:
//! below it the pool's hand-off overhead outweighs the parallelism. The
//! sweep backing the current default (4) is recorded in
//! docs/PERFORMANCE.md.

use dpu_sim::asm::assemble;
use pim_host::DpuSet;
use std::time::{Duration, Instant};

fn work_program() -> dpu_sim::Program {
    assemble(
        "movi r4, 20000\n\
         top:\n\
         addi r4, r4, -1\n\
         bne r4, r0, top\n\
         halt\n",
    )
    .unwrap()
}

fn min_launch_time(set: &mut DpuSet, rounds: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        set.launch_loaded(1).expect("launch");
        best = best.min(start.elapsed());
    }
    best
}

/// Fast CI smoke for the sweep's correctness premise: the sequential and
/// pooled launch paths are interchangeable — identical `LaunchResult`s on
/// set sizes straddling `DEFAULT_PARALLEL_THRESHOLD`. The wall-clock
/// crossover itself stays in the `--ignored` diagnostic sweep below.
#[test]
fn smoke_sequential_and_pooled_launches_agree() {
    let program = assemble(
        "movi r4, 200\n\
         top:\n\
         addi r4, r4, -1\n\
         bne r4, r0, top\n\
         halt\n",
    )
    .unwrap();
    for n in [1usize, 3, 6] {
        let mut seq = DpuSet::allocate(n).unwrap();
        seq.set_parallel_threshold(Some(usize::MAX));
        seq.load(&program).unwrap();
        let r_seq = seq.launch_loaded(2).expect("sequential launch");

        let mut par = DpuSet::allocate(n).unwrap();
        par.set_parallel_threshold(Some(1));
        par.load(&program).unwrap();
        let r_par = par.launch_loaded(2).expect("pooled launch");

        let mut def = DpuSet::allocate(n).unwrap();
        def.load(&program).unwrap();
        let r_def = def.launch_loaded(2).expect("default-threshold launch");

        assert_eq!(r_seq, r_par, "sequential vs pooled diverged at {n} DPUs");
        assert_eq!(r_seq, r_def, "default threshold diverged at {n} DPUs");
        assert_eq!(r_seq.per_dpu.len(), n);
        assert!(r_seq.makespan_cycles() > 0);
    }
}

#[test]
#[ignore = "diagnostic sweep: run with --release -- --ignored --nocapture"]
fn sweep_sequential_vs_pooled() {
    let program = work_program();
    println!("dpus  sequential    pooled      winner");
    for n in [1usize, 2, 3, 4, 6, 8, 16, 32] {
        let mut seq = DpuSet::allocate(n).unwrap();
        seq.set_parallel_threshold(Some(usize::MAX));
        seq.load(&program).unwrap();
        let t_seq = min_launch_time(&mut seq, 20);

        let mut par = DpuSet::allocate(n).unwrap();
        par.set_parallel_threshold(Some(1));
        par.load(&program).unwrap();
        let t_par = min_launch_time(&mut par, 20);

        let winner = if t_seq <= t_par { "sequential" } else { "pooled" };
        println!("{n:>4}  {t_seq:>10.1?}  {t_par:>10.1?}  {winner}");
    }
}
