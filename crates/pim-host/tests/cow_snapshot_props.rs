//! Property tests for the COW MRAM arena: snapshot/restore exactness
//! under arbitrary corruption, broadcast-page isolation, and resilient
//! retry bit-identity when faults are injected.

use dpu_sim::asm::assemble;
use dpu_sim::faults::{FaultConfig, FaultPlan};
use dpu_sim::DpuId;
use pim_host::{DpuSet, ResilientLaunchPolicy};
use proptest::prelude::*;

fn double_program() -> dpu_sim::Program {
    assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         add r4, r4, r4\n\
         sw r1, 0, r4\n\
         mram.write r1, r2, r3\n\
         halt\n",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Restoring a snapshot reverts arbitrary MRAM corruption exactly:
    /// after random overwrites (the host-level model of bit flips), the
    /// restored image is bit-identical to the captured one.
    #[test]
    fn restore_reverts_arbitrary_mram_corruption(
        data in proptest::collection::vec(any::<u8>(), 8..2048),
        writes in proptest::collection::vec(
            (0usize..192 * 1024, proptest::collection::vec(any::<u8>(), 8..64)),
            1..8,
        ),
    ) {
        let span = 192 * 1024; // three 64 KiB pages
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", span).unwrap();
        let padded = pim_host::pad_to_8(&data);
        set.copy_to_dpu(DpuId(0), "buf", 0, &padded).unwrap();

        let pristine = set.system().dpu(DpuId(0)).mram.clone();
        let snap = set.snapshot();

        // Corrupt: random writes at random offsets (clamped into the span).
        for (addr, bytes) in &writes {
            let addr = (addr & !7).min(span - 64);
            let n = bytes.len() & !7;
            if n > 0 {
                set.copy_to_dpu(DpuId(0), "buf", addr, &bytes[..n]).unwrap();
            }
        }

        set.restore(&snap).unwrap();
        prop_assert_eq!(&set.system().dpu(DpuId(0)).mram, &pristine);
        let mut back = vec![0u8; padded.len()];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap();
        prop_assert_eq!(back, padded);
    }

    /// A broadcast (`copy_to`) shares whole pages across the set; writing
    /// through one DPU must copy-on-write its private view and never leak
    /// into the other DPUs' images.
    #[test]
    fn broadcast_pages_survive_one_dpu_writes(
        n_dpus in 2usize..8,
        fill in any::<u8>(),
        writer in 0usize..8,
        wdata in proptest::collection::vec(any::<u8>(), 8..256),
        waddr in 0usize..128 * 1024,
    ) {
        let span = 128 * 1024; // two full 64 KiB pages
        let writer = writer % n_dpus;
        let mut set = DpuSet::allocate(n_dpus).unwrap();
        set.define_symbol("w", span).unwrap();
        let image = vec![fill; span];
        set.copy_to("w", 0, &image).unwrap();

        let shared = set.system().mram_residency();
        prop_assert_eq!(shared.distinct_pages, 2, "broadcast stores each page once");

        let n = wdata.len() & !7;
        let addr = (waddr & !7).min(span - 256);
        set.copy_to_dpu(DpuId(writer as u32), "w", addr, &wdata[..n]).unwrap();

        // Every non-writer still reads the pristine broadcast image.
        for d in 0..n_dpus {
            if d == writer {
                continue;
            }
            let mut back = vec![0u8; span];
            set.copy_from_dpu(DpuId(d as u32), "w", 0, &mut back).unwrap();
            prop_assert_eq!(&back, &image, "DPU {} saw the writer's mutation", d);
        }
        // The writer's COW fork adds at most one private copy per touched
        // page; the broadcast pages themselves are still shared.
        let after = set.system().mram_residency();
        prop_assert!(after.distinct_pages <= 2 + 2, "{} pages", after.distinct_pages);
    }

    /// Resilient retry under injected DMA failures and MRAM bit flips:
    /// restoring the external pre-launch snapshot and re-running fault-free
    /// reproduces the clean reference exactly — the fault machinery leaves
    /// no residue — and any DPU served first-try with zero injected faults
    /// already matches the reference.
    #[test]
    fn resilient_retry_with_bitflips_leaves_no_residue(
        seed in any::<u64>(),
        dma_fail in 0.1f64..0.7,
        bit_flip in 0.1f64..0.9,
    ) {
        let n = 6;
        let program = double_program();
        let seeded = |set: &mut DpuSet| {
            set.define_symbol("x", 8).unwrap();
            for i in 0..n {
                set.copy_to_dpu(DpuId(i as u32), "x", 0, &(i as u64 + 1).to_le_bytes())
                    .unwrap();
            }
            set.load(&program).unwrap();
        };

        // Clean reference.
        let mut clean = DpuSet::allocate(n).unwrap();
        seeded(&mut clean);
        clean.launch_loaded(1).unwrap();
        let reference: Vec<u64> =
            (0..n).map(|i| clean.copy_scalar_from(DpuId(i as u32), "x").unwrap()).collect();

        // Faulted run.
        let mut set = DpuSet::allocate(n).unwrap();
        seeded(&mut set);
        let snap = set.snapshot();
        let plan = FaultPlan::new(FaultConfig {
            seed,
            dma_fail_prob: dma_fail,
            bit_flip_prob: bit_flip,
            ..FaultConfig::default()
        });
        let policy = ResilientLaunchPolicy {
            max_retries: 4,
            force_sequential: true,
            ..ResilientLaunchPolicy::with_faults(plan)
        };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();

        // First-try fault-free serves match the clean reference bit-for-bit.
        for (i, r) in report.per_dpu.iter().enumerate() {
            if r.attempts == 1 && r.faults.is_empty() && r.served_by.is_none() {
                prop_assert_eq!(
                    set.copy_scalar_from(DpuId(i as u32), "x").unwrap(),
                    reference[i],
                    "clean serve diverged on DPU {}",
                    i
                );
            }
        }

        // Roll back and re-run without faults: bit-identical to reference.
        set.restore(&snap).unwrap();
        set.launch_loaded(1).unwrap();
        for (i, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(set.copy_scalar_from(DpuId(i as u32), "x").unwrap(), expected);
        }
    }
}
