//! Fault-matrix smoke suite: sweep every fault class at several rates and
//! seeds through the resilient launch path, and check the invariants that
//! must hold for *any* campaign — no panics, deterministic reports, retry
//! and quarantine bookkeeping that adds up. This is the suite the CI
//! fault-matrix job runs on its own.

use dpu_sim::faults::{FaultConfig, FaultPlan};
use dpu_sim::DpuId;
use pim_host::{DpuSet, LaunchReport, ResilientLaunchPolicy};

const DPUS: usize = 6;
const TASKLETS: usize = 2;

/// A kernel with DMA in, a data-dependent loop, DMA out — every fault
/// class has something to hit (transfers for DMA faults, a long loop for
/// hangs, live memory for flips).
fn staged_set() -> DpuSet {
    let program = dpu_sim::asm::assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         top:\n\
         addi r4, r4, -1\n\
         bne r4, r0, top\n\
         lw r4, r1, 0\n\
         add r4, r4, r4\n\
         sw r1, 0, r4\n\
         mram.write r1, r2, r3\n\
         halt\n",
    )
    .unwrap();
    let mut set = DpuSet::allocate(DPUS).unwrap();
    set.define_symbol("x", 8).unwrap();
    for i in 0..DPUS {
        set.copy_to_dpu(DpuId(i as u32), "x", 0, &(500 + i as u64 * 37).to_le_bytes()).unwrap();
    }
    set.load(&program).unwrap();
    set
}

/// The campaign matrix: one axis per fault class plus a mixed row, each at
/// a mild and an aggressive rate.
fn matrix() -> Vec<(&'static str, FaultConfig)> {
    let mut cells = Vec::new();
    for &(label, rate) in &[("mild", 0.05), ("aggressive", 0.4)] {
        cells.push((label, FaultConfig { dma_fail_prob: rate, ..FaultConfig::default() }));
        cells.push((label, FaultConfig { bit_flip_prob: rate, ..FaultConfig::default() }));
        cells.push((label, FaultConfig { hang_prob: rate, ..FaultConfig::default() }));
        cells.push((label, FaultConfig { dpu_offline_prob: rate, ..FaultConfig::default() }));
        // Combined pairs: both classes armed at once, so a single attempt
        // can draw a hang on an offline-flaky DPU or a bit flip riding a
        // failing DMA.
        cells.push((
            label,
            FaultConfig { hang_prob: rate, dpu_offline_prob: rate, ..FaultConfig::default() },
        ));
        cells.push((
            label,
            FaultConfig { bit_flip_prob: rate, dma_fail_prob: rate, ..FaultConfig::default() },
        ));
        cells.push((
            label,
            FaultConfig {
                dma_fail_prob: rate / 2.0,
                bit_flip_prob: rate / 2.0,
                hang_prob: rate / 2.0,
                dpu_offline_prob: rate / 4.0,
                double_flip_prob: rate / 4.0,
                ..FaultConfig::default()
            },
        ));
    }
    cells
}

fn run_cell(config: FaultConfig, force_sequential: bool) -> LaunchReport {
    let policy = ResilientLaunchPolicy {
        max_retries: 3,
        backoff_cycles: 250,
        // Generous enough that only injected hangs trip it (the kernel
        // itself finishes in well under a million cycles).
        watchdog_budget: 5_000_000,
        force_sequential,
        ..ResilientLaunchPolicy::with_faults(FaultPlan::new(config))
    };
    staged_set().launch_loaded_resilient(TASKLETS, &policy).expect("launch never errors")
}

/// Structural invariants that must hold for any report from any campaign.
fn check_invariants(report: &LaunchReport, max_retries: u32) {
    assert_eq!(report.per_dpu.len(), DPUS);
    for (i, r) in report.per_dpu.iter().enumerate() {
        assert!(
            r.attempts >= 1 && r.attempts <= max_retries + 1,
            "DPU {i}: {} attempts",
            r.attempts
        );
        let quarantined = report.quarantined.contains(&DpuId(i as u32));
        // Quarantined ⇔ exhausted every attempt without a home-DPU result.
        assert_eq!(
            quarantined,
            r.attempts == max_retries + 1 && (r.result.is_none() || r.served_by.is_some()),
            "DPU {i}: quarantine bookkeeping inconsistent: {r:?}"
        );
        if r.served_by.is_some() {
            assert!(quarantined, "DPU {i}: served by a stand-in but not quarantined");
            assert!(r.result.is_some());
        }
        if !quarantined {
            assert!(r.result.is_some(), "DPU {i}: not quarantined yet unserved");
            assert!(r.last_error.is_none());
        }
    }
    // Every re-dispatch pairs a quarantined victim with a non-quarantined
    // survivor.
    for d in &report.degraded {
        assert!(report.quarantined.contains(&d.from));
        assert!(!report.quarantined.contains(&d.to));
        assert!(d.cycles > 0);
    }
    // Quarantine list is ascending and duplicate-free.
    assert!(report.quarantined.windows(2).all(|w| w[0] < w[1]));
    // Metrics agree with the report.
    let m = report.metrics();
    assert_eq!(m.counter("resilient.retries"), report.retries());
    assert_eq!(m.counter("resilient.quarantined"), report.quarantined.len() as u64);
    assert_eq!(m.counter("resilient.redispatched"), report.degraded.len() as u64);
    assert_eq!(m.counter("resilient.faults_injected"), report.faults_injected() as u64);
}

#[test]
fn every_matrix_cell_completes_with_consistent_reports() {
    for (label, config) in matrix() {
        for seed in [1u64, 99, 0xDEAD_BEEF] {
            let report = run_cell(FaultConfig { seed, ..config.clone() }, false);
            check_invariants(&report, 3);
            // Same seed, same cell → identical report.
            let again = run_cell(FaultConfig { seed, ..config.clone() }, false);
            assert_eq!(report, again, "{label} cell not reproducible at seed {seed}");
        }
    }
}

#[test]
fn matrix_cells_are_deterministic_across_scheduling() {
    for (_, config) in matrix() {
        let config = FaultConfig { seed: 0x5EED, ..config };
        let parallel = run_cell(config.clone(), false);
        let sequential = run_cell(config, true);
        assert_eq!(parallel, sequential);
    }
}

#[test]
fn combined_faults_in_one_attempt_exhaust_and_quarantine_cleanly() {
    // Certainty-rate pairs force both fault classes into *every* attempt:
    // a flip landing on the same attempt as a DMA failure, and a hang on
    // a DPU that is also drawn offline. Bookkeeping must stay consistent
    // all the way to whole-set quarantine.
    let pairs = [
        FaultConfig { bit_flip_prob: 1.0, dma_fail_prob: 1.0, ..FaultConfig::default() },
        FaultConfig { hang_prob: 1.0, dpu_offline_prob: 1.0, ..FaultConfig::default() },
    ];
    for config in pairs {
        let report = run_cell(FaultConfig { seed: 0xC0, ..config }, false);
        check_invariants(&report, 3);
        assert_eq!(
            report.quarantined.len(),
            DPUS,
            "certainty-rate combined faults must quarantine every DPU"
        );
        assert!(report.degraded.is_empty(), "no survivors to redispatch onto");
        assert!(report.per_dpu.iter().all(|r| r.attempts == 4 && r.result.is_none()));
    }
}

#[test]
fn flip_free_cells_produce_correct_results_wherever_served() {
    for (_, config) in matrix().into_iter().filter(|(_, c)| c.bit_flip_prob == 0.0) {
        let config = FaultConfig { seed: 7, ..config };
        let policy = ResilientLaunchPolicy {
            max_retries: 3,
            watchdog_budget: 5_000_000,
            ..ResilientLaunchPolicy::with_faults(FaultPlan::new(config))
        };
        let mut set = staged_set();
        let report = set.launch_loaded_resilient(TASKLETS, &policy).unwrap();
        for (i, r) in report.per_dpu.iter().enumerate() {
            if r.result.is_some() {
                assert_eq!(
                    set.copy_scalar_from(DpuId(i as u32), "x").unwrap(),
                    (500 + i as u64 * 37) * 2,
                    "DPU {i} served a wrong result"
                );
            }
        }
    }
}
