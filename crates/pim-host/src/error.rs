//! Host-side error type.

use std::fmt;

/// Result alias for host runtime operations.
pub type Result<T> = std::result::Result<T, HostError>;

/// Errors raised by the host runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostError {
    /// An error bubbled up from a simulated DPU.
    Dpu(dpu_sim::Error),
    /// A transfer violated the 8-byte alignment/size rule (paper §3.2).
    Alignment {
        /// What was misaligned ("length", "offset").
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A named symbol was redefined or not found.
    Symbol {
        /// The symbol name.
        name: String,
        /// Description of the problem.
        problem: &'static str,
    },
    /// A transfer did not fit in the symbol's capacity.
    SymbolOverflow {
        /// The symbol name.
        name: String,
        /// Requested end offset.
        requested: usize,
        /// Symbol capacity.
        capacity: usize,
    },
    /// A scatter/gather batch was pushed with a buffer count different from
    /// the DPU count.
    XferArity {
        /// Buffers prepared.
        prepared: usize,
        /// DPUs in the set.
        dpus: usize,
    },
    /// An operation addressed a DPU outside the set.
    NoSuchDpu {
        /// The requested DPU index.
        index: u32,
        /// Number of DPUs in the set.
        len: usize,
    },
    /// The requested allocation is empty or exceeds the system size.
    BadAllocation {
        /// Requested DPU count.
        requested: usize,
    },
    /// A host simulation worker thread panicked while running a DPU.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// A snapshot was restored onto a set or rank of a different shape.
    SnapshotMismatch {
        /// DPUs in the restoring set.
        expected: usize,
        /// DPUs the snapshot captured.
        actual: usize,
    },
    /// A checked host↔DPU transfer exhausted its retries without landing
    /// a frame whose CRC-32C verified (persistent link corruption or
    /// repeated transfer aborts).
    LinkIntegrity {
        /// Symbol the transfer addressed.
        symbol: String,
        /// DPU whose transfer could not be verified.
        dpu: u32,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Dpu(e) => write!(f, "DPU fault: {e}"),
            HostError::Alignment { what, value } => {
                write!(f, "transfer {what} {value} violates the 8-byte rule")
            }
            HostError::Symbol { name, problem } => write!(f, "symbol `{name}`: {problem}"),
            HostError::SymbolOverflow { name, requested, capacity } => write!(
                f,
                "transfer to `{name}` reaches offset {requested} but capacity is {capacity}"
            ),
            HostError::XferArity { prepared, dpus } => {
                write!(f, "xfer batch has {prepared} buffers for {dpus} DPUs")
            }
            HostError::NoSuchDpu { index, len } => {
                write!(f, "DPU {index} outside set of {len}")
            }
            HostError::BadAllocation { requested } => {
                write!(f, "cannot allocate {requested} DPUs")
            }
            HostError::WorkerPanic { detail } => {
                write!(f, "simulation worker thread panicked: {detail}")
            }
            HostError::SnapshotMismatch { expected, actual } => {
                write!(f, "snapshot captured {actual} DPUs but the target holds {expected}")
            }
            HostError::LinkIntegrity { symbol, dpu, attempts } => write!(
                f,
                "host-link transfer of `{symbol}` to DPU {dpu} failed CRC verification after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Dpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dpu_sim::Error> for HostError {
    fn from(e: dpu_sim::Error) -> Self {
        HostError::Dpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpu_errors_convert() {
        let e: HostError = dpu_sim::Error::DivisionByZero { pc: 9 }.into();
        assert!(matches!(e, HostError::Dpu(_)));
        assert!(e.to_string().contains("division by zero"));
    }

    #[test]
    fn display_mentions_the_rule() {
        let e = HostError::Alignment { what: "length", value: 13 };
        assert!(e.to_string().contains("8-byte"));
    }

    /// Every variant's Display output names the variant's own diagnostic
    /// payload, so a logged error is always actionable. One case per
    /// variant — this test is the checklist to extend when adding one
    /// (the enum is `#[non_exhaustive]` toward downstream crates, but
    /// in-crate matches stay exhaustive).
    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(HostError, &[&str])> = vec![
            (
                HostError::Dpu(dpu_sim::Error::DivisionByZero { pc: 7 }),
                &["DPU fault", "division by zero", "pc=7"],
            ),
            (HostError::Alignment { what: "offset", value: 13 }, &["offset", "13", "8-byte"]),
            (
                HostError::Symbol { name: "weights".to_owned(), problem: "not defined" },
                &["weights", "not defined"],
            ),
            (
                HostError::SymbolOverflow {
                    name: "features".to_owned(),
                    requested: 640,
                    capacity: 512,
                },
                &["features", "640", "512"],
            ),
            (HostError::XferArity { prepared: 3, dpus: 8 }, &["3", "8", "buffers"]),
            (HostError::NoSuchDpu { index: 9, len: 4 }, &["DPU 9", "4"]),
            (HostError::BadAllocation { requested: 0 }, &["allocate", "0"]),
            (
                HostError::WorkerPanic { detail: "index out of bounds".to_owned() },
                &["panicked", "index out of bounds"],
            ),
            (HostError::SnapshotMismatch { expected: 64, actual: 32 }, &["32", "64", "snapshot"]),
            (
                HostError::LinkIntegrity { symbol: "weights".to_owned(), dpu: 5, attempts: 4 },
                &["weights", "DPU 5", "4 attempts", "CRC"],
            ),
        ];
        for (err, needles) in cases {
            let shown = err.to_string();
            for needle in needles {
                assert!(
                    shown.contains(needle),
                    "{err:?} displayed as {shown:?}; wanted {needle:?}"
                );
            }
            // Error-trait plumbing: only the Dpu wrapper has a source.
            use std::error::Error as _;
            assert_eq!(err.source().is_some(), matches!(err, HostError::Dpu(_)), "{err:?}");
        }
    }

    #[test]
    fn host_error_is_non_exhaustive_but_clone_eq() {
        // Compile-time spot check that the derives downstream code relies
        // on are in place.
        let e = HostError::BadAllocation { requested: 3 };
        assert_eq!(e.clone(), e);
    }
}
