//! Typed transfer helpers: move `i16`/`i32`/`u32` slices through the
//! byte-oriented transfer layer without hand-rolled serialization.
//!
//! The CNN pipelines move quantized tensors (`i16` weights and activations)
//! constantly; these helpers encode little-endian, pad to the 8-byte rule,
//! and decode back, keeping the conversion logic in one tested place.

use crate::align::PaddedBuf;
use crate::error::Result;
use crate::set::DpuSet;
use dpu_sim::DpuId;

/// Values that can cross the host↔MRAM boundary as fixed-width
/// little-endian words.
pub trait Wire: Copy {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append the little-endian encoding to `out`.
    fn put(self, out: &mut Vec<u8>);
    /// Decode from a little-endian chunk of `Self::BYTES` bytes.
    fn get(chunk: &[u8]) -> Self;
}

impl Wire for i16 {
    const BYTES: usize = 2;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get(chunk: &[u8]) -> Self {
        i16::from_le_bytes([chunk[0], chunk[1]])
    }
}

impl Wire for i32 {
    const BYTES: usize = 4;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get(chunk: &[u8]) -> Self {
        i32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]])
    }
}

impl Wire for u32 {
    const BYTES: usize = 4;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get(chunk: &[u8]) -> Self {
        u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]])
    }
}

/// Encode a slice to padded wire bytes.
#[must_use]
pub fn to_wire<T: Wire>(values: &[T]) -> PaddedBuf {
    let mut raw = Vec::with_capacity(values.len() * T::BYTES);
    for &v in values {
        v.put(&mut raw);
    }
    PaddedBuf::new(&raw)
}

/// Decode `count` values from wire bytes (ignoring padding).
///
/// # Panics
/// When `bytes` is shorter than `count * T::BYTES`.
#[must_use]
pub fn from_wire<T: Wire>(bytes: &[u8], count: usize) -> Vec<T> {
    assert!(bytes.len() >= count * T::BYTES, "wire buffer too short");
    bytes.chunks_exact(T::BYTES).take(count).map(T::get).collect()
}

impl DpuSet {
    /// Broadcast a typed slice to `symbol` on every DPU (padded).
    ///
    /// # Errors
    /// Symbol/bounds violations.
    pub fn copy_values_to<T: Wire>(&mut self, symbol: &str, values: &[T]) -> Result<()> {
        self.copy_to(symbol, 0, &to_wire(values).data)
    }

    /// Send a typed slice to one DPU's `symbol` at an element offset.
    ///
    /// # Errors
    /// Symbol/bounds/alignment violations (the element offset must land on
    /// an 8-byte boundary).
    pub fn copy_values_to_dpu<T: Wire>(
        &mut self,
        dpu: DpuId,
        symbol: &str,
        elem_offset: usize,
        values: &[T],
    ) -> Result<()> {
        self.copy_to_dpu(dpu, symbol, elem_offset * T::BYTES, &to_wire(values).data)
    }

    /// Read `count` typed values from one DPU's `symbol`.
    ///
    /// # Errors
    /// Symbol/bounds violations.
    pub fn copy_values_from_dpu<T: Wire>(
        &self,
        dpu: DpuId,
        symbol: &str,
        elem_offset: usize,
        count: usize,
    ) -> Result<Vec<T>> {
        let bytes = crate::align::padded_len(count * T::BYTES);
        let mut buf = vec![0u8; bytes];
        self.copy_from_dpu(dpu, symbol, elem_offset * T::BYTES, &mut buf)?;
        Ok(from_wire(&buf, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_i16() {
        let v: Vec<i16> = vec![0, 1, -1, i16::MAX, i16::MIN, 12345];
        let w = to_wire(&v);
        assert_eq!(w.data.len() % 8, 0);
        assert_eq!(from_wire::<i16>(&w.data, v.len()), v);
    }

    #[test]
    fn wire_round_trip_u32_and_i32() {
        let v: Vec<u32> = vec![0, u32::MAX, 0xdead_beef];
        assert_eq!(from_wire::<u32>(&to_wire(&v).data, 3), v);
        let s: Vec<i32> = vec![i32::MIN, -7, 7, i32::MAX];
        assert_eq!(from_wire::<i32>(&to_wire(&s).data, 4), s);
    }

    #[test]
    fn typed_transfers_through_a_dpu() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("t", 64).unwrap();
        let v: Vec<i16> = (0..13).map(|i| i * 3 - 20).collect();
        set.copy_values_to_dpu(DpuId(1), "t", 0, &v).unwrap();
        let back: Vec<i16> = set.copy_values_from_dpu(DpuId(1), "t", 0, v.len()).unwrap();
        assert_eq!(back, v);
        // DPU 0 untouched.
        let zero: Vec<i16> = set.copy_values_from_dpu(DpuId(0), "t", 0, v.len()).unwrap();
        assert!(zero.iter().all(|&x| x == 0));
    }

    #[test]
    fn element_offsets_respect_alignment() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("t", 64).unwrap();
        // Offset 4 elements × 2 bytes = 8 bytes: aligned, OK.
        set.copy_values_to_dpu(DpuId(0), "t", 4, &[7i16, 8, 9, 10]).unwrap();
        let v: Vec<i16> = set.copy_values_from_dpu(DpuId(0), "t", 4, 4).unwrap();
        assert_eq!(v, vec![7, 8, 9, 10]);
        // Offset 1 element = 2 bytes: violates the rule.
        assert!(set.copy_values_to_dpu(DpuId(0), "t", 1, &[1i16, 2, 3, 4]).is_err());
    }
}
