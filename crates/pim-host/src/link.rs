//! Host-link integrity: seeded link faults, CRC retry policy, and the
//! transfer telemetry the serving layer's health scores consume.
//!
//! The DPU-side fault injector ([`dpu_sim::faults`]) models errors
//! *inside* a kernel. This module models the other half of the data
//! path: the host↔DIMM link that every `dpu_copy_to`/`dpu_copy_from`
//! crosses. Checked transfers ([`crate::DpuSet::set_link_policy`]) frame
//! each payload with a CRC-32C ([`crate::crc32c`]), verify on the
//! receiving side, and retry with exponential backoff when the frame
//! fails — so a flaky link degrades throughput instead of silently
//! corrupting weights or activations.
//!
//! Fault draws are pure functions of `(seed, transfer-seq, dpu,
//! attempt)` — the same splitmix64 discipline as the DPU injector — so a
//! chaos campaign replays bit-identically from its seed.

/// Seeded fault model for the host↔DPU link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultPlan {
    /// Seed for all link fault draws.
    pub seed: u64,
    /// Probability a transfer attempt lands with one flipped bit
    /// (caught by the CRC frame, repaired by retry).
    pub corrupt_prob: f64,
    /// Probability a transfer attempt aborts outright (the SDK's
    /// transient `DPU_ERR_DRIVER` class; retried with backoff).
    pub fail_prob: f64,
}

impl LinkFaultPlan {
    /// True when no draw can ever fire.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.corrupt_prob <= 0.0 && self.fail_prob <= 0.0
    }

    /// Does attempt `attempt` of transfer `seq` to `dpu` abort?
    #[must_use]
    pub fn fails(&self, seq: u64, dpu: u32, attempt: u32) -> bool {
        self.fail_prob > 0.0
            && unit(mix(self.seed, STREAM_FAIL, seq, dpu, attempt)) < self.fail_prob
    }

    /// Which bit of the landed payload (if any) this attempt corrupts:
    /// `Some((byte_index, bit))` scaled to `len` payload bytes.
    #[must_use]
    pub fn corrupts(&self, seq: u64, dpu: u32, attempt: u32, len: usize) -> Option<(usize, u8)> {
        if len == 0 || self.corrupt_prob <= 0.0 {
            return None;
        }
        if unit(mix(self.seed, STREAM_CORRUPT, seq, dpu, attempt)) < self.corrupt_prob {
            let site = mix(self.seed, STREAM_SITE, seq, dpu, attempt);
            Some(((site as usize) % len, ((site >> 32) % 8) as u8))
        } else {
            None
        }
    }
}

/// Retry policy for checked transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff charged before retry `k` (1-based) is `base << (k - 1)`
    /// cycles — exponential, accumulated in [`LinkStats`] (the host link
    /// has no DPU cycle counter to charge).
    pub backoff_base_cycles: u64,
    /// Link faults to inject, if any. `None` keeps transfers checked but
    /// fault-free (pure verify-on-read).
    pub faults: Option<LinkFaultPlan>,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        Self { max_retries: 3, backoff_base_cycles: 256, faults: None }
    }
}

impl LinkPolicy {
    /// The default retry envelope with a fault plan attached.
    #[must_use]
    pub fn with_faults(plan: LinkFaultPlan) -> Self {
        Self { faults: Some(plan), ..Self::default() }
    }

    /// Total backoff cycles accumulated after `retries` retries
    /// (geometric sum: `base * (2^retries - 1)`).
    #[must_use]
    pub fn cumulative_backoff(&self, retries: u32) -> u64 {
        if retries == 0 {
            return 0;
        }
        let doublings = 1u64.checked_shl(retries).map_or(u64::MAX, |d| d - 1);
        self.backoff_base_cycles.saturating_mul(doublings)
    }
}

/// Telemetry accumulated by checked transfers on a set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Logical transfers attempted (a broadcast counts once per DPU).
    pub transfers: u64,
    /// Payload bytes verified end-to-end.
    pub bytes_verified: u64,
    /// CRC frame mismatches observed (corruption caught and retried).
    pub crc_mismatches: u64,
    /// Transfer attempts that aborted outright.
    pub aborted_attempts: u64,
    /// Retries consumed across all transfers.
    pub retries: u64,
    /// Backoff cycles accumulated across all retries.
    pub backoff_cycles: u64,
    /// Transfers that exhausted their retries (surfaced as errors).
    pub exhausted: u64,
}

impl LinkStats {
    /// True when every transfer verified on its first attempt.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.crc_mismatches == 0 && self.aborted_attempts == 0 && self.exhausted == 0
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &LinkStats) {
        self.transfers += other.transfers;
        self.bytes_verified += other.bytes_verified;
        self.crc_mismatches += other.crc_mismatches;
        self.aborted_attempts += other.aborted_attempts;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.exhausted += other.exhausted;
    }
}

const STREAM_FAIL: u64 = 0x4C4E_4B46_0000_0001; // "LNKF"
const STREAM_CORRUPT: u64 = 0x4C4E_4B43_0000_0002; // "LNKC"
const STREAM_SITE: u64 = 0x4C4E_4B53_0000_0003; // "LNKS"

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(seed: u64, stream: u64, seq: u64, dpu: u32, attempt: u32) -> u64 {
    let a = splitmix64(seed ^ stream);
    let b = splitmix64(a ^ seq);
    splitmix64(b ^ (u64::from(dpu) << 32 | u64::from(attempt)))
}

#[allow(clippy::cast_precision_loss)]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_fires() {
        let plan = LinkFaultPlan { seed: 1, corrupt_prob: 0.0, fail_prob: 0.0 };
        assert!(plan.is_zero());
        for seq in 0..200 {
            assert!(!plan.fails(seq, 0, 0));
            assert!(plan.corrupts(seq, 0, 0, 4096).is_none());
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = LinkFaultPlan { seed: 11, corrupt_prob: 0.5, fail_prob: 0.5 };
        let b = LinkFaultPlan { seed: 12, ..a };
        let outcomes = |p: &LinkFaultPlan| {
            (0..64).map(|s| (p.fails(s, 3, 1), p.corrupts(s, 3, 1, 128))).collect::<Vec<_>>()
        };
        assert_eq!(outcomes(&a), outcomes(&a), "same seed replays");
        assert_ne!(outcomes(&a), outcomes(&b), "different seed diverges");
    }

    #[test]
    fn corruption_sites_stay_in_bounds() {
        let plan = LinkFaultPlan { seed: 7, corrupt_prob: 1.0, fail_prob: 0.0 };
        for len in [1usize, 8, 13, 4096] {
            for seq in 0..32 {
                let (byte, bit) = plan.corrupts(seq, 1, 0, len).expect("prob 1 fires");
                assert!(byte < len && bit < 8, "len {len} seq {seq}: {byte}:{bit}");
            }
        }
        assert!(plan.corrupts(0, 1, 0, 0).is_none(), "empty payload cannot corrupt");
    }

    #[test]
    fn backoff_is_geometric_and_saturates() {
        let p = LinkPolicy { backoff_base_cycles: 100, ..Default::default() };
        assert_eq!(p.cumulative_backoff(0), 0);
        assert_eq!(p.cumulative_backoff(1), 100);
        assert_eq!(p.cumulative_backoff(2), 300);
        assert_eq!(p.cumulative_backoff(3), 700);
        assert_eq!(p.cumulative_backoff(64), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = LinkStats { transfers: 2, crc_mismatches: 1, ..Default::default() };
        let b = LinkStats { transfers: 3, retries: 4, backoff_cycles: 700, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.transfers, 5);
        assert_eq!(a.crc_mismatches, 1);
        assert_eq!(a.retries, 4);
        assert_eq!(a.backoff_cycles, 700);
        assert!(!a.clean());
        assert!(LinkStats::default().clean());
    }
}
