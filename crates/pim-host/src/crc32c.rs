//! CRC-32C (Castagnoli) — the checksum framing every checked host↔DPU
//! transfer carries.
//!
//! The Castagnoli polynomial (0x1EDC6F41) is the standard choice for
//! storage and transport integrity (iSCSI, ext4, RDMA) because its
//! Hamming distance stays ≥ 4 out to multi-kilobyte payloads — it is
//! guaranteed to detect every 1-, 2- and 3-bit error in any transfer the
//! 2 MiB host link window can carry, which is exactly the error model the
//! link fault injector ([`crate::link::LinkFaultPlan`]) draws from.
//!
//! Software implementation: a single reflected 256-entry lookup table
//! built at compile time (no hardware CRC intrinsics — the simulator
//! forbids `unsafe` and stays portable). One table lookup + XOR per byte
//! is far below the cost of the memory traffic it guards.

/// The reversed Castagnoli polynomial (bit-reflected 0x1EDC6F41).
const POLY_REFLECTED: u32 = 0x82F6_3B78;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY_REFLECTED } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32C of `data` in one call.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32C state, for framing transfers that arrive in
/// chunks (scatter/gather batches checksum per-DPU buffers one by one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state (all-ones preset, per the CRC-32C spec).
    #[must_use]
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far (final XOR applied).
    /// The state is not consumed; more updates continue the stream.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic check value: CRC-32C("123456789") = 0xE3069283.
    #[test]
    fn check_string_matches_published_value() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    /// RFC 3720 appendix B.4 test vectors (iSCSI CRC examples).
    #[test]
    fn rfc3720_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA, "32 zero bytes");
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43, "32 0xFF bytes");
        let increasing: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&increasing), 0x46DD_794E, "ascending bytes");
    }

    #[test]
    fn empty_input_yields_zero() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn incremental_equals_oneshot_at_any_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 131 % 251) as u8).collect();
        let expect = crc32c(&data);
        for split in [0, 1, 7, 128, 255, data.len()] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    /// Single-, double- and triple-bit errors are always detected — the
    /// property the link integrity layer leans on.
    #[test]
    fn detects_all_small_bit_errors_in_a_sample_frame() {
        let frame: Vec<u8> = (0..64u32).map(|i| (i * 37 % 256) as u8).collect();
        let good = crc32c(&frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32c(&bad), good, "missed flip at {byte}:{bit}");
            }
        }
        // A sample of double flips (the full cross product is large).
        for (a, b) in [(0usize, 1usize), (0, 63), (17, 44), (31, 32)] {
            let mut bad = frame.clone();
            bad[a] ^= 0x10;
            bad[b] ^= 0x02;
            assert_ne!(crc32c(&bad), good, "missed double flip {a}/{b}");
        }
    }
}
