//! # pim-host — host runtime for the simulated UPMEM system
//!
//! The UPMEM SDK exposes the PIM DIMMs to the host as a memory-centric
//! accelerator: the host allocates *sets* of DPUs, copies data into named
//! MRAM symbols, launches a compiled DPU program on every DPU of the set,
//! and reads results back (paper §3.1–§3.2). This crate reproduces that
//! programming model over [`dpu_sim`]:
//!
//! * [`DpuSet`] — allocation and lifetime of a group of simulated DPUs;
//! * [`SymbolTable`] — named MRAM/WRAM regions, the moral equivalent of DPU
//!   program symbols;
//! * broadcast transfers ([`DpuSet::copy_to`], Eq. 3.1 of the paper) and
//!   scatter/gather batches ([`XferBatch`], Eqs. 3.2–3.3:
//!   `dpu_prepare_xfer` + `dpu_push_xfer`);
//! * the **8-byte rule** ([`align`]): every host↔MRAM transfer must be
//!   8-byte aligned and sized, so buffers are padded and the true length is
//!   communicated separately — exactly the workaround the paper describes;
//! * [`DpuSet::launch`] — run a Tier-1 [`dpu_sim::Program`] on all DPUs of
//!   the set (in parallel across host threads) and collect per-DPU results;
//! * [`exec`] — Tier-2 kernel accounting: native-Rust kernels tally
//!   [`dpu_sim::cost::OpCounts`] per tasklet and get a pipeline-law cycle
//!   estimate.

// `deny` rather than `forbid`: the persistent worker pool (`pool`) uses
// one audited unsafe construction (lifetime-erased scoped jobs) behind a
// module-level allow; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod crc32c;
pub mod error;
pub mod exec;
pub mod launch;
pub mod link;
pub mod observe;
mod pool;
pub mod resilient;
pub mod set;
pub mod snapshot;
pub mod symbol;
pub mod typed;
pub mod xfer;

pub use align::{pad_to_8, padded_len, PaddedBuf};
pub use crc32c::{crc32c, Crc32c};
pub use dpu_sim::cost::{CycleModel, KernelEstimate, OpCounts, OptLevel};
pub use error::{HostError, Result};
pub use exec::KernelRun;
pub use launch::{LaunchResult, StealStats};
pub use link::{LinkFaultPlan, LinkPolicy, LinkStats};
pub use observe::LaunchObservation;
pub use resilient::{DpuServeReport, LaunchReport, Redispatch, ResilientLaunchPolicy, ServeHealth};
pub use set::{DpuSet, TransferStats};
pub use snapshot::{RankSnapshot, SetSnapshot};
pub use symbol::{Symbol, SymbolTable};
pub use typed::{from_wire, to_wire, Wire};
pub use xfer::XferBatch;
