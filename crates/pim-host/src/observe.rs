//! Unified launch telemetry: one accumulator for everything the host
//! observes across a run of launches.
//!
//! [`LaunchResult::metrics`] and [`LaunchReport::metrics`] snapshot a
//! *single* launch. Real experiments launch many times (one wave per
//! batch of inputs), and the figures the paper quotes — makespan
//! distributions, per-DPU load balance, retry pressure — only mean
//! something aggregated over the whole run. [`LaunchObservation`] is that
//! aggregate: feed it every launch (plain or resilient) plus the
//! scheduler's [`StealStats`], and it maintains one [`MetricsRegistry`]
//! under the `obs.*` namespace, exportable as deterministic JSON
//! ([`LaunchObservation::to_json`]) or Prometheus text exposition
//! ([`LaunchObservation::prometheus`]).
//!
//! ## Key catalog
//!
//! Counters (monotone, deterministic for a fixed workload):
//! `obs.launches`, `obs.instructions`, `obs.dma.bytes`,
//! `obs.dma.transfers`, `obs.dma.cycles`, `obs.retries`,
//! `obs.quarantined`, `obs.redispatched`, `obs.faults_injected`,
//! `obs.faults.<kind>`, `obs.unserved`, `obs.healthy_after_repair`,
//! `obs.integrity.dma_corrected`, `obs.integrity.scrub_corrected`,
//! `obs.integrity.scrub_uncorrectable`.
//!
//! Histograms (quantile summaries, deterministic): `obs.launch.makespan_cycles`,
//! `obs.dpu.cycles`, `obs.dpu.instructions`, `obs.dpu.ipc`,
//! `obs.tasklet.occupancy`.
//!
//! Scheduling telemetry (host-thread timing dependent — **not**
//! deterministic, perf gates must ignore them): `obs.steal.launches`,
//! `obs.steal.claims` counters, `obs.steal.workers` gauge,
//! `obs.steal.claims_per_worker` histogram; and for the persistent worker
//! pool, `obs.pool.batches` counter, `obs.pool.workers` / `obs.pool.shards`
//! gauges, `obs.pool.queue_depth` / `obs.pool.occupancy` histograms.

use crate::error::Result;
use crate::launch::{launch_on, LaunchResult, StealStats};
use crate::resilient::LaunchReport;
use crate::set::DpuSet;
use dpu_sim::{ExecProgram, Program};
use pim_trace::{prometheus_text, MetricsRegistry};

/// Accumulated host-side telemetry over any number of launches.
///
/// The observation is mergeable ([`LaunchObservation::merge`]) so
/// per-thread or per-phase observations can be combined into one report,
/// exactly like the histograms underneath.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchObservation {
    registry: MetricsRegistry,
}

impl LaunchObservation {
    /// A fresh, empty observation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed plain launch.
    #[allow(clippy::cast_precision_loss)]
    pub fn record(&mut self, result: &LaunchResult) {
        self.registry.counter_add("obs.launches", 1);
        self.registry.observe("obs.launch.makespan_cycles", result.makespan_cycles() as f64);
        self.record_dpus(result);
    }

    /// Record one completed fault-tolerant launch: resilience counters
    /// plus, when every work item was served, the usual per-DPU figures.
    #[allow(clippy::cast_precision_loss)]
    pub fn record_report(&mut self, report: &LaunchReport) {
        self.registry.counter_add("obs.launches", 1);
        self.registry.observe("obs.launch.makespan_cycles", report.makespan_cycles() as f64);
        self.registry.counter_add("obs.retries", report.retries());
        self.registry.counter_add("obs.quarantined", report.quarantined.len() as u64);
        self.registry.counter_add("obs.redispatched", report.degraded.len() as u64);
        self.registry.counter_add("obs.faults_injected", report.faults_injected() as u64);
        for r in &report.per_dpu {
            for f in &r.faults {
                self.registry.counter_add(&format!("obs.faults.{}", f.kind.label()), 1);
            }
        }
        let unserved = report.per_dpu.iter().filter(|r| r.result.is_none()).count();
        self.registry.counter_add("obs.unserved", unserved as u64);
        self.registry.counter_add(
            "obs.healthy_after_repair",
            report.count_health(crate::resilient::ServeHealth::HealthyAfterRepair) as u64,
        );
        self.registry.counter_add(
            "obs.integrity.dma_corrected",
            report.per_dpu.iter().map(|r| r.dma_corrected).sum(),
        );
        self.registry.counter_add(
            "obs.integrity.scrub_corrected",
            report.per_dpu.iter().map(|r| r.scrub.corrected()).sum(),
        );
        self.registry.counter_add(
            "obs.integrity.scrub_uncorrectable",
            report.per_dpu.iter().map(|r| r.scrub.uncorrectable.len() as u64).sum(),
        );
        if let Some(result) = report.to_launch_result() {
            self.record_dpus(&result);
        }
    }

    /// Record how the persistent pool's work-stealing scheduler spread one
    /// launch over its workers. Scheduling-dependent: see the module docs.
    #[allow(clippy::cast_precision_loss)]
    pub fn record_steal(&mut self, stats: &StealStats) {
        self.registry.counter_add("obs.steal.launches", 1);
        self.registry.counter_add("obs.steal.claims", stats.total_claims());
        self.registry.gauge_set("obs.steal.workers", stats.workers() as f64);
        for &claimed in &stats.claims {
            self.registry.observe("obs.steal.claims_per_worker", claimed as f64);
        }
        // Pool shape: one batch per launch, its queue depth at enqueue,
        // and the fraction of workers that claimed at least one job.
        self.registry.counter_add("obs.pool.batches", 1);
        self.registry.gauge_set("obs.pool.workers", stats.workers() as f64);
        self.registry.gauge_set("obs.pool.shards", stats.shards as f64);
        self.registry.observe("obs.pool.queue_depth", stats.queued as f64);
        if stats.workers() > 0 {
            let occupied = stats.claims.iter().filter(|&&c| c > 0).count();
            self.registry.observe("obs.pool.occupancy", occupied as f64 / stats.workers() as f64);
        }
    }

    /// The per-DPU figures shared by plain and fully-served resilient
    /// launches (everything except the launch count and makespan, which
    /// differ between the two paths).
    #[allow(clippy::cast_precision_loss)]
    fn record_dpus(&mut self, result: &LaunchResult) {
        let m = &mut self.registry;
        m.counter_add("obs.instructions", result.total_instructions());
        m.counter_add("obs.dma.bytes", result.per_dpu.iter().map(|r| r.dma_bytes).sum());
        m.counter_add("obs.dma.transfers", result.per_dpu.iter().map(|r| r.dma_transfers).sum());
        m.counter_add("obs.dma.cycles", result.per_dpu.iter().map(|r| r.dma_cycles).sum());
        m.gauge_set("obs.dpus", result.per_dpu.len() as f64);
        m.gauge_set("obs.tasklets", result.tasklets as f64);
        for r in &result.per_dpu {
            m.observe("obs.dpu.cycles", r.cycles as f64);
            m.observe("obs.dpu.instructions", r.instructions as f64);
            if r.cycles > 0 {
                m.observe("obs.dpu.ipc", r.instructions as f64 / r.cycles as f64);
            }
            if r.instructions > 0 {
                for &issued in &r.issue_per_tasklet {
                    m.observe("obs.tasklet.occupancy", issued as f64 / r.instructions as f64);
                }
            }
        }
    }

    /// Fold another observation into this one (counters add, gauges take
    /// the other's latest value, histograms merge bucket-by-bucket).
    pub fn merge(&mut self, other: &Self) {
        self.registry.merge(&other.registry);
    }

    /// Launches recorded so far (plain plus resilient).
    #[must_use]
    pub fn launches(&self) -> u64 {
        self.registry.counter("obs.launches")
    }

    /// The accumulated registry, for ad-hoc queries and snapshotting.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Deterministic JSON snapshot (keys sorted, quantiles included) —
    /// the diffable artifact the perf-regression gate consumes.
    #[must_use]
    pub fn to_json(&self) -> pim_trace::Value {
        self.registry.to_json()
    }

    /// Prometheus text exposition (format 0.0.4) of the whole
    /// observation: counters, gauges, and histogram quantile summaries.
    #[must_use]
    pub fn prometheus(&self) -> String {
        prometheus_text(&self.registry)
    }
}

impl DpuSet {
    /// [`DpuSet::launch`] that also feeds `obs`: the launch result plus —
    /// when the set is large enough to engage the work-stealing
    /// scheduler — the steal distribution.
    ///
    /// # Errors
    /// As [`DpuSet::launch`].
    pub fn launch_observed(
        &mut self,
        program: &Program,
        tasklets: usize,
        obs: &mut LaunchObservation,
    ) -> Result<LaunchResult> {
        let exec = ExecProgram::compile(program)?;
        let engine = self.engine();
        let (system, _, sched) = self.launch_parts();
        let (result, _, steal) = launch_on(system, &exec, tasklets, false, engine, &sched)?;
        obs.record(&result);
        if let Some(stats) = steal {
            obs.record_steal(&stats);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::ResilientLaunchPolicy;
    use dpu_sim::asm::assemble;
    use dpu_sim::{FaultConfig, FaultPlan};

    fn work_program() -> Program {
        assemble(
            "movi r1, 40\n\
             loop:\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn observation_accumulates_across_launches() {
        let program = work_program();
        let mut set = DpuSet::allocate(6).unwrap();
        let mut obs = LaunchObservation::new();
        let r1 = set.launch_observed(&program, 2, &mut obs).unwrap();
        let r2 = set.launch_observed(&program, 4, &mut obs).unwrap();
        assert_eq!(obs.launches(), 2);
        let m = obs.metrics();
        assert_eq!(
            m.counter("obs.instructions"),
            r1.total_instructions() + r2.total_instructions()
        );
        let mk = m.histogram("obs.launch.makespan_cycles").unwrap();
        assert_eq!(mk.count(), 2);
        assert_eq!(mk.max(), Some(r1.makespan_cycles().max(r2.makespan_cycles()) as f64));
        assert_eq!(m.histogram("obs.dpu.cycles").unwrap().count(), 12);
        // 6 DPUs engage the stealing scheduler, so steal stats were fed.
        assert_eq!(m.counter("obs.steal.claims"), 12);
        assert_eq!(m.counter("obs.steal.launches"), 2);
    }

    #[test]
    fn resilient_reports_fold_into_the_same_observation() {
        let program = work_program();
        let mut set = DpuSet::allocate(4).unwrap();
        let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
        let policy =
            ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
        let report = set.launch_resilient(&program, 2, &policy).unwrap();
        assert!(report.fully_served());
        let mut obs = LaunchObservation::new();
        obs.record_report(&report);
        let m = obs.metrics();
        assert_eq!(m.counter("obs.launches"), 1);
        assert_eq!(m.counter("obs.retries"), report.retries());
        assert_eq!(m.counter("obs.quarantined"), 1);
        assert_eq!(m.counter("obs.redispatched"), 1);
        assert_eq!(m.counter("obs.faults_injected"), report.faults_injected() as u64);
        assert_eq!(m.counter("obs.faults.dpu_offline"), 1);
        assert_eq!(m.counter("obs.unserved"), 0);
        assert_eq!(
            m.histogram("obs.launch.makespan_cycles").unwrap().max(),
            Some(report.makespan_cycles() as f64)
        );
        // Fully served → the per-DPU distributions are present too.
        assert_eq!(m.histogram("obs.dpu.cycles").unwrap().count(), 4);
    }

    #[test]
    fn merged_observations_equal_one_accumulated_observation() {
        let program = work_program();
        let mut obs_a = LaunchObservation::new();
        let mut obs_b = LaunchObservation::new();
        let mut accumulated = LaunchObservation::new();
        let mut set = DpuSet::allocate(2).unwrap();
        let r1 = set.launch(&program, 3).unwrap();
        let r2 = set.launch(&program, 5).unwrap();
        obs_a.record(&r1);
        obs_b.record(&r2);
        accumulated.record(&r1);
        accumulated.record(&r2);
        obs_a.merge(&obs_b);
        // Counters and gauges must agree exactly; histogram sums may
        // differ by float-addition order, so compare them field-wise.
        let (m, a) = (obs_a.metrics(), accumulated.metrics());
        assert_eq!(m.counters().collect::<Vec<_>>(), a.counters().collect::<Vec<_>>());
        assert_eq!(m.gauges().collect::<Vec<_>>(), a.gauges().collect::<Vec<_>>());
        for ((name, h), (a_name, a_h)) in m.histograms().zip(a.histograms()) {
            assert_eq!(name, a_name);
            assert_eq!(h.count(), a_h.count(), "{name}");
            assert_eq!(h.min(), a_h.min(), "{name}");
            assert_eq!(h.max(), a_h.max(), "{name}");
            assert_eq!(h.p50(), a_h.p50(), "{name}");
            let tol = 1e-12 * a_h.sum().abs().max(1.0);
            assert!((h.sum() - a_h.sum()).abs() <= tol, "{name}");
        }
    }

    #[test]
    fn prometheus_exposition_covers_every_metric_family() {
        let program = work_program();
        let mut set = DpuSet::allocate(2).unwrap();
        let mut obs = LaunchObservation::new();
        set.launch_observed(&program, 2, &mut obs).unwrap();
        let text = obs.prometheus();
        assert!(text.contains("# TYPE obs_launches counter"), "missing counter:\n{text}");
        assert!(text.contains("# TYPE obs_dpus gauge"), "missing gauge:\n{text}");
        assert!(text.contains("# TYPE obs_dpu_cycles summary"), "missing summary:\n{text}");
        assert!(text.contains("obs_dpu_cycles{quantile=\"0.99\"}"), "missing quantile:\n{text}");
        let json = obs.to_json();
        assert!(json.get("histograms").is_some());
    }
}
