//! Launching Tier-1 programs on a DPU set.
//!
//! `dpu_launch` runs the loaded program on every DPU of a set; the DPUs
//! execute independently and the host synchronizes on completion (paper
//! §3.1: SIMD across DPUs, SIMT across tasklets). The simulator runs the
//! per-DPU interpreters on host threads (they share nothing), then reports
//! per-DPU statistics plus the set-level figures the paper quotes: the
//! *makespan* (slowest DPU — the batch completes "at the max time for one
//! DPU", §4.1.3) and a merged subroutine profile.

use crate::error::Result;
use crate::set::DpuSet;
use dpu_sim::{Profiler, Program, RunResult};

/// Results of one launch across a DPU set.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Per-DPU run results, in DPU order.
    pub per_dpu: Vec<RunResult>,
    /// Tasklets the program ran with.
    pub tasklets: usize,
}

impl LaunchResult {
    /// Cycles until the slowest DPU finished (the set's completion time —
    /// all DPUs run concurrently).
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Completion time in seconds for the given device parameters.
    #[must_use]
    pub fn makespan_seconds(&self, params: &dpu_sim::DpuParams) -> f64 {
        params.cycles_to_seconds(self.makespan_cycles())
    }

    /// Total instructions issued across all DPUs.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.instructions).sum()
    }

    /// Merged subroutine profile of all DPUs.
    #[must_use]
    pub fn merged_profile(&self) -> Profiler {
        let mut p = Profiler::new();
        for r in &self.per_dpu {
            p.merge(&r.profile);
        }
        p
    }
}

impl DpuSet {
    /// Run `program` with `tasklets` threads on every DPU of the set and
    /// wait for completion.
    ///
    /// DPUs are simulated in parallel on host threads when the set is large
    /// enough for the thread spawn to pay off.
    ///
    /// # Errors
    /// The first DPU fault encountered (in DPU order).
    pub fn launch(&mut self, program: &Program, tasklets: usize) -> Result<LaunchResult> {
        const PARALLEL_THRESHOLD: usize = 4;
        program.validate()?;
        let system = self.system_mut();
        let n = system.len();
        let mut results: Vec<Option<dpu_sim::Result<RunResult>>> = Vec::with_capacity(n);
        if n < PARALLEL_THRESHOLD {
            for (_, dpu) in system.iter_mut() {
                results.push(Some(dpu.run(program, tasklets)));
            }
        } else {
            let mut slots: Vec<Option<dpu_sim::Result<RunResult>>> = (0..n).map(|_| None).collect();
            let threads = std::thread::available_parallelism().map_or(4, usize::from).min(n);
            let mut dpus: Vec<&mut dpu_sim::Machine> =
                system.iter_mut().map(|(_, m)| m).collect();
            // Chunk DPUs across host threads with crossbeam's scoped spawn.
            let chunk = n.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (dpu_chunk, slot_chunk) in
                    dpus.chunks_mut(chunk).zip(slots.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        for (dpu, slot) in dpu_chunk.iter_mut().zip(slot_chunk.iter_mut()) {
                            *slot = Some(dpu.run(program, tasklets));
                        }
                    });
                }
            })
            .expect("simulation worker thread panicked");
            results = slots;
        }

        let mut per_dpu = Vec::with_capacity(n);
        for r in results {
            per_dpu.push(r.expect("every DPU slot filled")?);
        }
        Ok(LaunchResult { per_dpu, tasklets })
    }
}

impl DpuSet {
    /// Launch the program previously installed with [`DpuSet::load`] —
    /// the second half of the SDK's load-once/launch-many pattern.
    ///
    /// # Errors
    /// [`crate::HostError::Symbol`] when nothing is loaded; otherwise as
    /// [`DpuSet::launch`].
    pub fn launch_loaded(&mut self, tasklets: usize) -> Result<LaunchResult> {
        let program = self
            .loaded_program()
            .cloned()
            .ok_or(crate::HostError::Symbol {
                name: "<program>".to_owned(),
                problem: "no program loaded; call DpuSet::load first",
            })?;
        self.launch(&program, tasklets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use dpu_sim::DpuId;

    /// Program: read scalar at MRAM symbol offset 0 (via DMA), double it,
    /// write it back.
    fn double_program() -> Program {
        assemble(
            "movi r1, 0      ; wram addr\n\
             movi r2, 0      ; mram addr\n\
             movi r3, 8      ; len\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn launch_runs_all_dpus() {
        let mut set = DpuSet::allocate(8).unwrap();
        set.define_symbol("x", 8).unwrap();
        for i in 0..8u32 {
            set.copy_to_dpu(DpuId(i), "x", 0, &u64::from(i + 1).to_le_bytes())
                .unwrap();
        }
        let res = set.launch(&double_program(), 1).unwrap();
        assert_eq!(res.per_dpu.len(), 8);
        for i in 0..8u32 {
            assert_eq!(
                set.copy_scalar_from(DpuId(i), "x").unwrap(),
                u64::from(i + 1) * 2
            );
        }
        assert!(res.makespan_cycles() > 0);
        assert_eq!(res.makespan_cycles(), res.per_dpu[0].cycles); // identical work
    }

    #[test]
    fn small_sets_use_serial_path() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 21).unwrap();
        set.launch(&double_program(), 1).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), 42);
        assert_eq!(set.copy_scalar_from(DpuId(1), "x").unwrap(), 42);
    }

    #[test]
    fn launch_propagates_dpu_faults() {
        let mut set = DpuSet::allocate(2).unwrap();
        let bad = assemble("jmp 99\n").unwrap();
        assert!(set.launch(&bad, 1).is_err());
    }

    #[test]
    fn load_then_launch_many_times() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        set.load(&double_program()).unwrap();
        for expected in [2u64, 4, 8] {
            set.launch_loaded(1).unwrap();
            assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), expected);
        }
    }

    #[test]
    fn launch_loaded_without_load_errors() {
        let mut set = DpuSet::allocate(1).unwrap();
        let err = set.launch_loaded(1).unwrap_err();
        assert!(err.to_string().contains("no program loaded"));
    }

    #[test]
    fn load_rejects_bad_programs_eagerly() {
        let mut set = DpuSet::allocate(1).unwrap();
        let bad = Program::new(vec![dpu_sim::Instr::Jump { target: 9 }]);
        assert!(set.load(&bad).is_err());
        let huge = Program::new(vec![dpu_sim::Instr::Nop; 4000]);
        assert!(set.load(&huge).is_err());
    }

    #[test]
    fn merged_profile_aggregates_dpus() {
        let mut set = DpuSet::allocate(4).unwrap();
        let p = assemble("movi r1, 6\nmovi r2, 7\ncall __mulsi3 r3, r1, r2\nhalt\n").unwrap();
        let res = set.launch(&p, 1).unwrap();
        let prof = res.merged_profile();
        assert_eq!(prof.occurrences(dpu_sim::Subroutine::Mulsi3), 4);
    }
}
