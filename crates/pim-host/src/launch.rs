//! Launching Tier-1 programs on a DPU set.
//!
//! `dpu_launch` runs the loaded program on every DPU of a set; the DPUs
//! execute independently and the host synchronizes on completion (paper
//! §3.1: SIMD across DPUs, SIMT across tasklets). The simulator runs the
//! per-DPU interpreters on host threads (they share nothing), then reports
//! per-DPU statistics plus the set-level figures the paper quotes: the
//! *makespan* (slowest DPU — the batch completes "at the max time for one
//! DPU", §4.1.3) and a merged subroutine profile.

use crate::error::{HostError, Result};
use crate::pool::WorkerPool;
use crate::set::DpuSet;
use dpu_sim::{Engine, ExecProgram, PimSystem, Profiler, Program, RunResult};
use pim_trace::{MetricsRegistry, TraceBuffer};
use std::sync::Mutex;

/// Results of one launch across a DPU set.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Per-DPU run results, in DPU order.
    pub per_dpu: Vec<RunResult>,
    /// Tasklets the program ran with.
    pub tasklets: usize,
}

impl LaunchResult {
    /// Cycles until the slowest DPU finished (the set's completion time —
    /// all DPUs run concurrently).
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Completion time in seconds for the given device parameters.
    #[must_use]
    pub fn makespan_seconds(&self, params: &dpu_sim::DpuParams) -> f64 {
        params.cycles_to_seconds(self.makespan_cycles())
    }

    /// Total instructions issued across all DPUs.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.instructions).sum()
    }

    /// Merged subroutine profile of all DPUs.
    #[must_use]
    pub fn merged_profile(&self) -> Profiler {
        let mut p = Profiler::new();
        for r in &self.per_dpu {
            p.merge(&r.profile);
        }
        p
    }

    /// Snapshot this launch into a [`MetricsRegistry`]: set-level counters
    /// (instructions, DMA traffic), gauges (makespan, IPC, shape) and
    /// per-DPU/per-tasklet distributions (cycles, instructions, tasklet
    /// occupancy — the load-balance picture behind Fig. 4.7(a)).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("launch.instructions", self.total_instructions());
        m.counter_add("launch.dma.bytes", self.per_dpu.iter().map(|r| r.dma_bytes).sum());
        m.counter_add("launch.dma.transfers", self.per_dpu.iter().map(|r| r.dma_transfers).sum());
        m.counter_add("launch.dma.cycles", self.per_dpu.iter().map(|r| r.dma_cycles).sum());
        m.gauge_set("launch.dpus", self.per_dpu.len() as f64);
        m.gauge_set("launch.tasklets", self.tasklets as f64);
        let makespan = self.makespan_cycles();
        m.gauge_set("launch.makespan_cycles", makespan as f64);
        if makespan > 0 {
            m.gauge_set("launch.ipc", self.total_instructions() as f64 / makespan as f64);
        }
        for r in &self.per_dpu {
            m.observe("dpu.cycles", r.cycles as f64);
            m.observe("dpu.instructions", r.instructions as f64);
            if r.cycles > 0 {
                m.observe("dpu.ipc", r.instructions as f64 / r.cycles as f64);
            }
            // Occupancy: each tasklet's share of the DPU's issue slots.
            // Perfect balance over T tasklets reads as a flat 1/T.
            if r.instructions > 0 {
                for &issued in &r.issue_per_tasklet {
                    m.observe("tasklet.occupancy", issued as f64 / r.instructions as f64);
                }
            }
        }
        m
    }
}

impl DpuSet {
    /// Run `program` with `tasklets` threads on every DPU of the set and
    /// wait for completion.
    ///
    /// DPUs are simulated in parallel on host threads when the set is large
    /// enough for the thread spawn to pay off.
    ///
    /// # Errors
    /// The first DPU fault encountered (in DPU order).
    pub fn launch(&mut self, program: &Program, tasklets: usize) -> Result<LaunchResult> {
        self.launch_impl(program, tasklets, false).map(|(res, _)| res)
    }

    /// Like [`DpuSet::launch`], but additionally collects one
    /// [`TraceBuffer`] of cycle-stamped simulator events per DPU (buffer
    /// `i` belongs to DPU `i`): kernel launch/complete, every MRAM DMA,
    /// subroutine entries and barrier arrivals. Tracing is observational —
    /// the returned [`LaunchResult`] is identical to an untraced launch.
    ///
    /// # Errors
    /// The first DPU fault encountered (in DPU order).
    pub fn launch_traced(
        &mut self,
        program: &Program,
        tasklets: usize,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        self.launch_impl(program, tasklets, true)
    }

    fn launch_impl(
        &mut self,
        program: &Program,
        tasklets: usize,
        trace: bool,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        let exec = ExecProgram::compile(program)?;
        let engine = self.engine();
        let (system, _, sched) = self.launch_parts();
        launch_on(system, &exec, tasklets, trace, engine, &sched).map(|(res, bufs, _)| (res, bufs))
    }
}

impl DpuSet {
    /// Launch the program previously installed with [`DpuSet::load`] —
    /// the second half of the SDK's load-once/launch-many pattern. Runs
    /// the stored execution form (decoded stream plus its memoized
    /// superblock decomposition) directly: no re-validation, no clone,
    /// no re-analysis.
    ///
    /// # Errors
    /// [`crate::HostError::Symbol`] when nothing is loaded; otherwise as
    /// [`DpuSet::launch`].
    pub fn launch_loaded(&mut self, tasklets: usize) -> Result<LaunchResult> {
        let engine = self.engine();
        let (system, loaded, sched) = self.launch_parts();
        let exec = loaded.ok_or(HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        launch_on(system, exec, tasklets, false, engine, &sched).map(|(res, _, _)| res)
    }

    /// [`DpuSet::launch_loaded`] with per-DPU tracing, as
    /// [`DpuSet::launch_traced`].
    ///
    /// # Errors
    /// [`crate::HostError::Symbol`] when nothing is loaded; otherwise as
    /// [`DpuSet::launch`].
    pub fn launch_loaded_traced(
        &mut self,
        tasklets: usize,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        let engine = self.engine();
        let (system, loaded, sched) = self.launch_parts();
        let exec = loaded.ok_or(HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        launch_on(system, exec, tasklets, true, engine, &sched).map(|(res, bufs, _)| (res, bufs))
    }
}

/// Below the threshold a launch runs on the calling thread: handing the
/// batch to the pool costs more than it saves on tiny sets. The effective
/// value is a per-set tunable ([`DpuSet::set_parallel_threshold`]) with a
/// process-wide environment override ([`DpuSet::PARALLEL_THRESHOLD_ENV`]),
/// mirroring [`Engine::effective`]; this constant is the fallback, picked
/// by the sweep recorded in `docs/PERFORMANCE.md`.
pub(crate) const DEFAULT_PARALLEL_THRESHOLD: usize = 4;

/// DPUs per rank — the natural shard size at rank scale (UPMEM allocates
/// whole ranks, and one rank is 64 DPUs on the evaluated server).
pub(crate) const RANK_DPUS: usize =
    dpu_sim::params::DPUS_PER_DIMM / dpu_sim::params::RANKS_PER_DIMM;

/// Shard size for an `n`-job batch: whole ranks once the set spans at
/// least two of them (so workers stay rank-affine), else an even split
/// over the pool's workers.
fn rank_shard_size(n: usize, workers: usize) -> usize {
    if n >= 2 * RANK_DPUS {
        RANK_DPUS
    } else {
        n.div_ceil(workers.max(1)).max(1)
    }
}

/// Scheduling context for one launch: the owning set's persistent worker
/// pool (when it has one) and its parallel threshold.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sched<'a> {
    /// The set's persistent pool; `None` forces the sequential path.
    pub pool: Option<&'a WorkerPool>,
    /// Minimum set size that engages the pool.
    pub threshold: usize,
}

impl Sched<'_> {
    /// The pool `n` jobs should run on, or `None` for the sequential path.
    pub fn pool_for(&self, n: usize) -> Option<&WorkerPool> {
        if n >= self.threshold {
            self.pool
        } else {
            None
        }
    }
}

/// How the work-stealing scheduler distributed one launch's DPU jobs
/// over its worker threads.
///
/// Purely observational scheduling telemetry: which worker simulated
/// which DPU depends on host thread timing, so these numbers vary from
/// run to run (unlike every simulated figure) and are excluded from the
/// deterministic launch results. [`crate::LaunchObservation`] aggregates
/// them under `obs.steal.*`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Jobs claimed by each worker thread (index = worker).
    pub claims: Vec<u64>,
    /// Shards the batch was split into (one per rank at rank scale).
    pub shards: usize,
    /// Jobs handed to the pool (= DPUs simulated) — the launch's queue
    /// depth at enqueue time.
    pub queued: u64,
}

impl StealStats {
    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.claims.len()
    }

    /// Total jobs claimed (= DPUs simulated).
    #[must_use]
    pub fn total_claims(&self) -> u64 {
        self.claims.iter().sum()
    }
}

/// What happened to one DPU's simulation.
enum DpuOutcome {
    /// The interpreter ran to a verdict (completion or a DPU fault).
    Done(dpu_sim::Result<RunResult>),
    /// The worker thread panicked while simulating this DPU.
    Panicked(String),
}

/// Run the decoded program on every DPU of `system` and collect per-DPU
/// results plus trace buffers, both in DPU order.
///
/// `engine` pins the execution tier for every DPU; `None` resolves the
/// ambient [`Engine::effective`] selection **once** here, so all DPUs of
/// one launch run the same tier even if the environment changes mid-launch.
pub(crate) fn launch_on(
    system: &mut PimSystem,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Option<Engine>,
    sched: &Sched<'_>,
) -> Result<(LaunchResult, Vec<TraceBuffer>, Option<StealStats>)> {
    let engine = engine.unwrap_or_else(Engine::effective);
    let n = system.len();
    let mut buffers: Vec<TraceBuffer> = vec![TraceBuffer::new(); n];
    let (outcomes, steal) = match sched.pool_for(n) {
        None => (run_sequential(system, exec, tasklets, trace, engine, &mut buffers), None),
        Some(pool) => {
            let (outcomes, stats) =
                run_stealing(pool, system, exec, tasklets, trace, engine, &mut buffers);
            (outcomes, Some(stats))
        }
    };
    let mut per_dpu = Vec::with_capacity(n);
    for outcome in outcomes {
        match outcome {
            DpuOutcome::Done(r) => per_dpu.push(r?),
            DpuOutcome::Panicked(detail) => return Err(HostError::WorkerPanic { detail }),
        }
    }
    Ok((LaunchResult { per_dpu, tasklets }, buffers, steal))
}

fn run_one(
    dpu: &mut dpu_sim::Machine,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Engine,
    buf: &mut TraceBuffer,
) -> dpu_sim::Result<RunResult> {
    if trace {
        dpu.run_exec_traced_engine_with_budget(
            exec,
            tasklets,
            dpu_sim::machine::DEFAULT_CYCLE_BUDGET,
            buf,
            engine,
        )
    } else {
        dpu.run_exec_engine(exec, tasklets, engine)
    }
}

/// Calling-thread launch: DPUs run one after another, panics unwind
/// straight to the caller.
fn run_sequential(
    system: &mut PimSystem,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Engine,
    buffers: &mut [TraceBuffer],
) -> Vec<DpuOutcome> {
    system
        .iter_mut()
        .zip(buffers.iter_mut())
        .map(|((_, dpu), buf)| DpuOutcome::Done(run_one(dpu, exec, tasklets, trace, engine, buf)))
        .collect()
}

/// Work-stealing launch: pool workers claim DPUs one at a time off their
/// home shard's cursor (stealing from other shards once it drains), so a
/// few expensive DPUs cannot idle the rest of the pool the way static
/// chunking did.
fn run_stealing(
    pool: &WorkerPool,
    system: &mut PimSystem,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Engine,
    buffers: &mut [TraceBuffer],
) -> (Vec<DpuOutcome>, StealStats) {
    run_stealing_with(pool, system, buffers, |_, dpu, buf| {
        run_one(dpu, exec, tasklets, trace, engine, buf)
    })
}

/// The scheduler core, generic over the per-DPU job so tests can inject
/// faulting or panicking work. `job` receives the DPU index; results and
/// buffers come back in DPU order regardless of which worker ran what.
fn run_stealing_with<F>(
    pool: &WorkerPool,
    system: &mut PimSystem,
    buffers: &mut [TraceBuffer],
    job: F,
) -> (Vec<DpuOutcome>, StealStats)
where
    F: Fn(usize, &mut dpu_sim::Machine, &mut TraceBuffer) -> dpu_sim::Result<RunResult> + Sync,
{
    // Catch panics per DPU (while not holding any shared state) so one
    // faulty simulation surfaces as a `HostError` instead of unwinding
    // out of the pool batch.
    steal_jobs(pool, system, buffers, |i, dpu, buf| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i, dpu, buf))) {
            Ok(res) => DpuOutcome::Done(res),
            Err(payload) => DpuOutcome::Panicked(panic_detail(payload.as_ref())),
        }
    })
}

/// The work-stealing loop itself, generic over the per-DPU outcome type so
/// the resilient launch path can reuse it with richer per-DPU reports.
/// Jobs must not unwind (wrap them in `catch_unwind` when they might).
/// Alongside the per-DPU outcomes it reports how the jobs distributed
/// over the pool's workers.
pub(crate) fn steal_jobs<R, F>(
    pool: &WorkerPool,
    system: &mut PimSystem,
    buffers: &mut [TraceBuffer],
    job: F,
) -> (Vec<R>, StealStats)
where
    R: Send,
    F: Fn(usize, &mut dpu_sim::Machine, &mut TraceBuffer) -> R + Sync,
{
    struct Slot<'a, R> {
        dpu: &'a mut dpu_sim::Machine,
        buf: &'a mut TraceBuffer,
        outcome: Option<R>,
    }

    let n = system.len();
    let slots: Vec<Mutex<Slot<R>>> = system
        .iter_mut()
        .zip(buffers.iter_mut())
        .map(|((_, dpu), buf)| Mutex::new(Slot { dpu, buf, outcome: None }))
        .collect();
    let runner = |i: usize, _w: usize| {
        // Each index is claimed exactly once, so the lock is always
        // uncontended; it exists to hand the `&mut` state to whichever
        // worker drew the index.
        let mut slot = slots[i].lock().expect("job mutex poisoned");
        let Slot { dpu, buf, outcome } = &mut *slot;
        *outcome = Some(job(i, dpu, buf));
    };
    let stats = pool.run_batch(n, rank_shard_size(n, pool.workers()), &runner);
    let outcomes = slots
        .into_iter()
        .map(|m| {
            let slot = m.into_inner().expect("job mutex poisoned");
            slot.outcome.expect("every DPU index was claimed by a worker")
        })
        .collect();
    (outcomes, StealStats { claims: stats.claims, shards: stats.shards, queued: n as u64 })
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload.downcast_ref::<&str>().map(|s| (*s).to_owned()).unwrap_or_else(|| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "panic payload was not a string".to_owned())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use dpu_sim::DpuId;

    /// Program: read scalar at MRAM symbol offset 0 (via DMA), double it,
    /// write it back.
    fn double_program() -> Program {
        assemble(
            "movi r1, 0      ; wram addr\n\
             movi r2, 0      ; mram addr\n\
             movi r3, 8      ; len\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn launch_runs_all_dpus() {
        let mut set = DpuSet::allocate(8).unwrap();
        set.define_symbol("x", 8).unwrap();
        for i in 0..8u32 {
            set.copy_to_dpu(DpuId(i), "x", 0, &u64::from(i + 1).to_le_bytes()).unwrap();
        }
        let res = set.launch(&double_program(), 1).unwrap();
        assert_eq!(res.per_dpu.len(), 8);
        for i in 0..8u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
        assert!(res.makespan_cycles() > 0);
        assert_eq!(res.makespan_cycles(), res.per_dpu[0].cycles); // identical work
    }

    #[test]
    fn small_sets_use_serial_path() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 21).unwrap();
        set.launch(&double_program(), 1).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), 42);
        assert_eq!(set.copy_scalar_from(DpuId(1), "x").unwrap(), 42);
    }

    #[test]
    fn launch_propagates_dpu_faults() {
        let mut set = DpuSet::allocate(2).unwrap();
        let bad = assemble("jmp 99\n").unwrap();
        assert!(set.launch(&bad, 1).is_err());
    }

    #[test]
    fn load_then_launch_many_times() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        set.load(&double_program()).unwrap();
        for expected in [2u64, 4, 8] {
            set.launch_loaded(1).unwrap();
            assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), expected);
        }
    }

    #[test]
    fn launch_loaded_without_load_errors() {
        let mut set = DpuSet::allocate(1).unwrap();
        let err = set.launch_loaded(1).unwrap_err();
        assert!(err.to_string().contains("no program loaded"));
    }

    #[test]
    fn load_rejects_bad_programs_eagerly() {
        let mut set = DpuSet::allocate(1).unwrap();
        let bad = Program::new(vec![dpu_sim::Instr::Jump { target: 9 }]);
        assert!(set.load(&bad).is_err());
        let huge = Program::new(vec![dpu_sim::Instr::Nop; 4000]);
        assert!(set.load(&huge).is_err());
    }

    #[test]
    fn merged_profile_aggregates_dpus() {
        let mut set = DpuSet::allocate(4).unwrap();
        let p = assemble("movi r1, 6\nmovi r2, 7\ncall __mulsi3 r3, r1, r2\nhalt\n").unwrap();
        let res = set.launch(&p, 1).unwrap();
        let prof = res.merged_profile();
        assert_eq!(prof.occurrences(dpu_sim::Subroutine::Mulsi3), 4);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use pim_trace::TraceEvent;

    /// DMA in, a multiply subroutine, a barrier, DMA out — every simulator
    /// event kind fires.
    fn traced_program() -> Program {
        assemble(
            "me r1\n\
             lsli r2, r1, 8\n\
             movi r3, 64\n\
             mram.read r2, r2, r3\n\
             call __mulsi3 r4, r3, r3\n\
             barrier\n\
             mram.write r2, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn traced_launch_matches_untraced_launch_exactly() {
        // Both the serial (<4 DPUs) and parallel (>=4 DPUs) paths.
        for dpus in [2usize, 6] {
            let mut plain_set = DpuSet::allocate(dpus).unwrap();
            let plain = plain_set.launch(&traced_program(), 3).unwrap();
            let mut traced_set = DpuSet::allocate(dpus).unwrap();
            let (traced, bufs) = traced_set.launch_traced(&traced_program(), 3).unwrap();
            assert_eq!(plain, traced, "{dpus} DPUs");
            assert_eq!(bufs.len(), dpus);
            assert!(bufs.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn untraced_launch_collects_no_events() {
        let mut set = DpuSet::allocate(2).unwrap();
        let (res, bufs) = set.launch_impl(&traced_program(), 2, false).unwrap();
        assert_eq!(res.per_dpu.len(), 2);
        assert!(bufs.iter().all(pim_trace::TraceBuffer::is_empty));
    }

    #[test]
    fn per_dpu_buffers_cover_all_dpus_in_order() {
        let mut set = DpuSet::allocate(5).unwrap();
        let (res, bufs) = set.launch_traced(&traced_program(), 2).unwrap();
        assert_eq!(bufs.len(), res.per_dpu.len());
        for (r, b) in res.per_dpu.iter().zip(&bufs) {
            // Identical work on every DPU: each buffer's end stamp is its
            // own DPU's cycle count.
            assert_eq!(b.max_end_cycle(), r.cycles);
            assert_eq!(b.dma_bytes(), r.dma_bytes);
            assert_eq!(b.count_matching(|e| matches!(e, TraceEvent::KernelLaunch { .. })), 1);
        }
    }

    #[test]
    fn metrics_snapshot_reflects_launch() {
        let mut set = DpuSet::allocate(4).unwrap();
        let res = set.launch(&traced_program(), 2).unwrap();
        let m = res.metrics();
        assert_eq!(m.counter("launch.instructions"), res.total_instructions());
        assert_eq!(
            m.counter("launch.dma.bytes"),
            res.per_dpu.iter().map(|r| r.dma_bytes).sum::<u64>()
        );
        assert_eq!(m.gauge("launch.dpus"), Some(4.0));
        assert_eq!(m.gauge("launch.makespan_cycles"), Some(res.makespan_cycles() as f64));
        let occ = m.histogram("tasklet.occupancy").expect("observed");
        assert_eq!(occ.count(), 4 * 2); // 4 DPUs x 2 tasklets
                                        // Shares within one DPU sum to 1; the mean over all is 1/tasklets.
        assert!((occ.mean().unwrap() - 0.5).abs() < 1e-9);
        let ipc = m.gauge("launch.ipc").expect("set");
        assert!(ipc > 0.0);
    }

    proptest::proptest! {
        /// The satellite invariant: the set's makespan equals the largest
        /// end stamp over every per-DPU trace span, at any set shape.
        #[test]
        fn makespan_equals_max_trace_end_cycle(
            dpus in 1usize..7,
            tasklets in 1usize..5,
        ) {
            let mut set = DpuSet::allocate(dpus).unwrap();
            let (res, bufs) = set.launch_traced(&traced_program(), tasklets).unwrap();
            let max_end = bufs.iter().map(pim_trace::TraceBuffer::max_end_cycle).max().unwrap();
            proptest::prop_assert_eq!(res.makespan_cycles(), max_end);
        }
    }
}

#[cfg(test)]
mod scheduler_equivalence_tests {
    use super::*;
    use dpu_sim::isa::{Cond, Width};
    use dpu_sim::{Instr as I, Reg};
    use proptest::prelude::*;

    /// A program with a random ALU/trace prefix followed by a countdown
    /// loop whose trip count comes from MRAM — so per-DPU cost is as skewed
    /// as the seeded counts, the worst case for scheduling order bugs.
    fn build_program(ops: &[(u8, i32)], barrier: bool) -> Program {
        let mut v = vec![
            I::Movi { rd: Reg(1), imm: 0 },
            I::Movi { rd: Reg(2), imm: 0 },
            I::Movi { rd: Reg(3), imm: 8 },
            I::MramRead { wram: Reg(1), mram: Reg(2), len: Reg(3) },
            I::Load { width: Width::W, rd: Reg(4), ra: Reg(1), off: 0 },
        ];
        for &(sel, imm) in ops {
            v.push(match sel % 5 {
                0 => I::Addi { rd: Reg(6), ra: Reg(6), imm },
                1 => I::Xor { rd: Reg(6), ra: Reg(6), rb: Reg(4) },
                2 => I::Lsli { rd: Reg(6), ra: Reg(6), sh: (imm as u8) & 7 },
                3 => I::Trace { ra: Reg(6) },
                _ => I::Mul8 { rd: Reg(6), ra: Reg(6), rb: Reg(4) },
            });
        }
        let loop_top = v.len() as u32;
        v.push(I::Addi { rd: Reg(4), ra: Reg(4), imm: -1 });
        v.push(I::Branch { cond: Cond::Ne, ra: Reg(4), rb: Reg(0), target: loop_top });
        if barrier {
            v.push(I::Barrier);
        }
        v.push(I::Trace { ra: Reg(6) });
        v.push(I::Halt);
        Program::new(v)
    }

    /// A set whose DPU `i` holds `counts[i]` at MRAM offset 0.
    fn skewed_set(dpus: usize, counts: &[u32]) -> DpuSet {
        let mut set = DpuSet::allocate(dpus).unwrap();
        for (i, (_, dpu)) in set.system_mut().iter_mut().enumerate() {
            dpu.mram.write(0, &u64::from(counts[i]).to_le_bytes()).unwrap();
        }
        set
    }

    fn unwrap_all(outcomes: Vec<DpuOutcome>) -> Vec<RunResult> {
        outcomes
            .into_iter()
            .map(|o| match o {
                DpuOutcome::Done(r) => r.expect("program halts"),
                DpuOutcome::Panicked(d) => panic!("worker panicked: {d}"),
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The satellite invariant: the work-stealing scheduler is
        /// observationally identical to the sequential path — per-DPU
        /// results and trace buffers, in DPU order — for random programs,
        /// skews and set sizes on both sides of the parallel threshold.
        #[test]
        fn work_stealing_matches_sequential_exactly(
            dpus in 1usize..9,
            tasklets in 1usize..4,
            ops in proptest::collection::vec((0u8..5, 1i32..64), 0..8),
            counts in proptest::collection::vec(1u32..60, 9),
            barrier_sel in 0u8..2,
        ) {
            let program = build_program(&ops, barrier_sel == 1);
            let exec = ExecProgram::compile(&program).unwrap();

            let mut seq_set = skewed_set(dpus, &counts);
            let mut seq_bufs = vec![TraceBuffer::new(); dpus];
            let seq =
                run_sequential(
                    seq_set.system_mut(),
                    &exec,
                    tasklets,
                    true,
                    Engine::default(),
                    &mut seq_bufs,
                );

            let pool = crate::pool::WorkerPool::for_dpus(dpus);
            let mut steal_set = skewed_set(dpus, &counts);
            let mut steal_bufs = vec![TraceBuffer::new(); dpus];
            let (steal, stats) =
                run_stealing(
                    &pool,
                    steal_set.system_mut(),
                    &exec,
                    tasklets,
                    true,
                    Engine::default(),
                    &mut steal_bufs,
                );

            prop_assert_eq!(seq_bufs, steal_bufs);
            prop_assert_eq!(unwrap_all(seq), unwrap_all(steal));
            prop_assert_eq!(stats.total_claims(), dpus as u64);
            prop_assert_eq!(stats.queued, dpus as u64);
            prop_assert!(stats.shards >= 1);
        }
    }

    #[test]
    fn worker_panic_is_captured_per_dpu_with_its_message() {
        let mut set = DpuSet::allocate(6).unwrap();
        let pool = crate::pool::WorkerPool::for_dpus(6);
        let mut bufs = vec![TraceBuffer::new(); 6];
        let exec = ExecProgram::compile(&Program::new(vec![I::Halt])).unwrap();
        let (outcomes, stats) =
            run_stealing_with(&pool, set.system_mut(), &mut bufs, |i, dpu, buf| {
                if i == 3 {
                    panic!("injected failure on DPU 3");
                }
                run_one(dpu, &exec, 1, false, Engine::default(), buf)
            });
        assert_eq!(outcomes.len(), 6);
        assert_eq!(stats.total_claims(), 6);
        assert!(stats.workers() >= 1);
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                DpuOutcome::Done(r) => {
                    assert_ne!(i, 3);
                    assert!(r.is_ok());
                }
                DpuOutcome::Panicked(detail) => {
                    assert_eq!(i, 3);
                    assert!(detail.contains("injected failure"), "got {detail}");
                }
            }
        }
        let err = HostError::WorkerPanic { detail: "injected failure on DPU 3".to_owned() };
        assert!(err.to_string().contains("panicked"));
    }

    /// Regression: a worker panic mid-launch must not poison per-machine
    /// state for subsequent launches. The panicked wave here leaves every
    /// machine with an *armed* perf counter; before `run_code` reset the
    /// counter at run start, the next launch's `perf.read` would observe
    /// the stale armed epoch instead of its own.
    #[test]
    fn relaunch_after_worker_panic_reads_clean_state() {
        let mut set = DpuSet::allocate(6).unwrap();
        let pool = crate::pool::WorkerPool::for_dpus(6);
        let arming =
            ExecProgram::compile(&dpu_sim::asm::assemble("perf.config\nhalt\n").unwrap()).unwrap();
        let mut bufs = vec![TraceBuffer::new(); 6];
        let (outcomes, _) = run_stealing_with(&pool, set.system_mut(), &mut bufs, |i, dpu, buf| {
            let r = run_one(dpu, &arming, 1, false, Engine::default(), buf);
            if i == 2 {
                panic!("injected mid-launch failure");
            }
            r
        });
        assert!(outcomes
            .iter()
            .enumerate()
            .any(|(i, o)| i == 2 && matches!(o, DpuOutcome::Panicked(_))));

        // Relaunch on the same (partly poisoned) set: every DPU's perf
        // read must start from zero, including the one whose worker died.
        let reader = dpu_sim::asm::assemble(
            "movi r1, 200\n\
             loop:\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             perf.read r4\n\
             halt\n",
        )
        .unwrap();
        set.load(&reader).unwrap();
        let res = set.launch_loaded(1).unwrap();
        assert_eq!(res.per_dpu.len(), 6);
        for (i, r) in res.per_dpu.iter().enumerate() {
            assert_eq!(r.perf_reads, vec![0], "DPU {i} leaked perf state across launches");
        }
    }
}
