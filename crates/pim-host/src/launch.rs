//! Launching Tier-1 programs on a DPU set.
//!
//! `dpu_launch` runs the loaded program on every DPU of a set; the DPUs
//! execute independently and the host synchronizes on completion (paper
//! §3.1: SIMD across DPUs, SIMT across tasklets). The simulator runs the
//! per-DPU interpreters on host threads (they share nothing), then reports
//! per-DPU statistics plus the set-level figures the paper quotes: the
//! *makespan* (slowest DPU — the batch completes "at the max time for one
//! DPU", §4.1.3) and a merged subroutine profile.

use crate::error::Result;
use crate::set::DpuSet;
use dpu_sim::{Profiler, Program, RunResult};
use pim_trace::{MetricsRegistry, TraceBuffer};

/// Results of one launch across a DPU set.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Per-DPU run results, in DPU order.
    pub per_dpu: Vec<RunResult>,
    /// Tasklets the program ran with.
    pub tasklets: usize,
}

impl LaunchResult {
    /// Cycles until the slowest DPU finished (the set's completion time —
    /// all DPUs run concurrently).
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Completion time in seconds for the given device parameters.
    #[must_use]
    pub fn makespan_seconds(&self, params: &dpu_sim::DpuParams) -> f64 {
        params.cycles_to_seconds(self.makespan_cycles())
    }

    /// Total instructions issued across all DPUs.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.instructions).sum()
    }

    /// Merged subroutine profile of all DPUs.
    #[must_use]
    pub fn merged_profile(&self) -> Profiler {
        let mut p = Profiler::new();
        for r in &self.per_dpu {
            p.merge(&r.profile);
        }
        p
    }

    /// Snapshot this launch into a [`MetricsRegistry`]: set-level counters
    /// (instructions, DMA traffic), gauges (makespan, IPC, shape) and
    /// per-DPU/per-tasklet distributions (cycles, instructions, tasklet
    /// occupancy — the load-balance picture behind Fig. 4.7(a)).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("launch.instructions", self.total_instructions());
        m.counter_add("launch.dma.bytes", self.per_dpu.iter().map(|r| r.dma_bytes).sum());
        m.counter_add("launch.dma.transfers", self.per_dpu.iter().map(|r| r.dma_transfers).sum());
        m.counter_add("launch.dma.cycles", self.per_dpu.iter().map(|r| r.dma_cycles).sum());
        m.gauge_set("launch.dpus", self.per_dpu.len() as f64);
        m.gauge_set("launch.tasklets", self.tasklets as f64);
        let makespan = self.makespan_cycles();
        m.gauge_set("launch.makespan_cycles", makespan as f64);
        if makespan > 0 {
            m.gauge_set("launch.ipc", self.total_instructions() as f64 / makespan as f64);
        }
        for r in &self.per_dpu {
            m.observe("dpu.cycles", r.cycles as f64);
            m.observe("dpu.instructions", r.instructions as f64);
            if r.cycles > 0 {
                m.observe("dpu.ipc", r.instructions as f64 / r.cycles as f64);
            }
            // Occupancy: each tasklet's share of the DPU's issue slots.
            // Perfect balance over T tasklets reads as a flat 1/T.
            if r.instructions > 0 {
                for &issued in &r.issue_per_tasklet {
                    m.observe("tasklet.occupancy", issued as f64 / r.instructions as f64);
                }
            }
        }
        m
    }
}

impl DpuSet {
    /// Run `program` with `tasklets` threads on every DPU of the set and
    /// wait for completion.
    ///
    /// DPUs are simulated in parallel on host threads when the set is large
    /// enough for the thread spawn to pay off.
    ///
    /// # Errors
    /// The first DPU fault encountered (in DPU order).
    pub fn launch(&mut self, program: &Program, tasklets: usize) -> Result<LaunchResult> {
        self.launch_impl(program, tasklets, false).map(|(res, _)| res)
    }

    /// Like [`DpuSet::launch`], but additionally collects one
    /// [`TraceBuffer`] of cycle-stamped simulator events per DPU (buffer
    /// `i` belongs to DPU `i`): kernel launch/complete, every MRAM DMA,
    /// subroutine entries and barrier arrivals. Tracing is observational —
    /// the returned [`LaunchResult`] is identical to an untraced launch.
    ///
    /// # Errors
    /// The first DPU fault encountered (in DPU order).
    pub fn launch_traced(
        &mut self,
        program: &Program,
        tasklets: usize,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        self.launch_impl(program, tasklets, true)
    }

    fn launch_impl(
        &mut self,
        program: &Program,
        tasklets: usize,
        trace: bool,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        const PARALLEL_THRESHOLD: usize = 4;
        fn run_one(
            dpu: &mut dpu_sim::Machine,
            program: &Program,
            tasklets: usize,
            trace: bool,
            buf: &mut TraceBuffer,
        ) -> dpu_sim::Result<RunResult> {
            if trace {
                dpu.run_traced(program, tasklets, buf)
            } else {
                dpu.run(program, tasklets)
            }
        }

        program.validate()?;
        let system = self.system_mut();
        let n = system.len();
        let mut buffers: Vec<TraceBuffer> = vec![TraceBuffer::new(); n];
        let mut results: Vec<Option<dpu_sim::Result<RunResult>>> = Vec::with_capacity(n);
        if n < PARALLEL_THRESHOLD {
            for ((_, dpu), buf) in system.iter_mut().zip(buffers.iter_mut()) {
                results.push(Some(run_one(dpu, program, tasklets, trace, buf)));
            }
        } else {
            let mut slots: Vec<Option<dpu_sim::Result<RunResult>>> = (0..n).map(|_| None).collect();
            let threads = std::thread::available_parallelism().map_or(4, usize::from).min(n);
            let mut dpus: Vec<&mut dpu_sim::Machine> = system.iter_mut().map(|(_, m)| m).collect();
            // Chunk DPUs across host threads with crossbeam's scoped spawn.
            // Trace buffers are chunked alongside, so buffer order stays
            // DPU order regardless of thread interleaving.
            let chunk = n.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for ((dpu_chunk, slot_chunk), buf_chunk) in dpus
                    .chunks_mut(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .zip(buffers.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        for ((dpu, slot), buf) in dpu_chunk
                            .iter_mut()
                            .zip(slot_chunk.iter_mut())
                            .zip(buf_chunk.iter_mut())
                        {
                            *slot = Some(run_one(dpu, program, tasklets, trace, buf));
                        }
                    });
                }
            })
            .expect("simulation worker thread panicked");
            results = slots;
        }

        let mut per_dpu = Vec::with_capacity(n);
        for r in results {
            per_dpu.push(r.expect("every DPU slot filled")?);
        }
        Ok((LaunchResult { per_dpu, tasklets }, buffers))
    }
}

impl DpuSet {
    /// Launch the program previously installed with [`DpuSet::load`] —
    /// the second half of the SDK's load-once/launch-many pattern.
    ///
    /// # Errors
    /// [`crate::HostError::Symbol`] when nothing is loaded; otherwise as
    /// [`DpuSet::launch`].
    pub fn launch_loaded(&mut self, tasklets: usize) -> Result<LaunchResult> {
        let program = self.loaded_program().cloned().ok_or(crate::HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        self.launch(&program, tasklets)
    }

    /// [`DpuSet::launch_loaded`] with per-DPU tracing, as
    /// [`DpuSet::launch_traced`].
    ///
    /// # Errors
    /// [`crate::HostError::Symbol`] when nothing is loaded; otherwise as
    /// [`DpuSet::launch`].
    pub fn launch_loaded_traced(
        &mut self,
        tasklets: usize,
    ) -> Result<(LaunchResult, Vec<TraceBuffer>)> {
        let program = self.loaded_program().cloned().ok_or(crate::HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        self.launch_traced(&program, tasklets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use dpu_sim::DpuId;

    /// Program: read scalar at MRAM symbol offset 0 (via DMA), double it,
    /// write it back.
    fn double_program() -> Program {
        assemble(
            "movi r1, 0      ; wram addr\n\
             movi r2, 0      ; mram addr\n\
             movi r3, 8      ; len\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn launch_runs_all_dpus() {
        let mut set = DpuSet::allocate(8).unwrap();
        set.define_symbol("x", 8).unwrap();
        for i in 0..8u32 {
            set.copy_to_dpu(DpuId(i), "x", 0, &u64::from(i + 1).to_le_bytes()).unwrap();
        }
        let res = set.launch(&double_program(), 1).unwrap();
        assert_eq!(res.per_dpu.len(), 8);
        for i in 0..8u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
        assert!(res.makespan_cycles() > 0);
        assert_eq!(res.makespan_cycles(), res.per_dpu[0].cycles); // identical work
    }

    #[test]
    fn small_sets_use_serial_path() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 21).unwrap();
        set.launch(&double_program(), 1).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), 42);
        assert_eq!(set.copy_scalar_from(DpuId(1), "x").unwrap(), 42);
    }

    #[test]
    fn launch_propagates_dpu_faults() {
        let mut set = DpuSet::allocate(2).unwrap();
        let bad = assemble("jmp 99\n").unwrap();
        assert!(set.launch(&bad, 1).is_err());
    }

    #[test]
    fn load_then_launch_many_times() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        set.load(&double_program()).unwrap();
        for expected in [2u64, 4, 8] {
            set.launch_loaded(1).unwrap();
            assert_eq!(set.copy_scalar_from(DpuId(0), "x").unwrap(), expected);
        }
    }

    #[test]
    fn launch_loaded_without_load_errors() {
        let mut set = DpuSet::allocate(1).unwrap();
        let err = set.launch_loaded(1).unwrap_err();
        assert!(err.to_string().contains("no program loaded"));
    }

    #[test]
    fn load_rejects_bad_programs_eagerly() {
        let mut set = DpuSet::allocate(1).unwrap();
        let bad = Program::new(vec![dpu_sim::Instr::Jump { target: 9 }]);
        assert!(set.load(&bad).is_err());
        let huge = Program::new(vec![dpu_sim::Instr::Nop; 4000]);
        assert!(set.load(&huge).is_err());
    }

    #[test]
    fn merged_profile_aggregates_dpus() {
        let mut set = DpuSet::allocate(4).unwrap();
        let p = assemble("movi r1, 6\nmovi r2, 7\ncall __mulsi3 r3, r1, r2\nhalt\n").unwrap();
        let res = set.launch(&p, 1).unwrap();
        let prof = res.merged_profile();
        assert_eq!(prof.occurrences(dpu_sim::Subroutine::Mulsi3), 4);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use pim_trace::TraceEvent;

    /// DMA in, a multiply subroutine, a barrier, DMA out — every simulator
    /// event kind fires.
    fn traced_program() -> Program {
        assemble(
            "me r1\n\
             lsli r2, r1, 8\n\
             movi r3, 64\n\
             mram.read r2, r2, r3\n\
             call __mulsi3 r4, r3, r3\n\
             barrier\n\
             mram.write r2, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn traced_launch_matches_untraced_launch_exactly() {
        // Both the serial (<4 DPUs) and parallel (>=4 DPUs) paths.
        for dpus in [2usize, 6] {
            let mut plain_set = DpuSet::allocate(dpus).unwrap();
            let plain = plain_set.launch(&traced_program(), 3).unwrap();
            let mut traced_set = DpuSet::allocate(dpus).unwrap();
            let (traced, bufs) = traced_set.launch_traced(&traced_program(), 3).unwrap();
            assert_eq!(plain, traced, "{dpus} DPUs");
            assert_eq!(bufs.len(), dpus);
            assert!(bufs.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn untraced_launch_collects_no_events() {
        let mut set = DpuSet::allocate(2).unwrap();
        let (res, bufs) = set.launch_impl(&traced_program(), 2, false).unwrap();
        assert_eq!(res.per_dpu.len(), 2);
        assert!(bufs.iter().all(pim_trace::TraceBuffer::is_empty));
    }

    #[test]
    fn per_dpu_buffers_cover_all_dpus_in_order() {
        let mut set = DpuSet::allocate(5).unwrap();
        let (res, bufs) = set.launch_traced(&traced_program(), 2).unwrap();
        assert_eq!(bufs.len(), res.per_dpu.len());
        for (r, b) in res.per_dpu.iter().zip(&bufs) {
            // Identical work on every DPU: each buffer's end stamp is its
            // own DPU's cycle count.
            assert_eq!(b.max_end_cycle(), r.cycles);
            assert_eq!(b.dma_bytes(), r.dma_bytes);
            assert_eq!(b.count_matching(|e| matches!(e, TraceEvent::KernelLaunch { .. })), 1);
        }
    }

    #[test]
    fn metrics_snapshot_reflects_launch() {
        let mut set = DpuSet::allocate(4).unwrap();
        let res = set.launch(&traced_program(), 2).unwrap();
        let m = res.metrics();
        assert_eq!(m.counter("launch.instructions"), res.total_instructions());
        assert_eq!(
            m.counter("launch.dma.bytes"),
            res.per_dpu.iter().map(|r| r.dma_bytes).sum::<u64>()
        );
        assert_eq!(m.gauge("launch.dpus"), Some(4.0));
        assert_eq!(m.gauge("launch.makespan_cycles"), Some(res.makespan_cycles() as f64));
        let occ = m.histogram("tasklet.occupancy").expect("observed");
        assert_eq!(occ.count(), 4 * 2); // 4 DPUs x 2 tasklets
                                        // Shares within one DPU sum to 1; the mean over all is 1/tasklets.
        assert!((occ.mean().unwrap() - 0.5).abs() < 1e-9);
        let ipc = m.gauge("launch.ipc").expect("set");
        assert!(ipc > 0.0);
    }

    proptest::proptest! {
        /// The satellite invariant: the set's makespan equals the largest
        /// end stamp over every per-DPU trace span, at any set shape.
        #[test]
        fn makespan_equals_max_trace_end_cycle(
            dpus in 1usize..7,
            tasklets in 1usize..5,
        ) {
            let mut set = DpuSet::allocate(dpus).unwrap();
            let (res, bufs) = set.launch_traced(&traced_program(), tasklets).unwrap();
            let max_end = bufs.iter().map(pim_trace::TraceBuffer::max_end_cycle).max().unwrap();
            proptest::prop_assert_eq!(res.makespan_cycles(), max_end);
        }
    }
}
