//! Fault-tolerant launch: bounded retry, quarantine, and graceful
//! degradation.
//!
//! Real UPMEM hosts survive partial failures — the SDK masks faulty ranks
//! out and reissues their work. This module brings that posture to the
//! simulated host: [`DpuSet::launch_resilient`] runs the program under a
//! [`ResilientLaunchPolicy`] and returns a structured [`LaunchReport`]
//! instead of aborting on the first fault:
//!
//! 1. **Retry** — each DPU gets up to `1 + max_retries` attempts. Before a
//!    retry its MRAM is restored from a pre-launch snapshot (taken only
//!    when the policy can actually inject faults, so the fault-free path
//!    stays bit-identical to [`DpuSet::launch_loaded`]). Snapshots are
//!    copy-on-write page-table clones ([`dpu_sim::CowMemory::snapshot`]):
//!    O(resident pages) to take and O(dirty pages) to restore, instead of
//!    deep-copying 64 MiB. `backoff_cycles` is charged per retry to the
//!    DPU's accounted latency.
//! 2. **Watchdog** — every attempt runs under `watchdog_budget` cycles, so
//!    a wedged kernel surfaces as `CycleBudgetExceeded` instead of running
//!    to the simulator's default 50 G-cycle budget.
//! 3. **Quarantine** — a DPU that exhausts its attempts is quarantined and
//!    reported; its machine is left as the failed run left it.
//! 4. **Graceful degradation** — quarantined DPUs' work is re-dispatched
//!    across survivors: the victim's pre-launch MRAM image runs on a
//!    surviving DPU (whose own MRAM is saved and restored around the
//!    favor), and the results are copied back into the victim's MRAM so
//!    the caller's normal gather paths see them in place.
//!
//! Every injected fault is materialized as a
//! [`pim_trace::TraceEvent::FaultInjected`] event in the owning DPU's
//! trace buffer and counted in [`LaunchReport::metrics`].
//!
//! Determinism: fault draws are pure functions of `(seed, dpu, attempt)`
//! (see [`dpu_sim::faults`]), the retry loop runs per-DPU, and the
//! re-dispatch pass is a sequential round-robin over survivors in DPU
//! order — so the same seed yields the same [`LaunchReport`] whether the
//! host simulates DPUs sequentially or work-steals them across threads.

use crate::error::{HostError, Result};
use crate::launch::{panic_detail, steal_jobs, LaunchResult, Sched};
use crate::set::DpuSet;
use dpu_sim::faults::{FaultPlan, InjectedFault};
use dpu_sim::{
    DpuId, Engine, ExecProgram, Machine, MemorySnapshot, PimSystem, Program, RunResult, ScrubReport,
};
use pim_trace::{MetricsRegistry, TraceBuffer, TraceEvent, TraceSink};

/// Policy governing a fault-tolerant launch.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientLaunchPolicy {
    /// Additional attempts after the first failure (0 = no retry).
    pub max_retries: u32,
    /// Cycles charged per retry to the DPU's accounted completion time —
    /// the simulated cost of fault detection plus relaunch.
    pub backoff_cycles: u64,
    /// Per-attempt cycle budget (the watchdog). Defaults to the
    /// simulator's [`dpu_sim::machine::DEFAULT_CYCLE_BUDGET`], so a
    /// fault-free resilient launch is bit-identical to a plain one.
    pub watchdog_budget: u64,
    /// Whether quarantined DPUs' work is re-dispatched across survivors.
    pub redispatch: bool,
    /// Faults to inject, if any. `None` (or a zero plan) keeps the launch
    /// observationally identical to [`DpuSet::launch_loaded`].
    pub faults: Option<FaultPlan>,
    /// Force the sequential scheduling path regardless of set size
    /// (exists so determinism tests can pin 1-thread == N-thread).
    pub force_sequential: bool,
    /// Back off exponentially instead of linearly: retry `k` (1-based)
    /// charges `backoff_cycles << (k - 1)` instead of `backoff_cycles`.
    /// The chaos campaigns use this to model congestion-aware relaunch.
    pub exponential_backoff: bool,
}

impl Default for ResilientLaunchPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_cycles: 0,
            watchdog_budget: dpu_sim::machine::DEFAULT_CYCLE_BUDGET,
            redispatch: true,
            faults: None,
            force_sequential: false,
            exponential_backoff: false,
        }
    }
}

impl ResilientLaunchPolicy {
    /// The default policy with a fault plan attached.
    #[must_use]
    pub fn with_faults(plan: FaultPlan) -> Self {
        Self { faults: Some(plan), ..Self::default() }
    }

    /// Total backoff cycles charged after `retries` retries: linear
    /// (`retries * backoff_cycles`) by default, geometric
    /// (`backoff_cycles * (2^retries - 1)`) under
    /// [`ResilientLaunchPolicy::exponential_backoff`].
    #[must_use]
    pub fn cumulative_backoff(&self, retries: u32) -> u64 {
        if self.exponential_backoff {
            let doublings = 1u64.checked_shl(retries).map_or(u64::MAX, |d| d - 1);
            self.backoff_cycles.saturating_mul(doublings)
        } else {
            u64::from(retries).saturating_mul(self.backoff_cycles)
        }
    }
}

/// How healthy one DPU's serve ultimately was — the classification the
/// serving layer's circuit breaker consumes. The key distinction: a
/// launch whose only incidents were *corrected* (ECC scrub repairs,
/// inline DMA repairs, or successful retries on the home DPU) is
/// **healthy-after-repair**, not degraded — its results are bit-exact
/// and its home DPU still serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeHealth {
    /// Served in place, first attempt, nothing repaired.
    Healthy,
    /// Served in place with repairs (retries consumed and/or ECC
    /// corrections applied); results are verified clean.
    HealthyAfterRepair,
    /// Served by a survivor after the home DPU was quarantined.
    Degraded,
    /// Not served at all.
    Unserved,
}

/// How one DPU's work item was ultimately served.
#[derive(Debug, Clone, PartialEq)]
pub struct DpuServeReport {
    /// The run result for this DPU's work, or `None` when it could not be
    /// served at all (quarantined with no redispatch or no survivors).
    pub result: Option<RunResult>,
    /// Attempts made on the home DPU (>= 1).
    pub attempts: u32,
    /// Total backoff cycles charged before the serving attempt.
    pub backoff_cycles: u64,
    /// `Some(other)` when a surviving DPU served this work after the home
    /// DPU was quarantined; `None` when the home DPU served it.
    pub served_by: Option<DpuId>,
    /// The last failure seen on the home DPU, kept for diagnosis even
    /// when a survivor later served the work.
    pub last_error: Option<HostError>,
    /// Every fault injected across this DPU's attempts, in order.
    pub faults: Vec<InjectedFault>,
    /// Merged ECC scrub results across this DPU's attempts (empty when
    /// ECC is off or no fault plan was armed).
    pub scrub: ScrubReport,
    /// MRAM words repaired inline by DMA verify-on-read during this
    /// DPU's attempts.
    pub dma_corrected: u64,
}

impl DpuServeReport {
    /// Retries consumed on the home DPU (attempts beyond the first).
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Total single-bit errors repaired for this DPU (scrub + inline
    /// DMA corrections).
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.scrub.corrected() + self.dma_corrected
    }

    /// Health classification of this serve (see [`ServeHealth`]).
    #[must_use]
    pub fn health(&self) -> ServeHealth {
        if self.result.is_none() {
            ServeHealth::Unserved
        } else if self.served_by.is_some() {
            ServeHealth::Degraded
        } else if self.retries() > 0 || self.repairs() > 0 {
            ServeHealth::HealthyAfterRepair
        } else {
            ServeHealth::Healthy
        }
    }
}

/// One work item moved from a quarantined DPU to a survivor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redispatch {
    /// The quarantined DPU whose work moved.
    pub from: DpuId,
    /// The surviving DPU that ran it.
    pub to: DpuId,
    /// Cycles the survivor spent on the favor.
    pub cycles: u64,
}

/// Outcome of a fault-tolerant launch: per-DPU serve reports plus the
/// quarantine and degradation record. Returned `Ok` even when some work
/// could not be served — graceful degradation is the point; check
/// [`LaunchReport::fully_served`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Per-DPU serve reports, in DPU order.
    pub per_dpu: Vec<DpuServeReport>,
    /// Tasklets the program ran with.
    pub tasklets: usize,
    /// DPUs quarantined after exhausting their attempts, ascending.
    pub quarantined: Vec<DpuId>,
    /// Work items re-dispatched to survivors, in quarantine order.
    pub degraded: Vec<Redispatch>,
}

impl LaunchReport {
    /// Whether every DPU's work produced a result (in place or via
    /// re-dispatch).
    #[must_use]
    pub fn fully_served(&self) -> bool {
        self.per_dpu.iter().all(|r| r.result.is_some())
    }

    /// Total retries consumed across the set.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.per_dpu.iter().map(|r| u64::from(r.retries())).sum()
    }

    /// Total faults injected across the set.
    #[must_use]
    pub fn faults_injected(&self) -> usize {
        self.per_dpu.iter().map(|r| r.faults.len()).sum()
    }

    /// Total single-bit errors repaired across the set (ECC scrub plus
    /// inline DMA corrections).
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.per_dpu.iter().map(DpuServeReport::repairs).sum()
    }

    /// DPUs whose serve classified as a given health state.
    #[must_use]
    pub fn count_health(&self, health: ServeHealth) -> usize {
        self.per_dpu.iter().filter(|r| r.health() == health).count()
    }

    /// Completion time of the launch under this crate's accounting model:
    /// the in-place wave completes at the slowest DPU's `cycles +
    /// backoff`, then re-dispatched favors run on survivors one after
    /// another (they reuse busy hardware, so they serialize onto the end
    /// of the wave).
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        let wave = self
            .per_dpu
            .iter()
            .filter(|r| r.served_by.is_none())
            .filter_map(|r| r.result.as_ref().map(|res| res.cycles + r.backoff_cycles))
            .max()
            .unwrap_or(0);
        wave + self.degraded.iter().map(|d| d.cycles).sum::<u64>()
    }

    /// Collapse into a plain [`LaunchResult`] when every work item was
    /// served (`None` otherwise). Results appear in DPU order regardless
    /// of which DPU physically served them.
    #[must_use]
    pub fn to_launch_result(&self) -> Option<LaunchResult> {
        let per_dpu: Option<Vec<RunResult>> =
            self.per_dpu.iter().map(|r| r.result.clone()).collect();
        per_dpu.map(|per_dpu| LaunchResult { per_dpu, tasklets: self.tasklets })
    }

    /// Metrics snapshot: the resilience counters (retries, quarantines,
    /// re-dispatches, per-class injected-fault counts) plus, when every
    /// item was served, the underlying launch metrics.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.to_launch_result().map(|r| r.metrics()).unwrap_or_default();
        m.counter_add("resilient.retries", self.retries());
        m.counter_add("resilient.quarantined", self.quarantined.len() as u64);
        m.counter_add("resilient.redispatched", self.degraded.len() as u64);
        m.counter_add("resilient.faults_injected", self.faults_injected() as u64);
        for r in &self.per_dpu {
            for f in &r.faults {
                m.counter_add(&format!("faults.{}", f.kind.label()), 1);
            }
        }
        m.gauge_set("resilient.makespan_cycles", self.makespan_cycles() as f64);
        m.gauge_set(
            "resilient.unserved",
            self.per_dpu.iter().filter(|r| r.result.is_none()).count() as f64,
        );
        m.counter_add(
            "resilient.healthy_after_repair",
            self.count_health(ServeHealth::HealthyAfterRepair) as u64,
        );
        m.counter_add(
            "integrity.dma_corrected",
            self.per_dpu.iter().map(|r| r.dma_corrected).sum(),
        );
        m.counter_add(
            "integrity.scrub_corrected",
            self.per_dpu.iter().map(|r| r.scrub.corrected()).sum(),
        );
        m.counter_add(
            "integrity.scrub_uncorrectable",
            self.per_dpu.iter().map(|r| r.scrub.uncorrectable.len() as u64).sum(),
        );
        m.counter_add("integrity.scrub_words", self.per_dpu.iter().map(|r| r.scrub.words).sum());
        m
    }
}

/// Raw per-DPU outcome of the retry wave, before the re-dispatch pass.
struct Serve {
    result: Option<RunResult>,
    attempts: u32,
    backoff_cycles: u64,
    last_error: Option<HostError>,
    faults: Vec<InjectedFault>,
    /// Pre-launch MRAM image (a COW page-table clone, not a deep copy),
    /// kept only when faults can fire.
    snapshot: Option<MemorySnapshot>,
    scrub: ScrubReport,
    dma_corrected: u64,
}

/// Run one attempt on `dpu`, arming/disarming faults around it and
/// materializing whatever fired as trace events in `buf`.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    dpu: &mut Machine,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Engine,
    buf: &mut TraceBuffer,
    policy: &ResilientLaunchPolicy,
    plan: Option<&FaultPlan>,
    index: u32,
    attempt: u32,
    faults: &mut Vec<InjectedFault>,
) -> std::result::Result<RunResult, HostError> {
    if let Some(p) = plan {
        dpu.arm_faults(p.attempt(index, attempt));
    }
    // Fault-armed attempts deoptimize the compiled tier to the superblock
    // engine inside `run_code`; the engine choice still matters for the
    // clean attempts and re-dispatches sharing this path.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if trace {
            dpu.run_exec_traced_engine_with_budget(
                exec,
                tasklets,
                policy.watchdog_budget,
                buf,
                engine,
            )
        } else {
            dpu.run_exec_engine_with_budget(exec, tasklets, policy.watchdog_budget, engine)
        }
    }));
    if let Some(log) = dpu.disarm_faults() {
        for f in log.injected() {
            faults.push(*f);
            buf.record(TraceEvent::FaultInjected {
                kind: f.kind.label(),
                addr: f.kind.addr(),
                cycle: f.cycle,
                attempt,
            });
        }
    }
    match run {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(HostError::Dpu(e)),
        Err(payload) => Err(HostError::WorkerPanic { detail: panic_detail(payload.as_ref()) }),
    }
}

/// The retry wave for one DPU: snapshot (when faults can fire), attempt up
/// to `1 + max_retries` runs restoring inputs between attempts, and charge
/// backoff per retry.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    index: usize,
    dpu: &mut Machine,
    buf: &mut TraceBuffer,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Engine,
    policy: &ResilientLaunchPolicy,
    plan: Option<&FaultPlan>,
) -> Serve {
    let snapshot = plan.map(|_| dpu.mram.snapshot());
    // Scrub only fault-armed ECC launches: the clean ECC-on path stays
    // scrub-free so its cost is the write-path encode alone (bench-gated
    // ≤ 2% over ECC-off).
    let scrub_armed = plan.is_some() && dpu.mram.ecc_enabled();
    let dma_base = dpu.integrity.dma_corrected;
    let mut scrub = ScrubReport::default();
    let mut faults = Vec::new();
    let mut last_error = None;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            if let Some(s) = &snapshot {
                dpu.mram.restore(s).expect("snapshot restores");
            }
        }
        let backoff = policy.cumulative_backoff(attempt);
        match run_attempt(
            dpu,
            exec,
            tasklets,
            trace,
            engine,
            buf,
            policy,
            plan,
            index as u32,
            attempt,
            &mut faults,
        ) {
            Ok(result) => {
                if scrub_armed {
                    // Between-launch scrub: repair single-bit storage
                    // errors the attempt left behind (MRAM write-side
                    // flips land *after* the sidecar was refreshed, so
                    // the scrub sees and fixes them) without consuming a
                    // retry. A multi-bit word is beyond SEC-DED: the
                    // attempt's output cannot be trusted, so it fails and
                    // the next attempt restores from the snapshot.
                    let rep = dpu.mram.scrub();
                    let bad = rep.uncorrectable.first().copied();
                    scrub.merge(&rep);
                    if let Some(addr) = bad {
                        last_error =
                            Some(HostError::Dpu(dpu_sim::Error::EccUncorrectable { addr }));
                        continue;
                    }
                }
                return Serve {
                    result: Some(result),
                    attempts: attempt + 1,
                    backoff_cycles: backoff,
                    last_error: None,
                    faults,
                    snapshot,
                    scrub,
                    dma_corrected: dpu.integrity.dma_corrected - dma_base,
                };
            }
            Err(e) => last_error = Some(e),
        }
    }
    Serve {
        result: None,
        attempts: policy.max_retries + 1,
        backoff_cycles: policy.cumulative_backoff(policy.max_retries),
        last_error,
        faults,
        snapshot,
        scrub,
        dma_corrected: dpu.integrity.dma_corrected - dma_base,
    }
}

/// Run the decoded program on every DPU under `policy` and collect the
/// report plus per-DPU trace buffers.
fn launch_resilient_on(
    system: &mut PimSystem,
    exec: &ExecProgram,
    tasklets: usize,
    trace: bool,
    engine: Option<Engine>,
    policy: &ResilientLaunchPolicy,
    sched: &Sched<'_>,
) -> Result<(LaunchReport, Vec<TraceBuffer>)> {
    let engine = engine.unwrap_or_else(Engine::effective);
    let n = system.len();
    let mut buffers: Vec<TraceBuffer> = vec![TraceBuffer::new(); n];
    // A zero plan injects nothing: drop it so the wave skips snapshots and
    // arming entirely and stays bit-identical to the plain launch.
    let plan = policy.faults.as_ref().filter(|p| !p.is_zero());

    let job = |i: usize, dpu: &mut Machine, buf: &mut TraceBuffer| {
        serve_one(i, dpu, buf, exec, tasklets, trace, engine, policy, plan)
    };
    let pool = if policy.force_sequential { None } else { sched.pool_for(n) };
    let mut serves: Vec<Serve> = match pool {
        None => system
            .iter_mut()
            .zip(buffers.iter_mut())
            .enumerate()
            .map(|(i, ((_, dpu), buf))| job(i, dpu, buf))
            .collect(),
        Some(pool) => steal_jobs(pool, system, &mut buffers, job).0,
    };

    let quarantined: Vec<DpuId> = serves
        .iter()
        .enumerate()
        .filter(|(_, s)| s.result.is_none())
        .map(|(i, _)| DpuId(i as u32))
        .collect();

    // Graceful degradation: move each quarantined DPU's inputs onto a
    // survivor, run clean (no injection — the victim's faults were its
    // own), and copy the outputs back into the victim's MRAM so the
    // caller's gather paths find them in place. Sequential and in DPU
    // order, so the report is scheduling-independent.
    let mut degraded = Vec::new();
    let mut served_by: Vec<Option<DpuId>> = vec![None; n];
    if policy.redispatch && !quarantined.is_empty() {
        let survivors: Vec<usize> = (0..n).filter(|&i| serves[i].result.is_some()).collect();
        for (rr, &q) in quarantined.iter().enumerate() {
            if survivors.is_empty() {
                break;
            }
            let qi = q.0 as usize;
            let to = survivors[rr % survivors.len()];
            // The victim's pre-launch image: its snapshot when faults were
            // armed, else its current MRAM (a natural fault left inputs
            // untouched up to the failure point — best effort). Whole-MRAM
            // COW snapshots: cloning a page table, not 64 MiB.
            let image = match serves[qi].snapshot.take() {
                Some(s) => s,
                None => system.dpu(q).mram.snapshot(),
            };
            let host = system.dpu_mut(DpuId(to as u32));
            let saved = host.mram.snapshot();
            host.mram.restore(&image).expect("image fits");
            let mut faults = Vec::new();
            let outcome = run_attempt(
                host,
                exec,
                tasklets,
                trace,
                engine,
                &mut buffers[qi],
                policy,
                None,
                q.0,
                0,
                &mut faults,
            );
            let result_image = host.mram.snapshot();
            host.mram.restore(&saved).expect("restore fits");
            match outcome {
                Ok(r) => {
                    system.dpu_mut(q).mram.restore(&result_image).expect("result image fits");
                    degraded.push(Redispatch { from: q, to: DpuId(to as u32), cycles: r.cycles });
                    served_by[qi] = Some(DpuId(to as u32));
                    serves[qi].result = Some(r);
                }
                Err(e) => {
                    // The survivor could not serve it either (deterministic
                    // program fault); record and move on.
                    serves[qi].last_error = Some(e);
                }
            }
        }
    }

    let per_dpu = serves
        .into_iter()
        .enumerate()
        .map(|(i, s)| DpuServeReport {
            result: s.result,
            attempts: s.attempts,
            backoff_cycles: s.backoff_cycles,
            served_by: served_by[i],
            last_error: s.last_error,
            faults: s.faults,
            scrub: s.scrub,
            dma_corrected: s.dma_corrected,
        })
        .collect();
    Ok((LaunchReport { per_dpu, tasklets, quarantined, degraded }, buffers))
}

impl DpuSet {
    /// Run `program` on every DPU under `policy`, surviving injected and
    /// natural per-DPU faults. See the module docs for retry, quarantine
    /// and re-dispatch semantics.
    ///
    /// # Errors
    /// Setup failures only (compile/allocation); per-DPU faults are
    /// reported in the [`LaunchReport`], not as `Err`.
    pub fn launch_resilient(
        &mut self,
        program: &Program,
        tasklets: usize,
        policy: &ResilientLaunchPolicy,
    ) -> Result<LaunchReport> {
        let exec = ExecProgram::compile(program)?;
        let engine = self.engine();
        let (system, _, sched) = self.launch_parts();
        launch_resilient_on(system, &exec, tasklets, false, engine, policy, &sched)
            .map(|(rep, _)| rep)
    }

    /// [`DpuSet::launch_resilient`] with per-DPU tracing. Injected faults
    /// appear as [`TraceEvent::FaultInjected`] events in the owning DPU's
    /// buffer, interleaved with the attempts they fired in.
    ///
    /// # Errors
    /// See [`DpuSet::launch_resilient`].
    pub fn launch_resilient_traced(
        &mut self,
        program: &Program,
        tasklets: usize,
        policy: &ResilientLaunchPolicy,
    ) -> Result<(LaunchReport, Vec<TraceBuffer>)> {
        let exec = ExecProgram::compile(program)?;
        let engine = self.engine();
        let (system, _, sched) = self.launch_parts();
        launch_resilient_on(system, &exec, tasklets, true, engine, policy, &sched)
    }

    /// Fault-tolerant launch of the program installed with
    /// [`DpuSet::load`] — the resilient counterpart of
    /// [`DpuSet::launch_loaded`].
    ///
    /// # Errors
    /// [`HostError::Symbol`] when nothing is loaded; otherwise see
    /// [`DpuSet::launch_resilient`].
    pub fn launch_loaded_resilient(
        &mut self,
        tasklets: usize,
        policy: &ResilientLaunchPolicy,
    ) -> Result<LaunchReport> {
        let engine = self.engine();
        let (system, loaded, sched) = self.launch_parts();
        let exec = loaded.ok_or(HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        launch_resilient_on(system, exec, tasklets, false, engine, policy, &sched)
            .map(|(rep, _)| rep)
    }

    /// [`DpuSet::launch_loaded_resilient`] with per-DPU tracing.
    ///
    /// # Errors
    /// See [`DpuSet::launch_loaded_resilient`].
    pub fn launch_loaded_resilient_traced(
        &mut self,
        tasklets: usize,
        policy: &ResilientLaunchPolicy,
    ) -> Result<(LaunchReport, Vec<TraceBuffer>)> {
        let engine = self.engine();
        let (system, loaded, sched) = self.launch_parts();
        let exec = loaded.ok_or(HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        launch_resilient_on(system, exec, tasklets, true, engine, policy, &sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use dpu_sim::faults::FaultConfig;

    /// Read the scalar at MRAM offset 0, double it, write it back.
    fn double_program() -> Program {
        assemble(
            "movi r1, 0\n\
             movi r2, 0\n\
             movi r3, 8\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    fn seeded_set(n: usize) -> DpuSet {
        let mut set = DpuSet::allocate(n).unwrap();
        set.define_symbol("x", 8).unwrap();
        for i in 0..n {
            set.copy_to_dpu(DpuId(i as u32), "x", 0, &(i as u64 + 1).to_le_bytes()).unwrap();
        }
        set.load(&double_program()).unwrap();
        set
    }

    #[test]
    fn zero_fault_policy_matches_plain_launch_exactly() {
        for dpus in [2usize, 6] {
            let mut plain = seeded_set(dpus);
            let expected = plain.launch_loaded(1).unwrap();

            let mut res = seeded_set(dpus);
            let report = res.launch_loaded_resilient(1, &ResilientLaunchPolicy::default()).unwrap();
            assert!(report.fully_served());
            assert_eq!(report.retries(), 0);
            assert!(report.quarantined.is_empty() && report.degraded.is_empty());
            assert_eq!(report.to_launch_result().unwrap(), expected, "{dpus} DPUs");
            assert_eq!(report.makespan_cycles(), expected.makespan_cycles());
            for (i, r) in report.per_dpu.iter().enumerate() {
                assert_eq!((r.attempts, r.served_by, r.backoff_cycles), (1, None, 0), "DPU {i}");
                assert!(r.faults.is_empty() && r.last_error.is_none());
            }
            // Memory effects identical too.
            for i in 0..dpus as u32 {
                assert_eq!(
                    res.copy_scalar_from(DpuId(i), "x").unwrap(),
                    plain.copy_scalar_from(DpuId(i), "x").unwrap()
                );
            }
        }
    }

    #[test]
    fn forced_offline_dpu_is_quarantined_and_served_by_a_survivor() {
        let mut set = seeded_set(5);
        let plan = FaultPlan::new(FaultConfig { forced_offline: vec![2], ..Default::default() });
        let policy =
            ResilientLaunchPolicy { max_retries: 1, ..ResilientLaunchPolicy::with_faults(plan) };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert_eq!(report.quarantined, vec![DpuId(2)]);
        assert!(report.fully_served(), "survivor must serve the quarantined work");
        assert_eq!(report.degraded.len(), 1);
        assert_eq!(report.degraded[0].from, DpuId(2));
        assert_eq!(report.per_dpu[2].served_by, Some(report.degraded[0].to));
        assert_eq!(report.per_dpu[2].attempts, 2, "exhausted its retries first");
        assert!(matches!(
            report.per_dpu[2].last_error,
            None | Some(HostError::Dpu(dpu_sim::Error::DpuOffline))
        ));
        // The re-dispatched result landed in DPU 2's MRAM: gather works.
        for i in 0..5u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
        // Offline faults logged once per attempt.
        assert_eq!(report.per_dpu[2].faults.len(), 2);
        let m = report.metrics();
        assert_eq!(m.counter("resilient.quarantined"), 1);
        assert_eq!(m.counter("resilient.redispatched"), 1);
        assert_eq!(m.counter("faults.dpu_offline"), 2);
    }

    #[test]
    fn transient_dma_faults_are_retried_with_backoff_accounting() {
        // A per-transfer fail rate low enough that some attempt succeeds
        // within the generous retry budget, on every DPU.
        let mut set = seeded_set(4);
        let plan =
            FaultPlan::new(FaultConfig { seed: 77, dma_fail_prob: 0.4, ..Default::default() });
        let policy = ResilientLaunchPolicy {
            max_retries: 8,
            backoff_cycles: 1_000,
            ..ResilientLaunchPolicy::with_faults(plan)
        };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(report.fully_served());
        assert!(report.retries() > 0, "seed 77 at 0.4 must fail at least one transfer");
        for (i, r) in report.per_dpu.iter().enumerate() {
            assert_eq!(r.backoff_cycles, u64::from(r.retries()) * 1_000, "DPU {i}");
            // Each failed attempt logged exactly one DMA fail.
            assert_eq!(r.faults.len(), r.retries() as usize, "DPU {i}: {:?}", r.faults);
        }
        // Inputs were restored between attempts: results are correct.
        for i in 0..4u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
    }

    #[test]
    fn all_dpus_offline_degrades_gracefully_to_unserved() {
        let mut set = seeded_set(3);
        let plan =
            FaultPlan::new(FaultConfig { forced_offline: vec![0, 1, 2], ..Default::default() });
        let policy = ResilientLaunchPolicy::with_faults(plan);
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(!report.fully_served());
        assert_eq!(report.quarantined.len(), 3);
        assert!(report.degraded.is_empty(), "no survivors to re-dispatch to");
        assert!(report.to_launch_result().is_none());
        for r in &report.per_dpu {
            assert!(matches!(r.last_error, Some(HostError::Dpu(dpu_sim::Error::DpuOffline))));
        }
    }

    #[test]
    fn natural_faults_quarantine_without_injection() {
        // A program that always divides by zero: every attempt fails on
        // every DPU, no fault plan involved.
        let p = assemble("movi r1, 5\nmovi r2, 0\ncall __divsi3 r3, r1, r2\nhalt\n").unwrap();
        let mut set = DpuSet::allocate(2).unwrap();
        let policy = ResilientLaunchPolicy { max_retries: 1, ..Default::default() };
        let report = set.launch_resilient(&p, 1, &policy).unwrap();
        assert!(!report.fully_served());
        assert_eq!(report.quarantined.len(), 2);
        for r in &report.per_dpu {
            assert_eq!(r.attempts, 2);
            assert!(matches!(
                r.last_error,
                Some(HostError::Dpu(dpu_sim::Error::DivisionByZero { .. }))
            ));
        }
    }

    #[test]
    fn traced_resilient_run_materializes_fault_events() {
        let mut set = seeded_set(4);
        let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
        let policy =
            ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
        let (report, bufs) = set.launch_loaded_resilient_traced(1, &policy).unwrap();
        assert!(report.fully_served());
        let fault_events = bufs[1]
            .count_matching(|e| matches!(e, TraceEvent::FaultInjected { kind: "dpu_offline", .. }));
        assert_eq!(fault_events, 1);
        // The victim's buffer also carries the survivor's serving run.
        let kernels = bufs[1].count_matching(|e| matches!(e, TraceEvent::KernelComplete { .. }));
        assert_eq!(kernels, 1, "re-dispatched run is traced into the victim's buffer");
        for (i, b) in bufs.iter().enumerate() {
            if i != 1 {
                assert_eq!(
                    b.count_matching(|e| matches!(e, TraceEvent::FaultInjected { .. })),
                    0,
                    "DPU {i}"
                );
            }
        }
    }

    #[test]
    fn watchdog_cuts_off_runaway_kernels() {
        let p = assemble("top:\njmp top\n").unwrap();
        let mut set = DpuSet::allocate(2).unwrap();
        let policy =
            ResilientLaunchPolicy { max_retries: 0, watchdog_budget: 10_000, ..Default::default() };
        let report = set.launch_resilient(&p, 1, &policy).unwrap();
        assert!(!report.fully_served());
        for r in &report.per_dpu {
            assert!(matches!(
                r.last_error,
                Some(HostError::Dpu(dpu_sim::Error::CycleBudgetExceeded { budget: 10_000 }))
            ));
        }
    }

    #[test]
    fn worker_panic_is_contained_and_set_is_reusable() {
        // Sabotage one DPU so its simulation panics (tasklet count beyond
        // the machine's max triggers a BadTaskletCount error, so instead
        // force a panic through a poisoned machine invariant: an
        // out-of-range PC yields an error, not a panic — use an assert in
        // the job path via a program too large is also an error...).
        // The honest way to provoke a panic in the run path is the
        // launch-time assertion in `Superblocks`; none exists. So emulate
        // the panic with an injected hang plus zero watchdog instead and
        // verify containment of *errors*; the panic-capture path itself is
        // covered by `launch.rs` tests and shares `catch_unwind` here.
        let mut set = seeded_set(4);
        let plan = FaultPlan::new(FaultConfig { forced_offline: vec![0], ..Default::default() });
        let policy =
            ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(report.fully_served());
        // The set remains usable for a clean follow-up launch.
        for i in 0..4u32 {
            set.copy_to_dpu(DpuId(i), "x", 0, &(i as u64 + 1).to_le_bytes()).unwrap();
        }
        let clean = set.launch_loaded(1).unwrap();
        assert_eq!(clean.per_dpu.len(), 4);
        for i in 0..4u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
    }

    #[test]
    fn cumulative_backoff_is_linear_by_default_and_geometric_when_asked() {
        let lin = ResilientLaunchPolicy { backoff_cycles: 100, ..Default::default() };
        assert_eq!(lin.cumulative_backoff(0), 0);
        assert_eq!(lin.cumulative_backoff(3), 300);
        let exp = ResilientLaunchPolicy {
            backoff_cycles: 100,
            exponential_backoff: true,
            ..Default::default()
        };
        assert_eq!(exp.cumulative_backoff(0), 0);
        assert_eq!(exp.cumulative_backoff(1), 100);
        assert_eq!(exp.cumulative_backoff(3), 700);
        assert_eq!(exp.cumulative_backoff(64), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn ecc_on_clean_resilient_run_is_bit_identical_to_ecc_off() {
        let mut off = seeded_set(4);
        let expected = off.launch_loaded_resilient(1, &ResilientLaunchPolicy::default()).unwrap();
        let mut on = seeded_set(4);
        on.enable_ecc(true);
        let got = on.launch_loaded_resilient(1, &ResilientLaunchPolicy::default()).unwrap();
        assert_eq!(got, expected, "ECC sidecar must not perturb a clean run");
        for i in 0..4u32 {
            assert_eq!(
                on.copy_scalar_from(DpuId(i), "x").unwrap(),
                off.copy_scalar_from(DpuId(i), "x").unwrap()
            );
        }
        // Nothing to repair on a clean memory.
        let rep = on.scrub_all();
        assert_eq!((rep.corrected(), rep.uncorrectable.len()), (0, 0), "{rep:?}");
    }

    #[test]
    fn single_bit_flips_are_repaired_without_consuming_a_retry() {
        let mut clean = seeded_set(4);
        let expected = clean.launch_loaded(1).unwrap();

        let mut set = seeded_set(4);
        set.enable_ecc(true);
        let plan =
            FaultPlan::new(FaultConfig { seed: 5, bit_flip_prob: 0.9, ..Default::default() });
        let policy =
            ResilientLaunchPolicy { max_retries: 2, ..ResilientLaunchPolicy::with_faults(plan) };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(report.fully_served());
        assert!(report.faults_injected() > 0, "seed 5 at 0.9 must flip bits");
        assert_eq!(report.retries(), 0, "single-bit flips are repaired, never retried");
        assert!(report.repairs() > 0, "repairs must be counted: {report:?}");
        // The repaired launch is bit-identical to the fault-free one.
        assert_eq!(report.to_launch_result().unwrap(), expected);
        for i in 0..4u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
        for r in &report.per_dpu {
            if !r.faults.is_empty() {
                assert_eq!(r.health(), ServeHealth::HealthyAfterRepair, "{r:?}");
            }
        }
        let m = report.metrics();
        assert_eq!(m.counter("integrity.scrub_uncorrectable"), 0);
        assert_eq!(
            m.counter("integrity.dma_corrected") + m.counter("integrity.scrub_corrected"),
            report.repairs()
        );
    }

    #[test]
    fn double_bit_write_faults_are_uncorrectable_and_fail_the_attempt() {
        let mut set = seeded_set(3);
        set.enable_ecc(true);
        let plan =
            FaultPlan::new(FaultConfig { seed: 9, double_flip_prob: 1.0, ..Default::default() });
        let policy = ResilientLaunchPolicy {
            max_retries: 1,
            redispatch: false,
            ..ResilientLaunchPolicy::with_faults(plan)
        };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(!report.fully_served(), "every attempt's write lands a double flip");
        assert_eq!(report.quarantined.len(), 3);
        for r in &report.per_dpu {
            assert_eq!(r.attempts, 2, "both attempts consumed");
            assert!(
                matches!(
                    r.last_error,
                    Some(HostError::Dpu(dpu_sim::Error::EccUncorrectable { .. }))
                ),
                "{:?}",
                r.last_error
            );
            assert!(!r.scrub.uncorrectable.is_empty(), "scrub must report the bad word");
            assert_eq!(r.health(), ServeHealth::Unserved);
        }
        assert!(report.metrics().counter("integrity.scrub_uncorrectable") >= 3);
    }

    #[test]
    fn uncorrectable_faults_retry_from_snapshot_and_recover() {
        let mut set = seeded_set(4);
        set.enable_ecc(true);
        let plan =
            FaultPlan::new(FaultConfig { seed: 21, double_flip_prob: 0.35, ..Default::default() });
        let policy = ResilientLaunchPolicy {
            max_retries: 8,
            backoff_cycles: 100,
            exponential_backoff: true,
            ..ResilientLaunchPolicy::with_faults(plan)
        };
        let report = set.launch_loaded_resilient(1, &policy).unwrap();
        assert!(report.fully_served());
        assert!(report.retries() > 0, "seed 21 at 0.35 must hit at least one uncorrectable");
        for (i, r) in report.per_dpu.iter().enumerate() {
            assert_eq!(
                r.backoff_cycles,
                policy.cumulative_backoff(r.retries()),
                "DPU {i}: geometric backoff accounting"
            );
        }
        // Snapshot restore between attempts keeps inputs exact: results
        // are correct despite the corrupted attempts in between.
        for i in 0..4u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i + 1) * 2);
        }
    }
}

#[cfg(test)]
mod identity_proptests {
    use super::*;
    use dpu_sim::asm::assemble;
    use proptest::prelude::*;

    /// A DMA-in, compute, DMA-out program whose cost skews with the seeded
    /// per-DPU counter at MRAM offset 0.
    fn skew_program() -> Program {
        assemble(
            "movi r1, 0\n\
             movi r2, 0\n\
             movi r3, 8\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             top:\n\
             addi r4, r4, -1\n\
             bne r4, r0, top\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    fn counted_set(dpus: usize, counts: &[u32]) -> DpuSet {
        let mut set = DpuSet::allocate(dpus).unwrap();
        set.define_symbol("n", 8).unwrap();
        for (i, &count) in counts.iter().enumerate().take(dpus) {
            set.copy_to_dpu(DpuId(i as u32), "n", 0, &u64::from(count).to_le_bytes()).unwrap();
        }
        set.load(&skew_program()).unwrap();
        set
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Satellite invariant: with a zero-fault plan the resilient
        /// launch is bit-identical to the plain launch — results, cycles
        /// and traces — at any shape on both sides of the parallel
        /// threshold.
        #[test]
        fn zero_fault_resilient_launch_is_bit_identical(
            dpus in 1usize..8,
            tasklets in 1usize..4,
            counts in proptest::collection::vec(1u32..2_000, 8),
        ) {
            let mut plain = counted_set(dpus, &counts);
            let (expected, expected_bufs) = plain.launch_loaded_traced(tasklets).unwrap();

            let mut res = counted_set(dpus, &counts);
            // An explicit zero plan (not just None) must also be invisible.
            let policy = ResilientLaunchPolicy::with_faults(FaultPlan::none());
            let (report, bufs) = res.launch_loaded_resilient_traced(tasklets, &policy).unwrap();

            prop_assert!(report.fully_served());
            prop_assert_eq!(report.to_launch_result().unwrap(), expected);
            prop_assert_eq!(bufs, expected_bufs);
            for i in 0..dpus as u32 {
                prop_assert_eq!(
                    res.copy_scalar_from(DpuId(i), "n").unwrap(),
                    plain.copy_scalar_from(DpuId(i), "n").unwrap()
                );
            }
        }

        /// Satellite invariant: the same seed yields the same injected
        /// fault sequence and the same `LaunchReport`, whether the host
        /// runs 1-thread sequential or N-thread work-stealing.
        #[test]
        fn same_seed_same_report_across_scheduling(
            seed in proptest::arbitrary::any::<u64>(),
            dpus in 4usize..9,
            counts in proptest::collection::vec(1u32..2_000, 9),
            dma_fail in 0u8..2,
            offline in 0u8..2,
        ) {
            let plan = FaultPlan::new(dpu_sim::faults::FaultConfig {
                seed,
                dma_fail_prob: if dma_fail == 1 { 0.35 } else { 0.0 },
                dpu_offline_prob: if offline == 1 { 0.3 } else { 0.0 },
                ..Default::default()
            });
            let policy = ResilientLaunchPolicy {
                max_retries: 2,
                backoff_cycles: 500,
                ..ResilientLaunchPolicy::with_faults(plan)
            };
            let sequential = ResilientLaunchPolicy { force_sequential: true, ..policy.clone() };

            let mut a = counted_set(dpus, &counts);
            let (rep_par, bufs_par) = a.launch_loaded_resilient_traced(2, &policy).unwrap();
            let mut b = counted_set(dpus, &counts);
            let (rep_seq, bufs_seq) = b.launch_loaded_resilient_traced(2, &sequential).unwrap();

            prop_assert_eq!(rep_par, rep_seq);
            prop_assert_eq!(bufs_par, bufs_seq);
            // Memory end-state agrees too.
            for i in 0..dpus as u32 {
                prop_assert_eq!(
                    a.copy_scalar_from(DpuId(i), "n").unwrap(),
                    b.copy_scalar_from(DpuId(i), "n").unwrap()
                );
            }
        }
    }
}
