//! Whole-set and whole-rank state capture for deterministic replay.
//!
//! A [`SetSnapshot`] freezes every DPU of a [`DpuSet`] — WRAM, the COW
//! MRAM page table, DMA accounting and the perf counter — in O(resident
//! pages) per DPU, not O(capacity): untouched and broadcast-shared MRAM
//! pages are captured by reference. Restoring and re-launching with the
//! same program, seed and engine re-executes bit-identically — results,
//! traces, and fault reports ([`dpu_sim::faults`] draws are pure functions
//! of `(seed, dpu, attempt)`, so they replay too).
//!
//! [`RankSnapshot`] scopes the same capture to one 64-DPU rank — the
//! granularity real UPMEM hosts allocate and recover at — so a rank can be
//! rolled back without disturbing the other 39.

use crate::error::{HostError, Result};
use crate::set::DpuSet;
use dpu_sim::{DpuId, MachineSnapshot, Rank};

/// Frozen state of every DPU in a set. Capturing shares MRAM page storage
/// with the live machines (copy-on-write), so holding a snapshot is cheap
/// until the set diverges from it.
#[derive(Debug, Clone)]
pub struct SetSnapshot {
    per_dpu: Vec<MachineSnapshot>,
}

impl SetSnapshot {
    /// DPUs captured.
    #[must_use]
    pub fn dpus(&self) -> usize {
        self.per_dpu.len()
    }

    /// Materialized MRAM pages across the captured set (shared pages
    /// counted once per DPU referencing them).
    #[must_use]
    pub fn mram_resident_pages(&self) -> usize {
        self.per_dpu.iter().map(MachineSnapshot::mram_resident_pages).sum()
    }
}

/// Frozen state of one rank's DPUs.
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    rank: Rank,
    per_dpu: Vec<MachineSnapshot>,
}

impl RankSnapshot {
    /// The rank this snapshot covers.
    #[must_use]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// DPUs captured.
    #[must_use]
    pub fn dpus(&self) -> usize {
        self.per_dpu.len()
    }
}

impl DpuSet {
    /// Capture every DPU's state for later [`DpuSet::restore`].
    #[must_use]
    pub fn snapshot(&self) -> SetSnapshot {
        SetSnapshot { per_dpu: self.system().iter().map(|(_, m)| m.snapshot()).collect() }
    }

    /// Roll every DPU back to `snap`. The set's symbols, loaded program
    /// and engine pin are host-side state and are left as they are.
    ///
    /// # Errors
    /// [`HostError::SnapshotMismatch`] when the snapshot was taken from a
    /// set of a different size (nothing is restored).
    pub fn restore(&mut self, snap: &SetSnapshot) -> Result<()> {
        if snap.per_dpu.len() != self.len() {
            return Err(HostError::SnapshotMismatch {
                expected: self.len(),
                actual: snap.per_dpu.len(),
            });
        }
        for ((_, dpu), s) in self.system_mut().iter_mut().zip(&snap.per_dpu) {
            dpu.restore(s)?;
        }
        Ok(())
    }

    /// Capture one rank's DPUs for later [`DpuSet::restore_rank`].
    ///
    /// # Errors
    /// [`HostError::NoSuchDpu`] when `rank` is outside the set.
    pub fn snapshot_rank(&self, rank: u32) -> Result<RankSnapshot> {
        let ranks = self.system().ranks();
        let Some(&r) = ranks.get(rank as usize) else {
            return Err(HostError::NoSuchDpu { index: rank * 64, len: self.len() });
        };
        let per_dpu = (r.first_dpu..r.first_dpu + r.dpus)
            .map(|i| self.system().dpu(DpuId(i)).snapshot())
            .collect();
        Ok(RankSnapshot { rank: r, per_dpu })
    }

    /// Roll one rank back to `snap`, leaving every other rank untouched.
    ///
    /// # Errors
    /// [`HostError::SnapshotMismatch`] when the rank's shape in this set
    /// differs from the captured one.
    pub fn restore_rank(&mut self, snap: &RankSnapshot) -> Result<()> {
        let ranks = self.system().ranks();
        if ranks.get(snap.rank.index as usize) != Some(&snap.rank) {
            return Err(HostError::SnapshotMismatch {
                expected: self.len(),
                actual: snap.per_dpu.len(),
            });
        }
        for (k, s) in snap.per_dpu.iter().enumerate() {
            self.system_mut().dpu_mut(DpuId(snap.rank.first_dpu + k as u32)).restore(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sim::asm::assemble;
    use dpu_sim::Program;

    fn double_program() -> Program {
        assemble(
            "movi r1, 0\n\
             movi r2, 0\n\
             movi r3, 8\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    fn seeded_set(n: usize) -> DpuSet {
        let mut set = DpuSet::allocate(n).unwrap();
        set.define_symbol("x", 8).unwrap();
        for i in 0..n {
            set.copy_to_dpu(DpuId(i as u32), "x", 0, &(i as u64 + 1).to_le_bytes()).unwrap();
        }
        set.load(&double_program()).unwrap();
        set
    }

    #[test]
    fn snapshot_restore_round_trips_results_and_memory() {
        let mut set = seeded_set(6);
        let snap = set.snapshot();
        let first = set.launch_loaded(1).unwrap();
        let after_first: Vec<u64> =
            (0..6).map(|i| set.copy_scalar_from(DpuId(i), "x").unwrap()).collect();

        set.restore(&snap).unwrap();
        for i in 0..6u32 {
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), u64::from(i) + 1);
        }
        let replay = set.launch_loaded(1).unwrap();
        assert_eq!(replay, first, "snapshot -> replay must be bit-identical");
        let after_replay: Vec<u64> =
            (0..6).map(|i| set.copy_scalar_from(DpuId(i), "x").unwrap()).collect();
        assert_eq!(after_replay, after_first);
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let set_a = seeded_set(4);
        let mut set_b = seeded_set(5);
        let snap = set_a.snapshot();
        assert!(matches!(
            set_b.restore(&snap),
            Err(HostError::SnapshotMismatch { expected: 5, actual: 4 })
        ));
        // Nothing was restored.
        assert_eq!(set_b.copy_scalar_from(DpuId(0), "x").unwrap(), 1);
    }

    #[test]
    fn rank_restore_only_touches_its_rank() {
        // 100 DPUs = rank 0 (64 DPUs) + rank 1 (36 DPUs).
        let mut set = seeded_set(100);
        let snap = set.snapshot_rank(1).unwrap();
        assert_eq!(snap.dpus(), 36);
        set.launch_loaded(1).unwrap(); // doubles every DPU's scalar
        set.restore_rank(&snap).unwrap();
        for i in 0..100u32 {
            let expected = if i < 64 { (u64::from(i) + 1) * 2 } else { u64::from(i) + 1 };
            assert_eq!(set.copy_scalar_from(DpuId(i), "x").unwrap(), expected, "DPU {i}");
        }
        assert!(set.snapshot_rank(2).is_err());
    }

    #[test]
    fn snapshot_shares_broadcast_pages() {
        let mut set = DpuSet::allocate(8).unwrap();
        set.define_symbol("w", 256 * 1024).unwrap();
        set.copy_to("w", 0, &vec![7u8; 256 * 1024]).unwrap();
        let before = set.system().mram_residency();
        let snap = set.snapshot();
        let after = set.system().mram_residency();
        // Capturing adds no page storage: the snapshot aliases the arena.
        assert_eq!(before.distinct_pages, after.distinct_pages);
        assert_eq!(snap.dpus(), 8);
        assert_eq!(snap.mram_resident_pages(), 8 * 4, "4 shared 64 KiB pages per DPU");
    }
}
