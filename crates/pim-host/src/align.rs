//! The 8-byte transfer rule and padding helpers.
//!
//! UPMEM requires every host↔MRAM buffer to be aligned on 8 bytes and its
//! length divisible by 8 (paper §3.2). For data whose natural size is not a
//! multiple of 8 — a 28×28 MNIST image is 784 bytes, fine, but a row of
//! quantized GEMM output often is not — the paper's workaround is:
//!
//! 1. pad the buffer up to the next multiple of 8 before sending, and
//! 2. tell the DPU the *unpadded* length through a separate scalar symbol so
//!    padded bytes never enter the computation.
//!
//! [`PaddedBuf`] packages both pieces so the pattern can't be half-applied.

use crate::error::{HostError, Result};

/// Alignment unit for host transfers.
pub const ALIGN: usize = dpu_sim::params::HOST_TRANSFER_ALIGN;

/// Smallest multiple of 8 that is `>= len`.
#[must_use]
pub fn padded_len(len: usize) -> usize {
    len.div_ceil(ALIGN) * ALIGN
}

/// Check that a length or offset obeys the 8-byte rule.
///
/// # Errors
/// [`HostError::Alignment`] when it does not.
pub fn check_aligned(what: &'static str, value: usize) -> Result<()> {
    if !value.is_multiple_of(ALIGN) {
        return Err(HostError::Alignment { what, value });
    }
    Ok(())
}

/// Pad `data` with zeros to the next multiple of 8 bytes.
#[must_use]
pub fn pad_to_8(data: &[u8]) -> Vec<u8> {
    let mut v = data.to_vec();
    v.resize(padded_len(data.len()), 0);
    v
}

/// A transfer buffer carrying its true (unpadded) length.
///
/// This is the host-side representation of the paper's padding workaround:
/// the padded bytes go over the bus, the `len` scalar goes to the DPU so it
/// "does not mistakenly include these padded bytes in its computations".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedBuf {
    /// Padded payload (length is a multiple of 8).
    pub data: Vec<u8>,
    /// The meaningful prefix length.
    pub len: usize,
}

impl PaddedBuf {
    /// Wrap and pad a buffer.
    #[must_use]
    pub fn new(data: &[u8]) -> Self {
        Self { data: pad_to_8(data), len: data.len() }
    }

    /// The meaningful bytes (drops the padding).
    #[must_use]
    pub fn unpadded(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Number of padding bytes appended.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.data.len() - self.len
    }

    /// The true length encoded as the 8-byte scalar UPMEM programs receive.
    #[must_use]
    pub fn len_symbol_bytes(&self) -> [u8; 8] {
        (self.len as u64).to_le_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_len_rounds_up() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 8);
        assert_eq!(padded_len(8), 8);
        assert_eq!(padded_len(9), 16);
        assert_eq!(padded_len(784), 784); // a full MNIST image is aligned
        assert_eq!(padded_len(785), 792);
    }

    #[test]
    fn check_aligned_enforces_rule() {
        assert!(check_aligned("length", 16).is_ok());
        assert!(matches!(
            check_aligned("length", 12),
            Err(HostError::Alignment { what: "length", value: 12 })
        ));
    }

    #[test]
    fn padded_buf_round_trip() {
        let src = [1u8, 2, 3, 4, 5];
        let b = PaddedBuf::new(&src);
        assert_eq!(b.data.len(), 8);
        assert_eq!(b.padding(), 3);
        assert_eq!(b.unpadded(), &src);
        assert_eq!(u64::from_le_bytes(b.len_symbol_bytes()), 5);
        assert_eq!(&b.data[5..], &[0, 0, 0]);
    }

    #[test]
    fn aligned_input_gets_no_padding() {
        let b = PaddedBuf::new(&[7u8; 24]);
        assert_eq!(b.padding(), 0);
        assert_eq!(b.unpadded().len(), 24);
    }
}
