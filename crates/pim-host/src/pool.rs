//! Persistent rank-sharded worker pool.
//!
//! The launch scheduler used to spawn a fresh scoped thread per worker on
//! every launch — fine at 32 DPUs, measurable overhead at 2,560 across a
//! serving workload's thousands of launches. [`WorkerPool`] keeps the
//! workers alive for the lifetime of the owning [`crate::DpuSet`] and
//! publishes each launch to them as a *batch* of indexed jobs.
//!
//! ## Scheduling
//!
//! A batch is split into contiguous **shards** (one per rank at rank
//! scale — 64 DPUs each — or one per worker for small sets). Each worker
//! is pinned to a home shard by its index so rank-sized launches stay
//! rank-affine, claims jobs off the shard's atomic cursor one DPU at a
//! time, and steals from the other shards once its own drains — so a few
//! expensive DPUs cannot idle the rest of the pool, exactly like the old
//! per-launch work stealing.
//!
//! ## Safety
//!
//! Jobs borrow launch-local state (the per-DPU machines and trace
//! buffers), which is shorter-lived than the pool threads. The pool hands
//! workers a lifetime-erased pointer to the job closure; this is sound
//! because [`WorkerPool::run_batch`] does not return until every job has
//! completed, and a worker only dereferences the pointer while it holds a
//! claimed, not-yet-completed job. This is the standard scoped-pool
//! construction (crossbeam's scope does the same dance per spawn); it is
//! the one `unsafe` in the crate, audited here.

#![allow(unsafe_code)]

use crate::launch::panic_detail;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime-erased pointer to a batch's job closure; see the module docs
/// for why dereferencing it from worker threads is sound.
struct RunPtr(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer
// is only dereferenced while `run_batch` keeps the closure alive.
unsafe impl Send for RunPtr {}
unsafe impl Sync for RunPtr {}

/// One contiguous range of job indexes with an atomic claim cursor.
struct Shard {
    start: usize,
    len: usize,
    next: AtomicUsize,
}

/// Completion state of a batch, guarded by a mutex so the publishing
/// thread can sleep on it.
struct Done {
    remaining: usize,
    panic: Option<String>,
}

/// One launch's worth of jobs, shared between the publisher and the
/// workers.
struct Batch {
    run: RunPtr,
    shards: Vec<Shard>,
    /// Jobs claimed per worker (index = worker), for `obs.pool.*`.
    claims: Vec<AtomicU64>,
    done: Mutex<Done>,
    done_cv: Condvar,
}

impl Batch {
    /// Worker `w`'s claim-and-run loop: claim from the home shard, steal
    /// from the others when it drains, stop when every shard is dry.
    fn execute(&self, w: usize, workers: usize) {
        let nshards = self.shards.len();
        let home = w * nshards / workers;
        'claim: loop {
            for k in 0..nshards {
                let shard = &self.shards[(home + k) % nshards];
                let i = shard.next.fetch_add(1, Ordering::Relaxed);
                if i >= shard.len {
                    continue; // drained — try the next shard
                }
                let idx = shard.start + i;
                // SAFETY: `run_batch` blocks until `remaining == 0`; this
                // job has not completed yet, so the closure is alive.
                let job = unsafe { &*self.run.0 };
                let outcome = catch_unwind(AssertUnwindSafe(|| job(idx, w)));
                self.claims[w].fetch_add(1, Ordering::Relaxed);
                let mut done = self.done.lock().expect("pool done lock");
                if let Err(payload) = outcome {
                    // First panic wins; `run_batch` re-raises it after the
                    // batch drains, mirroring a scoped-spawn join failure,
                    // and the worker thread itself survives.
                    done.panic.get_or_insert_with(|| panic_detail(payload.as_ref()));
                }
                done.remaining -= 1;
                if done.remaining == 0 {
                    self.done_cv.notify_all();
                }
                continue 'claim;
            }
            return; // all shards drained
        }
    }
}

/// Hand-off slot the publisher writes batches into.
struct PoolState {
    /// Bumped per batch so a worker can tell a new batch from one it
    /// already drained.
    epoch: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// How one batch's jobs spread over the pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct BatchStats {
    /// Jobs claimed per worker (index = worker).
    pub claims: Vec<u64>,
    /// Shards the batch was split into.
    pub shards: usize,
}

/// A persistent pool of worker threads, created once per [`crate::DpuSet`]
/// and reused across launches. Threads are joined on drop.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { epoch: 0, batch: None, shutdown: false }),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pim-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w, workers))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// A pool sized to the host: one worker per available core, capped at
    /// the set size (extra workers would never win a claim).
    pub fn for_dpus(n: usize) -> Self {
        Self::new(std::thread::available_parallelism().map_or(4, usize::from).min(n))
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run jobs `0..n` across the pool, splitting them into shards of
    /// `shard_size` indexes, and block until all complete. `f` is called
    /// as `f(job_index, worker_index)`; every index in `0..n` is called
    /// exactly once. Panics inside a job are re-raised here after the
    /// batch drains (the worker threads survive).
    pub fn run_batch(
        &self,
        n: usize,
        shard_size: usize,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> BatchStats {
        if n == 0 {
            return BatchStats { claims: vec![0; self.workers()], shards: 0 };
        }
        let shard_size = shard_size.max(1);
        let shards: Vec<Shard> = (0..n.div_ceil(shard_size))
            .map(|s| Shard {
                start: s * shard_size,
                len: shard_size.min(n - s * shard_size),
                next: AtomicUsize::new(0),
            })
            .collect();
        let nshards = shards.len();
        let batch = Arc::new(Batch {
            // SAFETY (lifetime erasure): the pointer outlives its use —
            // this function drops the batch reference it published before
            // returning, and workers only dereference while `remaining >
            // 0`, which this function outwaits below.
            run: RunPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync),
                    *const (dyn Fn(usize, usize) + Sync + 'static),
                >(f)
            }),
            shards,
            claims: (0..self.workers()).map(|_| AtomicU64::new(0)).collect(),
            done: Mutex::new(Done { remaining: n, panic: None }),
            done_cv: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.epoch += 1;
            st.batch = Some(Arc::clone(&batch));
            self.shared.work_cv.notify_all();
        }
        let panic = {
            let mut done = batch.done.lock().expect("pool done lock");
            while done.remaining > 0 {
                done = batch.done_cv.wait(done).expect("pool done wait");
            }
            done.panic.take()
        };
        // Unpublish so no worker retains the batch (its claim loop would
        // find every shard drained anyway, but dropping the Arc promptly
        // keeps the closure pointer dead once we return).
        self.shared.state.lock().expect("pool state lock").batch = None;
        if let Some(detail) = panic {
            panic!("pool worker panicked: {detail}");
        }
        BatchStats {
            claims: batch.claims.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            shards: nshards,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, w: usize, workers: usize) {
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("pool state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(b) = &st.batch {
                        seen = st.epoch;
                        break Arc::clone(b);
                    }
                }
                st = shared.work_cv.wait(st).expect("pool work wait");
            }
        };
        batch.execute(w, workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_runs_exactly_once_across_batches() {
        let pool = WorkerPool::new(4);
        for n in [1usize, 3, 7, 64, 257] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let stats = pool.run_batch(n, 16, &|i, _w| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
            assert_eq!(stats.claims.iter().sum::<u64>(), n as u64);
            assert_eq!(stats.shards, n.div_ceil(16));
        }
    }

    #[test]
    fn pool_is_reusable_after_a_job_panic() {
        let pool = WorkerPool::new(2);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(8, 4, &|i, _w| {
                assert!(i != 5, "job 5 dies");
            });
        }));
        assert!(boom.is_err());
        // Workers survived; the next batch completes normally.
        let stats = pool.run_batch(8, 4, &|_i, _w| {});
        assert_eq!(stats.claims.iter().sum::<u64>(), 8);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let pool = WorkerPool::new(8);
        let stats = pool.run_batch(2, 1, &|_i, _w| {});
        assert_eq!(stats.claims.iter().sum::<u64>(), 2);
        assert_eq!(stats.shards, 2);
    }

    #[test]
    fn workers_spread_across_shards() {
        // With as many workers as shards and jobs that block until every
        // shard has been entered, home-shard pinning must place distinct
        // workers on distinct shards (no herd on shard 0).
        let pool = WorkerPool::new(4);
        let entered: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let stats = pool.run_batch(4, 1, &|i, _w| {
            entered[i].fetch_add(1, Ordering::Relaxed);
            // Busy-wait until all four shards have been entered — only
            // possible when each worker started on its own home shard.
            while entered.iter().any(|e| e.load(Ordering::Relaxed) == 0) {
                std::thread::yield_now();
            }
        });
        assert_eq!(stats.claims, vec![1, 1, 1, 1]);
    }
}
