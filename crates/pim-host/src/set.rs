//! DPU set allocation and broadcast transfers.
//!
//! A [`DpuSet`] is the host's handle on a group of simulated DPUs, mirroring
//! `dpu_alloc` / `dpu_copy_to` / `dpu_copy_from` / `dpu_launch` from the
//! UPMEM SDK. All DPUs of a set share the same symbol layout (they run the
//! same program); broadcast copies ([`DpuSet::copy_to`], the paper's
//! Eq. 3.1) write identical bytes to every DPU, while per-DPU copies and
//! [`crate::xfer::XferBatch`] scatter distinct buffers.

use crate::error::{HostError, Result};
use crate::symbol::{Symbol, SymbolTable};
use dpu_sim::{DpuId, DpuParams, Engine, ExecProgram, PimSystem};
use pim_trace::{HostDirection, TraceBuffer, TraceEvent, TraceSink};

/// A host-allocated set of DPUs with a shared symbol table.
#[derive(Debug)]
pub struct DpuSet {
    system: PimSystem,
    symbols: SymbolTable,
    loaded: Option<ExecProgram>,
    engine: Option<Engine>,
    xfer_stats: std::collections::BTreeMap<String, TransferStats>,
    // `RefCell` because gather paths (`copy_from_dpu`) take `&self`; host
    // transfers are strictly host-thread-sequential, so no contention.
    host_trace: Option<std::cell::RefCell<HostTrace>>,
}

/// Recording state for host↔MRAM transfer events.
#[derive(Debug, Default)]
struct HostTrace {
    buffer: TraceBuffer,
    seq: u64,
}

/// Host-link traffic accumulated for one symbol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes sent host → DPUs (broadcasts count once per DPU reached).
    pub to_dpu_bytes: u64,
    /// Bytes read DPUs → host.
    pub from_dpu_bytes: u64,
    /// Individual transfer operations.
    pub operations: u64,
}

impl DpuSet {
    /// Allocate `n` DPUs with default device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the 2560-DPU
    /// system.
    pub fn allocate(n: usize) -> Result<Self> {
        Self::allocate_with(n, DpuParams::default())
    }

    /// Allocate `n` DPUs with explicit device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the system.
    pub fn allocate_with(n: usize, params: DpuParams) -> Result<Self> {
        if n == 0 || n > dpu_sim::params::SYSTEM_DPUS {
            return Err(HostError::BadAllocation { requested: n });
        }
        Ok(Self {
            system: PimSystem::new(n, params),
            symbols: SymbolTable::new(),
            loaded: None,
            engine: None,
            xfer_stats: std::collections::BTreeMap::new(),
            host_trace: None,
        })
    }

    /// Start recording every host↔MRAM transfer as a
    /// [`TraceEvent::HostTransfer`]. Events carry a monotonic sequence
    /// number (host transfers have no DPU cycle stamp) and the symbol,
    /// byte count, direction and target DPU (`None` for broadcasts).
    pub fn enable_host_tracing(&mut self) {
        if self.host_trace.is_none() {
            self.host_trace = Some(std::cell::RefCell::new(HostTrace::default()));
        }
    }

    /// Stop recording host transfers and hand back everything recorded
    /// since [`DpuSet::enable_host_tracing`], or `None` when tracing was
    /// never enabled.
    pub fn take_host_trace(&mut self) -> Option<TraceBuffer> {
        self.host_trace.take().map(|cell| cell.into_inner().buffer)
    }

    /// Snapshot of the host transfers recorded so far (empty buffer when
    /// tracing is disabled). Recording continues.
    #[must_use]
    pub fn host_trace_snapshot(&self) -> TraceBuffer {
        self.host_trace.as_ref().map_or_else(TraceBuffer::new, |cell| cell.borrow().buffer.clone())
    }

    fn record_host(&self, direction: HostDirection, symbol: &str, bytes: u64, dpu: Option<u32>) {
        if let Some(cell) = &self.host_trace {
            let mut t = cell.borrow_mut();
            let seq = t.seq;
            t.seq += 1;
            t.buffer.record(TraceEvent::HostTransfer {
                direction,
                symbol: symbol.to_owned(),
                bytes,
                dpu,
                seq,
            });
        }
    }

    /// Number of DPUs in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.system.len()
    }

    /// True when the set is empty (never happens after allocation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.system.is_empty()
    }

    /// Device parameters of the set.
    #[must_use]
    pub fn params(&self) -> DpuParams {
        self.system.params
    }

    /// The shared symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Define a new MRAM symbol on every DPU of the set.
    ///
    /// # Errors
    /// See [`SymbolTable::define`].
    pub fn define_symbol(&mut self, name: &str, capacity: usize) -> Result<Symbol> {
        self.symbols.define(name, capacity)
    }

    /// Borrow the underlying system (for Tier-2 kernels that need raw MRAM
    /// access).
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Mutably borrow the underlying system.
    pub fn system_mut(&mut self) -> &mut PimSystem {
        &mut self.system
    }

    /// Split-borrow the system together with the loaded execution form, so
    /// the launch path can run the stored program without cloning it.
    pub(crate) fn system_and_loaded(&mut self) -> (&mut PimSystem, Option<&ExecProgram>) {
        (&mut self.system, self.loaded.as_ref())
    }

    /// Load a program onto every DPU of the set (`dpu_load`): validates
    /// control flow and the IRAM footprint once and decodes the program
    /// into its [`ExecProgram`] execution form — including the superblock
    /// decomposition the interpreter's fast path dispatches from — kept for
    /// [`DpuSet::launch_loaded`]. The SDK's load-once/launch-many pattern —
    /// launches of the loaded program skip validation, decoding, and
    /// superblock analysis.
    ///
    /// # Errors
    /// [`HostError::Dpu`] when the program is malformed or exceeds IRAM.
    pub fn load(&mut self, program: &dpu_sim::Program) -> Result<()> {
        let exec = ExecProgram::compile(program)?;
        let iram = self.system.params.iram_bytes;
        if exec.iram_bytes() > iram {
            return Err(HostError::Dpu(dpu_sim::Error::ProgramTooLarge {
                bytes: exec.iram_bytes(),
                iram_bytes: iram,
            }));
        }
        self.loaded = Some(exec);
        Ok(())
    }

    /// The currently loaded program, if any.
    #[must_use]
    pub fn loaded_program(&self) -> Option<&dpu_sim::Program> {
        self.loaded.as_ref().map(ExecProgram::source)
    }

    /// Pin the execution engine every launch from this set uses
    /// (`None` restores the ambient default, which honors the
    /// `PIM_SIM_ENGINE` environment override — see
    /// [`Engine::effective`]).
    pub fn set_engine(&mut self, engine: Option<Engine>) {
        self.engine = engine;
    }

    /// The engine pinned by [`DpuSet::set_engine`], if any.
    #[must_use]
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    fn check_dpu(&self, dpu: DpuId) -> Result<()> {
        if (dpu.0 as usize) < self.system.len() {
            Ok(())
        } else {
            Err(HostError::NoSuchDpu { index: dpu.0, len: self.system.len() })
        }
    }

    /// Broadcast `src` to `symbol` at `symbol_offset` on **every** DPU
    /// (`dpu_copy_to`, Eq. 3.1). `src` must obey the 8-byte rule — use
    /// [`crate::align::PaddedBuf`] for arbitrary payloads.
    ///
    /// # Errors
    /// Alignment, symbol and bounds violations.
    pub fn copy_to(&mut self, symbol: &str, symbol_offset: usize, src: &[u8]) -> Result<()> {
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        for (_, dpu) in self.system.iter_mut() {
            dpu.mram.write(addr, src)?;
        }
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += (src.len() * self.system.len()) as u64;
        stats.operations += self.system.len() as u64;
        // A broadcast is one host-link operation reaching every DPU.
        self.record_host(
            HostDirection::HostToMram,
            symbol,
            (src.len() * self.system.len()) as u64,
            None,
        );
        Ok(())
    }

    /// Copy `src` to a single DPU's `symbol` at `symbol_offset`.
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_to_dpu(
        &mut self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        src: &[u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        self.system.dpu_mut(dpu).mram.write(addr, src)?;
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += src.len() as u64;
        stats.operations += 1;
        self.record_host(HostDirection::HostToMram, symbol, src.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Read `dst.len()` bytes from a single DPU's `symbol` at
    /// `symbol_offset` (`dpu_copy_from`).
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_from_dpu(
        &self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        dst: &mut [u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, dst.len())?;
        self.system.dpu(dpu).mram.read(addr, dst)?;
        // `xfer_stats` counts only the host→DPU direction (it dominates
        // every workload here, and this method is `&self`); the trace log,
        // behind a `RefCell`, records gathers too.
        self.record_host(HostDirection::MramToHost, symbol, dst.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Broadcast a scalar (the idiom used to communicate unpadded lengths,
    /// §3.2): writes the 8-byte little-endian encoding of `value`.
    ///
    /// # Errors
    /// Symbol and bounds violations.
    pub fn copy_scalar_to(&mut self, symbol: &str, value: u64) -> Result<()> {
        self.copy_to(symbol, 0, &value.to_le_bytes())
    }

    /// Per-symbol host-link traffic so far (host → DPU direction).
    #[must_use]
    pub fn transfer_stats(&self) -> &std::collections::BTreeMap<String, TransferStats> {
        &self.xfer_stats
    }

    /// Total host → DPU bytes across all symbols.
    #[must_use]
    pub fn total_bytes_to_dpus(&self) -> u64 {
        self.xfer_stats.values().map(|s| s.to_dpu_bytes).sum()
    }

    /// Host-link seconds for the traffic so far at `bytes_per_sec`
    /// effective bandwidth (the Fig. 4.6 bottleneck, measured on the
    /// functional path instead of estimated).
    #[must_use]
    pub fn transfer_seconds(&self, bytes_per_sec: f64) -> f64 {
        self.total_bytes_to_dpus() as f64 / bytes_per_sec
    }

    /// Read back a scalar from one DPU.
    ///
    /// # Errors
    /// Symbol, bounds, or unknown-DPU violations.
    pub fn copy_scalar_from(&self, dpu: DpuId, symbol: &str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.copy_from_dpu(dpu, symbol, 0, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_bounds() {
        assert!(matches!(DpuSet::allocate(0), Err(HostError::BadAllocation { .. })));
        assert!(matches!(DpuSet::allocate(4000), Err(HostError::BadAllocation { .. })));
        assert_eq!(DpuSet::allocate(16).unwrap().len(), 16);
    }

    #[test]
    fn broadcast_reaches_every_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("buf", 64).unwrap();
        set.copy_to("buf", 8, &[9u8; 16]).unwrap();
        for i in 0..4 {
            let mut out = [0u8; 16];
            set.copy_from_dpu(DpuId(i), "buf", 8, &mut out).unwrap();
            assert_eq!(out, [9u8; 16]);
        }
    }

    #[test]
    fn per_dpu_copy_is_isolated() {
        let mut set = DpuSet::allocate(3).unwrap();
        set.define_symbol("buf", 16).unwrap();
        set.copy_to_dpu(DpuId(1), "buf", 0, &[5u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 8]);
        set.copy_from_dpu(DpuId(1), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [5u8; 8]);
    }

    #[test]
    fn unknown_dpu_rejected() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("buf", 16).unwrap();
        let r = set.copy_to_dpu(DpuId(5), "buf", 0, &[0u8; 8]);
        assert!(matches!(r, Err(HostError::NoSuchDpu { index: 5, len: 2 })));
    }

    #[test]
    fn misaligned_broadcast_rejected() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 16).unwrap();
        assert!(matches!(set.copy_to("buf", 0, &[0u8; 5]), Err(HostError::Alignment { .. })));
    }

    #[test]
    fn scalar_round_trip() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("n_images", 8).unwrap();
        set.copy_scalar_to("n_images", 784).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(1), "n_images").unwrap(), 784);
    }
}

#[cfg(test)]
mod transfer_stats_tests {
    use super::*;

    #[test]
    fn broadcast_counts_once_per_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("b", 64).unwrap();
        set.copy_to("b", 0, &[0u8; 32]).unwrap();
        let s = set.transfer_stats()["b"];
        assert_eq!(s.to_dpu_bytes, 32 * 4);
        assert_eq!(s.operations, 4);
    }

    #[test]
    fn per_dpu_copies_accumulate_per_symbol() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("a", 16).unwrap();
        set.define_symbol("b", 16).unwrap();
        set.copy_to_dpu(DpuId(0), "a", 0, &[0u8; 8]).unwrap();
        set.copy_to_dpu(DpuId(1), "a", 0, &[0u8; 16]).unwrap();
        set.copy_to_dpu(DpuId(0), "b", 0, &[0u8; 8]).unwrap();
        assert_eq!(set.transfer_stats()["a"].to_dpu_bytes, 24);
        assert_eq!(set.transfer_stats()["b"].to_dpu_bytes, 8);
        assert_eq!(set.total_bytes_to_dpus(), 32);
        // 32 bytes at 1 GB/s.
        assert!((set.transfer_seconds(1e9) - 3.2e-8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod host_trace_tests {
    use super::*;
    use pim_trace::TraceEvent;

    #[test]
    fn disabled_by_default() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        assert!(set.host_trace_snapshot().is_empty());
        assert!(set.take_host_trace().is_none());
    }

    #[test]
    fn records_all_directions_with_monotonic_seq() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 16).unwrap();
        set.enable_host_tracing();
        set.copy_to("x", 0, &[0u8; 8]).unwrap(); // broadcast: 8 B x 2 DPUs
        set.copy_to_dpu(DpuId(1), "x", 8, &[0u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "x", 0, &mut out).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let events = trace.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            TraceEvent::HostTransfer { direction, bytes, dpu, seq, symbol } => {
                assert_eq!(*direction, HostDirection::HostToMram);
                assert_eq!(*bytes, 16); // 8 bytes to each of 2 DPUs
                assert_eq!(*dpu, None);
                assert_eq!(*seq, 0);
                assert_eq!(symbol, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[2] {
            TraceEvent::HostTransfer { direction, dpu, seq, .. } => {
                assert_eq!(*direction, HostDirection::MramToHost);
                assert_eq!(*dpu, Some(0));
                assert_eq!(*seq, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xfer_batches_are_traced_through_the_copy_paths() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("row", 8).unwrap();
        set.enable_host_tracing();
        let mut b = crate::XferBatch::new();
        b.prepare(vec![1u8; 8]);
        b.prepare(vec![2u8; 8]);
        b.push(&mut set, "row", 0, 8).unwrap();
        let _ = crate::XferBatch::gather(&set, "row", 0, 8).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let to = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::HostToMram, .. })
        });
        let from = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::MramToHost, .. })
        });
        assert_eq!((to, from), (2, 2));
    }
}
