//! DPU set allocation and broadcast transfers.
//!
//! A [`DpuSet`] is the host's handle on a group of simulated DPUs, mirroring
//! `dpu_alloc` / `dpu_copy_to` / `dpu_copy_from` / `dpu_launch` from the
//! UPMEM SDK. All DPUs of a set share the same symbol layout (they run the
//! same program); broadcast copies ([`DpuSet::copy_to`], the paper's
//! Eq. 3.1) write identical bytes to every DPU, while per-DPU copies and
//! [`crate::xfer::XferBatch`] scatter distinct buffers.

use crate::crc32c::crc32c;
use crate::error::{HostError, Result};
use crate::launch::{Sched, DEFAULT_PARALLEL_THRESHOLD};
use crate::link::{LinkPolicy, LinkStats};
use crate::pool::WorkerPool;
use crate::symbol::{Symbol, SymbolTable};
use dpu_sim::{DpuId, DpuParams, Engine, ExecProgram, PimSystem, ScrubReport, MRAM_PAGE_BYTES};
use pim_trace::{HostDirection, TraceBuffer, TraceEvent, TraceSink};
use std::sync::Arc;

/// A host-allocated set of DPUs with a shared symbol table.
#[derive(Debug)]
pub struct DpuSet {
    system: PimSystem,
    symbols: SymbolTable,
    loaded: Option<ExecProgram>,
    engine: Option<Engine>,
    // The persistent worker pool launches run on, created lazily by the
    // first launch that crosses the parallel threshold and reused for the
    // life of the set.
    pool: Option<WorkerPool>,
    parallel_threshold: Option<usize>,
    xfer_stats: std::collections::BTreeMap<String, TransferStats>,
    // `RefCell` because gather paths (`copy_from_dpu`) take `&self`; host
    // transfers are strictly host-thread-sequential, so no contention.
    host_trace: Option<std::cell::RefCell<HostTrace>>,
    // Checked-transfer state (CRC framing + link fault injection), same
    // `RefCell` rationale as `host_trace`.
    link: Option<std::cell::RefCell<LinkState>>,
}

/// Mutable state of the checked-transfer layer.
#[derive(Debug)]
struct LinkState {
    policy: LinkPolicy,
    /// Monotone transfer sequence number: the determinism axis of link
    /// fault draws (each logical transfer gets a fresh draw site).
    seq: u64,
    stats: LinkStats,
}

/// Recording state for host↔MRAM transfer events.
#[derive(Debug, Default)]
struct HostTrace {
    buffer: TraceBuffer,
    seq: u64,
}

/// Host-link traffic accumulated for one symbol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes sent host → DPUs (broadcasts count once per DPU reached).
    pub to_dpu_bytes: u64,
    /// Bytes read DPUs → host.
    pub from_dpu_bytes: u64,
    /// Individual transfer operations.
    pub operations: u64,
}

impl DpuSet {
    /// Allocate `n` DPUs with default device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the 2560-DPU
    /// system.
    pub fn allocate(n: usize) -> Result<Self> {
        Self::allocate_with(n, DpuParams::default())
    }

    /// Allocate `n` DPUs with explicit device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the system.
    pub fn allocate_with(n: usize, params: DpuParams) -> Result<Self> {
        if n == 0 || n > dpu_sim::params::SYSTEM_DPUS {
            return Err(HostError::BadAllocation { requested: n });
        }
        Ok(Self {
            system: PimSystem::new(n, params),
            symbols: SymbolTable::new(),
            loaded: None,
            engine: None,
            pool: None,
            parallel_threshold: None,
            xfer_stats: std::collections::BTreeMap::new(),
            host_trace: None,
            link: None,
        })
    }

    /// Arm checked transfers: every subsequent host↔DPU copy is framed
    /// with a CRC-32C, verified on the receiving side, and retried with
    /// exponential backoff under `policy` (which may also carry a seeded
    /// [`crate::link::LinkFaultPlan`] to inject link faults). `None`
    /// restores plain unchecked transfers.
    pub fn set_link_policy(&mut self, policy: Option<LinkPolicy>) {
        self.link = policy.map(|policy| {
            std::cell::RefCell::new(LinkState { policy, seq: 0, stats: LinkStats::default() })
        });
    }

    /// The checked-transfer policy currently armed, if any.
    #[must_use]
    pub fn link_policy(&self) -> Option<LinkPolicy> {
        self.link.as_ref().map(|cell| cell.borrow().policy)
    }

    /// Telemetry accumulated by checked transfers so far (zeroed when
    /// checked transfers were never armed).
    #[must_use]
    pub fn link_stats(&self) -> LinkStats {
        self.link.as_ref().map(|cell| cell.borrow().stats).unwrap_or_default()
    }

    /// Begin one logical checked transfer: claim a sequence number and
    /// copy out the policy. `None` when transfers are unchecked.
    fn link_begin(&self) -> Option<(LinkPolicy, u64)> {
        self.link.as_ref().map(|cell| {
            let mut st = cell.borrow_mut();
            let seq = st.seq;
            st.seq += 1;
            (st.policy, seq)
        })
    }

    fn link_account(&self, f: impl FnOnce(&mut LinkStats)) {
        if let Some(cell) = &self.link {
            f(&mut cell.borrow_mut().stats);
        }
    }

    /// Turn the MRAM SEC-DED sidecar on (or off) for every DPU of the
    /// set. See [`dpu_sim::CowMemory::set_ecc`]: enabling back-fills
    /// codes for resident pages; broadcast pages share one sidecar.
    pub fn enable_ecc(&mut self, on: bool) {
        for (_, dpu) in self.system.iter_mut() {
            dpu.mram.set_ecc(on);
        }
    }

    /// Whether the set's MRAM ECC sidecar is enabled (uniform across the
    /// set; reports DPU 0's state).
    #[must_use]
    pub fn ecc_enabled(&self) -> bool {
        self.system.dpu(DpuId(0)).mram.ecc_enabled()
    }

    /// Scrub every DPU's resident MRAM pages against the ECC sidecar,
    /// repairing single-bit errors in place, and return the merged
    /// report. A no-op (empty report) when ECC is off.
    pub fn scrub_all(&mut self) -> ScrubReport {
        let mut total = ScrubReport::default();
        for (_, dpu) in self.system.iter_mut() {
            total.merge(&dpu.mram.scrub());
        }
        total
    }

    /// Per-DPU scrub reports, in DPU order (the serving layer folds
    /// these into per-rank health scores).
    pub fn scrub_each(&mut self) -> Vec<ScrubReport> {
        self.system.iter_mut().map(|(_, dpu)| dpu.mram.scrub()).collect()
    }

    /// Total MRAM words repaired inline by DMA verify-on-read across the
    /// set (monotone; see [`dpu_sim::IntegrityCounters`]).
    #[must_use]
    pub fn dma_corrected_total(&self) -> u64 {
        (0..self.system.len())
            .map(|i| self.system.dpu(DpuId(i as u32)).integrity.dma_corrected)
            .sum()
    }

    /// Start recording every host↔MRAM transfer as a
    /// [`TraceEvent::HostTransfer`]. Events carry a monotonic sequence
    /// number (host transfers have no DPU cycle stamp) and the symbol,
    /// byte count, direction and target DPU (`None` for broadcasts).
    pub fn enable_host_tracing(&mut self) {
        if self.host_trace.is_none() {
            self.host_trace = Some(std::cell::RefCell::new(HostTrace::default()));
        }
    }

    /// Stop recording host transfers and hand back everything recorded
    /// since [`DpuSet::enable_host_tracing`], or `None` when tracing was
    /// never enabled.
    pub fn take_host_trace(&mut self) -> Option<TraceBuffer> {
        self.host_trace.take().map(|cell| cell.into_inner().buffer)
    }

    /// Snapshot of the host transfers recorded so far (empty buffer when
    /// tracing is disabled). Recording continues.
    #[must_use]
    pub fn host_trace_snapshot(&self) -> TraceBuffer {
        self.host_trace.as_ref().map_or_else(TraceBuffer::new, |cell| cell.borrow().buffer.clone())
    }

    fn record_host(&self, direction: HostDirection, symbol: &str, bytes: u64, dpu: Option<u32>) {
        if let Some(cell) = &self.host_trace {
            let mut t = cell.borrow_mut();
            let seq = t.seq;
            t.seq += 1;
            t.buffer.record(TraceEvent::HostTransfer {
                direction,
                symbol: symbol.to_owned(),
                bytes,
                dpu,
                seq,
            });
        }
    }

    /// Number of DPUs in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.system.len()
    }

    /// True when the set is empty (never happens after allocation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.system.is_empty()
    }

    /// Device parameters of the set.
    #[must_use]
    pub fn params(&self) -> DpuParams {
        self.system.params
    }

    /// The shared symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Define a new MRAM symbol on every DPU of the set.
    ///
    /// # Errors
    /// See [`SymbolTable::define`].
    pub fn define_symbol(&mut self, name: &str, capacity: usize) -> Result<Symbol> {
        self.symbols.define(name, capacity)
    }

    /// Borrow the underlying system (for Tier-2 kernels that need raw MRAM
    /// access).
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Mutably borrow the underlying system.
    pub fn system_mut(&mut self) -> &mut PimSystem {
        &mut self.system
    }

    /// Environment variable overriding the default parallel-launch
    /// threshold (the set size below which launches run on the calling
    /// thread), mirroring [`Engine::ENV_VAR`]. Unparseable values fall
    /// back to the built-in default.
    pub const PARALLEL_THRESHOLD_ENV: &'static str = "PIM_HOST_PARALLEL_THRESHOLD";

    /// Pin this set's parallel-launch threshold (`None` restores the
    /// ambient default, which honors [`DpuSet::PARALLEL_THRESHOLD_ENV`]).
    /// Sets smaller than the threshold launch sequentially on the calling
    /// thread; larger sets run on the persistent worker pool.
    pub fn set_parallel_threshold(&mut self, threshold: Option<usize>) {
        self.parallel_threshold = threshold;
    }

    /// The effective parallel-launch threshold: the pinned value, else the
    /// environment override, else the built-in default.
    #[must_use]
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold.unwrap_or_else(|| {
            std::env::var(Self::PARALLEL_THRESHOLD_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
        })
    }

    /// Split-borrow everything one launch needs: the system, the loaded
    /// program, and the scheduling context. Creates the persistent worker
    /// pool on the first launch that crosses the parallel threshold.
    pub(crate) fn launch_parts(&mut self) -> (&mut PimSystem, Option<&ExecProgram>, Sched<'_>) {
        let threshold = self.parallel_threshold();
        if self.system.len() >= threshold && self.pool.is_none() {
            self.pool = Some(WorkerPool::for_dpus(self.system.len()));
        }
        let sched = Sched { pool: self.pool.as_ref(), threshold };
        (&mut self.system, self.loaded.as_ref(), sched)
    }

    /// Load a program onto every DPU of the set (`dpu_load`): validates
    /// control flow and the IRAM footprint once and decodes the program
    /// into its [`ExecProgram`] execution form — including the superblock
    /// decomposition the interpreter's fast path dispatches from — kept for
    /// [`DpuSet::launch_loaded`]. The SDK's load-once/launch-many pattern —
    /// launches of the loaded program skip validation, decoding, and
    /// superblock analysis.
    ///
    /// # Errors
    /// [`HostError::Dpu`] when the program is malformed or exceeds IRAM.
    pub fn load(&mut self, program: &dpu_sim::Program) -> Result<()> {
        let exec = ExecProgram::compile(program)?;
        let iram = self.system.params.iram_bytes;
        if exec.iram_bytes() > iram {
            return Err(HostError::Dpu(dpu_sim::Error::ProgramTooLarge {
                bytes: exec.iram_bytes(),
                iram_bytes: iram,
            }));
        }
        self.loaded = Some(exec);
        Ok(())
    }

    /// The currently loaded program, if any.
    #[must_use]
    pub fn loaded_program(&self) -> Option<&dpu_sim::Program> {
        self.loaded.as_ref().map(ExecProgram::source)
    }

    /// Pin the execution engine every launch from this set uses
    /// (`None` restores the ambient default, which honors the
    /// `PIM_SIM_ENGINE` environment override — see
    /// [`Engine::effective`]).
    pub fn set_engine(&mut self, engine: Option<Engine>) {
        self.engine = engine;
    }

    /// The engine pinned by [`DpuSet::set_engine`], if any.
    #[must_use]
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Profile-guided recompilation of the loaded program: replay it once
    /// on `dpu` through the profiled reference path (accumulating a
    /// [`dpu_sim::CycleAttribution`]), recompile only the superblocks
    /// whose entry count meets `min_entries`
    /// ([`dpu_sim::DEFAULT_HOT_THRESHOLD`] is the conventional floor),
    /// and pin [`Engine::Compiled`] on the set. Returns the number of
    /// blocks hot enough to stay compiled.
    ///
    /// The replay runs the program for real on `dpu` — deterministic
    /// programs leave the same memory state a launch would, so on a
    /// warmed-up serving set this is idempotent. Results of subsequent
    /// launches are bit-identical to any other engine tier (the identity
    /// tests pin this); only host wall-clock changes.
    ///
    /// # Errors
    /// [`HostError::Symbol`] when no program is loaded,
    /// [`HostError::NoSuchDpu`] when `dpu` is outside the set, or
    /// [`HostError::Dpu`] when the profiling replay faults.
    pub fn recompile_hot_loaded(
        &mut self,
        dpu: DpuId,
        tasklets: usize,
        min_entries: u64,
    ) -> Result<usize> {
        self.check_dpu(dpu)?;
        let exec = self.loaded.as_ref().ok_or_else(|| HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        let mut attr = dpu_sim::CycleAttribution::new();
        self.system.dpu_mut(dpu).run_exec_profiled(exec, tasklets, &mut attr)?;
        let hot = attr.hot_starts(min_entries).len();
        self.loaded.as_mut().expect("checked above").recompile_hot(&attr, min_entries);
        self.engine = Some(Engine::Compiled);
        Ok(hot)
    }

    fn check_dpu(&self, dpu: DpuId) -> Result<()> {
        if (dpu.0 as usize) < self.system.len() {
            Ok(())
        } else {
            Err(HostError::NoSuchDpu { index: dpu.0, len: self.system.len() })
        }
    }

    /// Broadcast `src` to `symbol` at `symbol_offset` on **every** DPU
    /// (`dpu_copy_to`, Eq. 3.1). `src` must obey the 8-byte rule — use
    /// [`crate::align::PaddedBuf`] for arbitrary payloads.
    ///
    /// MRAM pages wholly covered by the span are materialized **once** and
    /// installed into every DPU's page table by reference
    /// ([`dpu_sim::CowMemory::install_page`]), so a rank-wide weight or
    /// LUT image costs one copy of itself instead of one per DPU; a DPU
    /// that later writes such a page gets its own copy transparently.
    ///
    /// # Errors
    /// Alignment, symbol and bounds violations.
    pub fn copy_to(&mut self, symbol: &str, symbol_offset: usize, src: &[u8]) -> Result<()> {
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        self.broadcast_write(addr, src)?;
        if let Some((policy, seq)) = self.link_begin() {
            self.verify_broadcast(addr, src, symbol, &policy, seq)?;
        }
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += (src.len() * self.system.len()) as u64;
        stats.operations += self.system.len() as u64;
        // A broadcast is one host-link operation reaching every DPU.
        self.record_host(
            HostDirection::HostToMram,
            symbol,
            (src.len() * self.system.len()) as u64,
            None,
        );
        Ok(())
    }

    /// Write `src` at `addr` on every DPU, storing each fully covered MRAM
    /// page once for the whole set. Partial head/tail pages fall back to
    /// per-DPU writes (they may merge with bytes a DPU already holds).
    fn broadcast_write(&mut self, addr: usize, src: &[u8]) -> Result<()> {
        let end = addr + src.len();
        let first_full = addr.div_ceil(MRAM_PAGE_BYTES);
        let last_full = end / MRAM_PAGE_BYTES; // exclusive
        if last_full <= first_full {
            // No fully covered page: plain per-DPU writes.
            for (_, dpu) in self.system.iter_mut() {
                dpu.mram.write(addr, src)?;
            }
            return Ok(());
        }
        let shared: Vec<Arc<Vec<u8>>> = (first_full..last_full)
            .map(|p| {
                let off = p * MRAM_PAGE_BYTES - addr;
                Arc::new(src[off..off + MRAM_PAGE_BYTES].to_vec())
            })
            .collect();
        let head = first_full * MRAM_PAGE_BYTES - addr;
        let tail = last_full * MRAM_PAGE_BYTES - addr;
        for (_, dpu) in self.system.iter_mut() {
            if head > 0 {
                dpu.mram.write(addr, &src[..head])?;
            }
            for (k, page) in shared.iter().enumerate() {
                dpu.mram.install_page(first_full + k, page)?;
            }
            if tail < src.len() {
                dpu.mram.write(addr + tail, &src[tail..])?;
            }
        }
        Ok(())
    }

    /// One checked write leg: write, apply any injected link fault to the
    /// landed bytes, read back and verify the CRC-32C frame, retrying
    /// with exponential backoff. The corrupting write goes through the
    /// normal write path, so with ECC enabled the sidecar is refreshed
    /// over the corrupt byte — a link error is *not* a storage error, and
    /// only the CRC frame (never the ECC) may catch it.
    fn checked_write(
        &mut self,
        dpu: DpuId,
        addr: usize,
        src: &[u8],
        symbol: &str,
        policy: &LinkPolicy,
        seq: u64,
    ) -> Result<()> {
        let frame = crc32c(src);
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.link_account(|s| {
                    s.retries += 1;
                    s.backoff_cycles += policy.backoff_base_cycles << (attempt - 1);
                });
            }
            if policy.faults.is_some_and(|p| p.fails(seq, dpu.0, attempt)) {
                self.link_account(|s| s.aborted_attempts += 1);
                continue;
            }
            let mram = &mut self.system.dpu_mut(dpu).mram;
            mram.write(addr, src)?;
            if let Some((byte, bit)) =
                policy.faults.and_then(|p| p.corrupts(seq, dpu.0, attempt, src.len()))
            {
                let mut b = [0u8];
                mram.read(addr + byte, &mut b)?;
                b[0] ^= 1 << bit;
                mram.write(addr + byte, &b)?;
            }
            let mut back = vec![0u8; src.len()];
            mram.read(addr, &mut back)?;
            if crc32c(&back) == frame {
                self.link_account(|s| {
                    s.transfers += 1;
                    s.bytes_verified += src.len() as u64;
                });
                return Ok(());
            }
            self.link_account(|s| s.crc_mismatches += 1);
        }
        self.link_account(|s| s.exhausted += 1);
        Err(HostError::LinkIntegrity {
            symbol: symbol.to_owned(),
            dpu: dpu.0,
            attempts: policy.max_retries + 1,
        })
    }

    /// One checked read leg: the sender frames the true MRAM bytes with
    /// their CRC, the link may corrupt the received copy in `dst`, and
    /// the receiver verifies before accepting. On exhaustion `dst` is
    /// zeroed so a caller that ignores the error cannot consume the
    /// corrupt payload.
    fn checked_read(
        &self,
        dpu: DpuId,
        addr: usize,
        dst: &mut [u8],
        symbol: &str,
        policy: &LinkPolicy,
        seq: u64,
    ) -> Result<()> {
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.link_account(|s| {
                    s.retries += 1;
                    s.backoff_cycles += policy.backoff_base_cycles << (attempt - 1);
                });
            }
            if policy.faults.is_some_and(|p| p.fails(seq, dpu.0, attempt)) {
                self.link_account(|s| s.aborted_attempts += 1);
                continue;
            }
            self.system.dpu(dpu).mram.read(addr, dst)?;
            let frame = crc32c(dst);
            if let Some((byte, bit)) =
                policy.faults.and_then(|p| p.corrupts(seq, dpu.0, attempt, dst.len()))
            {
                dst[byte] ^= 1 << bit;
            }
            if crc32c(dst) == frame {
                self.link_account(|s| {
                    s.transfers += 1;
                    s.bytes_verified += dst.len() as u64;
                });
                return Ok(());
            }
            self.link_account(|s| s.crc_mismatches += 1);
        }
        dst.fill(0);
        self.link_account(|s| s.exhausted += 1);
        Err(HostError::LinkIntegrity {
            symbol: symbol.to_owned(),
            dpu: dpu.0,
            attempts: policy.max_retries + 1,
        })
    }

    /// Per-DPU verification pass behind a checked broadcast. The shared
    /// page-install fast path runs first; this leg then injects and
    /// verifies each DPU's copy independently. A DPU whose copy fails
    /// verification rewrites only its own range (copy-on-write privatizes
    /// just that DPU's pages), so the common clean case keeps one shared
    /// image across the whole set.
    fn verify_broadcast(
        &mut self,
        addr: usize,
        src: &[u8],
        symbol: &str,
        policy: &LinkPolicy,
        seq: u64,
    ) -> Result<()> {
        let frame = crc32c(src);
        for i in 0..self.system.len() as u32 {
            let mut verified = false;
            for attempt in 0..=policy.max_retries {
                if attempt > 0 {
                    self.link_account(|s| {
                        s.retries += 1;
                        s.backoff_cycles += policy.backoff_base_cycles << (attempt - 1);
                    });
                    // Relaunch this DPU's leg from the host image.
                    self.system.dpu_mut(DpuId(i)).mram.write(addr, src)?;
                }
                if policy.faults.is_some_and(|p| p.fails(seq, i, attempt)) {
                    self.link_account(|s| s.aborted_attempts += 1);
                    continue;
                }
                let mram = &mut self.system.dpu_mut(DpuId(i)).mram;
                if let Some((byte, bit)) =
                    policy.faults.and_then(|p| p.corrupts(seq, i, attempt, src.len()))
                {
                    let mut b = [0u8];
                    mram.read(addr + byte, &mut b)?;
                    b[0] ^= 1 << bit;
                    mram.write(addr + byte, &b)?;
                }
                let mut back = vec![0u8; src.len()];
                mram.read(addr, &mut back)?;
                if crc32c(&back) == frame {
                    verified = true;
                    break;
                }
                self.link_account(|s| s.crc_mismatches += 1);
            }
            if !verified {
                self.link_account(|s| s.exhausted += 1);
                return Err(HostError::LinkIntegrity {
                    symbol: symbol.to_owned(),
                    dpu: i,
                    attempts: policy.max_retries + 1,
                });
            }
            self.link_account(|s| {
                s.transfers += 1;
                s.bytes_verified += src.len() as u64;
            });
        }
        Ok(())
    }

    /// Copy `src` to a single DPU's `symbol` at `symbol_offset`.
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_to_dpu(
        &mut self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        src: &[u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        match self.link_begin() {
            Some((policy, seq)) => self.checked_write(dpu, addr, src, symbol, &policy, seq)?,
            None => self.system.dpu_mut(dpu).mram.write(addr, src)?,
        }
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += src.len() as u64;
        stats.operations += 1;
        self.record_host(HostDirection::HostToMram, symbol, src.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Read `dst.len()` bytes from a single DPU's `symbol` at
    /// `symbol_offset` (`dpu_copy_from`).
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_from_dpu(
        &self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        dst: &mut [u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, dst.len())?;
        match self.link_begin() {
            Some((policy, seq)) => self.checked_read(dpu, addr, dst, symbol, &policy, seq)?,
            None => self.system.dpu(dpu).mram.read(addr, dst)?,
        }
        // `xfer_stats` counts only the host→DPU direction (it dominates
        // every workload here, and this method is `&self`); the trace log,
        // behind a `RefCell`, records gathers too.
        self.record_host(HostDirection::MramToHost, symbol, dst.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Broadcast a scalar (the idiom used to communicate unpadded lengths,
    /// §3.2): writes the 8-byte little-endian encoding of `value`.
    ///
    /// # Errors
    /// Symbol and bounds violations.
    pub fn copy_scalar_to(&mut self, symbol: &str, value: u64) -> Result<()> {
        self.copy_to(symbol, 0, &value.to_le_bytes())
    }

    /// Per-symbol host-link traffic so far (host → DPU direction).
    #[must_use]
    pub fn transfer_stats(&self) -> &std::collections::BTreeMap<String, TransferStats> {
        &self.xfer_stats
    }

    /// Total host → DPU bytes across all symbols.
    #[must_use]
    pub fn total_bytes_to_dpus(&self) -> u64 {
        self.xfer_stats.values().map(|s| s.to_dpu_bytes).sum()
    }

    /// Host-link seconds for the traffic so far at `bytes_per_sec`
    /// effective bandwidth (the Fig. 4.6 bottleneck, measured on the
    /// functional path instead of estimated).
    #[must_use]
    pub fn transfer_seconds(&self, bytes_per_sec: f64) -> f64 {
        self.total_bytes_to_dpus() as f64 / bytes_per_sec
    }

    /// Read back a scalar from one DPU.
    ///
    /// # Errors
    /// Symbol, bounds, or unknown-DPU violations.
    pub fn copy_scalar_from(&self, dpu: DpuId, symbol: &str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.copy_from_dpu(dpu, symbol, 0, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_bounds() {
        assert!(matches!(DpuSet::allocate(0), Err(HostError::BadAllocation { .. })));
        assert!(matches!(DpuSet::allocate(4000), Err(HostError::BadAllocation { .. })));
        assert_eq!(DpuSet::allocate(16).unwrap().len(), 16);
    }

    #[test]
    fn broadcast_reaches_every_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("buf", 64).unwrap();
        set.copy_to("buf", 8, &[9u8; 16]).unwrap();
        for i in 0..4 {
            let mut out = [0u8; 16];
            set.copy_from_dpu(DpuId(i), "buf", 8, &mut out).unwrap();
            assert_eq!(out, [9u8; 16]);
        }
    }

    #[test]
    fn per_dpu_copy_is_isolated() {
        let mut set = DpuSet::allocate(3).unwrap();
        set.define_symbol("buf", 16).unwrap();
        set.copy_to_dpu(DpuId(1), "buf", 0, &[5u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 8]);
        set.copy_from_dpu(DpuId(1), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [5u8; 8]);
    }

    #[test]
    fn unknown_dpu_rejected() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("buf", 16).unwrap();
        let r = set.copy_to_dpu(DpuId(5), "buf", 0, &[0u8; 8]);
        assert!(matches!(r, Err(HostError::NoSuchDpu { index: 5, len: 2 })));
    }

    #[test]
    fn misaligned_broadcast_rejected() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 16).unwrap();
        assert!(matches!(set.copy_to("buf", 0, &[0u8; 5]), Err(HostError::Alignment { .. })));
    }

    #[test]
    fn scalar_round_trip() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("n_images", 8).unwrap();
        set.copy_scalar_to("n_images", 784).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(1), "n_images").unwrap(), 784);
    }
}

#[cfg(test)]
mod checked_transfer_tests {
    use super::*;
    use crate::link::{LinkFaultPlan, LinkPolicy};

    fn filled(len: usize, salt: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
    }

    #[test]
    fn clean_checked_transfers_verify_and_count() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("buf", 64).unwrap();
        set.set_link_policy(Some(LinkPolicy::default()));
        let payload = filled(32, 3);
        set.copy_to_dpu(DpuId(0), "buf", 0, &payload).unwrap();
        let mut back = vec![0u8; 32];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap();
        assert_eq!(back, payload);
        let s = set.link_stats();
        assert!(s.clean(), "{s:?}");
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes_verified, 64);
        // Disarming restores plain transfers (stats stop accumulating).
        set.set_link_policy(None);
        set.copy_to_dpu(DpuId(0), "buf", 0, &payload).unwrap();
        assert_eq!(set.link_stats(), crate::link::LinkStats::default());
    }

    #[test]
    fn corrupted_write_is_caught_by_crc_and_repaired_by_retry() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("buf", 1024).unwrap();
        let plan = LinkFaultPlan { seed: 13, corrupt_prob: 0.5, fail_prob: 0.0 };
        set.set_link_policy(Some(LinkPolicy { max_retries: 8, ..LinkPolicy::with_faults(plan) }));
        let payload = filled(512, 7);
        for i in 0..8 {
            set.copy_to_dpu(DpuId(i % 2), "buf", 0, &payload).unwrap();
        }
        let s = set.link_stats();
        assert!(s.crc_mismatches > 0, "seed 13 at 0.5 must corrupt some attempt: {s:?}");
        assert_eq!(s.retries, s.crc_mismatches, "every mismatch costs exactly one retry");
        assert!(s.backoff_cycles > 0);
        assert_eq!(s.exhausted, 0);
        // The landed data is the true payload, not the corrupted frame.
        let mut back = vec![0u8; 512];
        set.set_link_policy(None);
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn corrupted_read_retries_until_the_frame_verifies() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 256).unwrap();
        let payload = filled(256, 11);
        set.copy_to_dpu(DpuId(0), "buf", 0, &payload).unwrap();
        let plan = LinkFaultPlan { seed: 4, corrupt_prob: 0.6, fail_prob: 0.2 };
        set.set_link_policy(Some(LinkPolicy { max_retries: 16, ..LinkPolicy::with_faults(plan) }));
        for _ in 0..8 {
            let mut back = vec![0u8; 256];
            set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap();
            assert_eq!(back, payload, "verified read must hand back true bytes");
        }
        let s = set.link_stats();
        assert!(s.crc_mismatches > 0 || s.aborted_attempts > 0, "faults must fire: {s:?}");
        assert_eq!(s.exhausted, 0);
        assert_eq!(s.transfers, 8);
    }

    #[test]
    fn persistent_corruption_exhausts_retries_and_zeroes_the_read() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 64).unwrap();
        let payload = filled(64, 1);
        set.copy_to_dpu(DpuId(0), "buf", 0, &payload).unwrap();
        // Every attempt corrupts: no frame can ever verify.
        let plan = LinkFaultPlan { seed: 1, corrupt_prob: 1.0, fail_prob: 0.0 };
        set.set_link_policy(Some(LinkPolicy { max_retries: 3, ..LinkPolicy::with_faults(plan) }));
        let mut back = vec![0xAAu8; 64];
        let err = set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap_err();
        assert!(matches!(err, HostError::LinkIntegrity { dpu: 0, attempts: 4, .. }), "{err:?}");
        assert_eq!(back, vec![0u8; 64], "failed read must not leak a corrupt payload");
        let s = set.link_stats();
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.crc_mismatches, 4);
    }

    #[test]
    fn checked_broadcast_repairs_corrupt_legs_and_keeps_clean_pages_shared() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("w", 2 * MRAM_PAGE_BYTES).unwrap();
        let image: Vec<u8> = (0..2 * MRAM_PAGE_BYTES).map(|i| (i % 249) as u8).collect();
        // Seed 6 at 0.3 corrupts DPUs 1 and 3 on the first attempt and
        // leaves 0 and 2 clean — the shape this test needs.
        let plan = LinkFaultPlan { seed: 6, corrupt_prob: 0.3, fail_prob: 0.0 };
        set.set_link_policy(Some(LinkPolicy { max_retries: 8, ..LinkPolicy::with_faults(plan) }));
        set.copy_to("w", 0, &image).unwrap();
        let s = set.link_stats();
        assert_eq!(s.transfers, 4, "one verified leg per DPU");
        assert!(s.crc_mismatches > 0, "seed 6 at 0.3 must corrupt some leg: {s:?}");
        set.set_link_policy(None);
        for i in 0..4 {
            let mut back = vec![0u8; image.len()];
            set.copy_from_dpu(DpuId(i), "w", 0, &mut back).unwrap();
            assert_eq!(back, image, "DPU {i}");
        }
        // Only corrupted legs privatized their pages; the rest still
        // share the broadcast image.
        let res = set.system().mram_residency();
        assert!(res.distinct_pages < res.resident_pages, "some sharing must survive: {res:?}");
    }

    #[test]
    fn link_corruption_is_caught_by_crc_even_with_ecc_enabled() {
        // A link error corrupts the frame *after* the sidecar refresh, so
        // ECC sees a self-consistent (wrong) word and only the CRC frame
        // can catch it — the two layers guard different fault domains.
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 64).unwrap();
        set.enable_ecc(true);
        let plan = LinkFaultPlan { seed: 3, corrupt_prob: 0.7, fail_prob: 0.0 };
        set.set_link_policy(Some(LinkPolicy { max_retries: 16, ..LinkPolicy::with_faults(plan) }));
        let payload = filled(64, 9);
        for _ in 0..6 {
            set.copy_to_dpu(DpuId(0), "buf", 0, &payload).unwrap();
        }
        assert!(set.link_stats().crc_mismatches > 0, "{:?}", set.link_stats());
        // After CRC-verified repair the storage is consistent: nothing
        // for the scrubber to fix or report.
        let rep = set.scrub_all();
        assert_eq!((rep.corrected(), rep.uncorrectable.len()), (0, 0), "{rep:?}");
    }

    /// Satellite regression: a storage-cell error on one DPU of a
    /// broadcast-shared page must privatize that DPU's copy before
    /// corrupting it — the other DPUs' (shared) pages stay bit-exact,
    /// and an ECC scrub of the victim repairs it in place.
    #[test]
    fn raw_flip_on_shared_broadcast_page_stays_isolated_to_one_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("w", MRAM_PAGE_BYTES).unwrap();
        set.enable_ecc(true);
        let image: Vec<u8> = (0..MRAM_PAGE_BYTES).map(|i| (i % 253) as u8).collect();
        set.copy_to("w", 0, &image).unwrap();

        let addr = set.symbols().resolve("w", 128, 8).unwrap();
        set.system_mut().dpu_mut(DpuId(2)).mram.flip_bit_raw(addr, 5).unwrap();

        for i in 0..4u32 {
            let mut back = vec![0u8; MRAM_PAGE_BYTES];
            set.copy_from_dpu(DpuId(i), "w", 0, &mut back).unwrap();
            if i == 2 {
                assert_ne!(back, image, "victim must observe its own corruption");
            } else {
                assert_eq!(back, image, "DPU {i} must not see DPU 2's fault");
            }
        }
        // The scrubber repairs the victim from its (shared-at-install)
        // sidecar; afterwards all four DPUs agree again.
        let reports = set.scrub_each();
        assert_eq!(reports[2].corrected_data, 1, "{:?}", reports[2]);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.uncorrectable.is_empty(), "DPU {i}: {r:?}");
            if i != 2 {
                assert_eq!(r.corrected(), 0, "DPU {i} had nothing to fix");
            }
        }
        let mut back = vec![0u8; MRAM_PAGE_BYTES];
        set.copy_from_dpu(DpuId(2), "w", 0, &mut back).unwrap();
        assert_eq!(back, image, "scrub restored the victim bit-exactly");
    }
}

#[cfg(test)]
mod transfer_stats_tests {
    use super::*;

    #[test]
    fn broadcast_counts_once_per_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("b", 64).unwrap();
        set.copy_to("b", 0, &[0u8; 32]).unwrap();
        let s = set.transfer_stats()["b"];
        assert_eq!(s.to_dpu_bytes, 32 * 4);
        assert_eq!(s.operations, 4);
    }

    #[test]
    fn per_dpu_copies_accumulate_per_symbol() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("a", 16).unwrap();
        set.define_symbol("b", 16).unwrap();
        set.copy_to_dpu(DpuId(0), "a", 0, &[0u8; 8]).unwrap();
        set.copy_to_dpu(DpuId(1), "a", 0, &[0u8; 16]).unwrap();
        set.copy_to_dpu(DpuId(0), "b", 0, &[0u8; 8]).unwrap();
        assert_eq!(set.transfer_stats()["a"].to_dpu_bytes, 24);
        assert_eq!(set.transfer_stats()["b"].to_dpu_bytes, 8);
        assert_eq!(set.total_bytes_to_dpus(), 32);
        // 32 bytes at 1 GB/s.
        assert!((set.transfer_seconds(1e9) - 3.2e-8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod host_trace_tests {
    use super::*;
    use pim_trace::TraceEvent;

    #[test]
    fn disabled_by_default() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        assert!(set.host_trace_snapshot().is_empty());
        assert!(set.take_host_trace().is_none());
    }

    #[test]
    fn records_all_directions_with_monotonic_seq() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 16).unwrap();
        set.enable_host_tracing();
        set.copy_to("x", 0, &[0u8; 8]).unwrap(); // broadcast: 8 B x 2 DPUs
        set.copy_to_dpu(DpuId(1), "x", 8, &[0u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "x", 0, &mut out).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let events = trace.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            TraceEvent::HostTransfer { direction, bytes, dpu, seq, symbol } => {
                assert_eq!(*direction, HostDirection::HostToMram);
                assert_eq!(*bytes, 16); // 8 bytes to each of 2 DPUs
                assert_eq!(*dpu, None);
                assert_eq!(*seq, 0);
                assert_eq!(symbol, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[2] {
            TraceEvent::HostTransfer { direction, dpu, seq, .. } => {
                assert_eq!(*direction, HostDirection::MramToHost);
                assert_eq!(*dpu, Some(0));
                assert_eq!(*seq, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xfer_batches_are_traced_through_the_copy_paths() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("row", 8).unwrap();
        set.enable_host_tracing();
        let mut b = crate::XferBatch::new();
        b.prepare(vec![1u8; 8]);
        b.prepare(vec![2u8; 8]);
        b.push(&mut set, "row", 0, 8).unwrap();
        let _ = crate::XferBatch::gather(&set, "row", 0, 8).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let to = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::HostToMram, .. })
        });
        let from = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::MramToHost, .. })
        });
        assert_eq!((to, from), (2, 2));
    }

    fn tiny_program() -> dpu_sim::Program {
        dpu_sim::asm::assemble("movi r1, 7\nhalt\n").unwrap()
    }

    #[test]
    fn parallel_threshold_resolves_pin_then_env_then_default() {
        let mut set = DpuSet::allocate(2).unwrap();
        assert_eq!(set.parallel_threshold(), crate::launch::DEFAULT_PARALLEL_THRESHOLD);
        set.set_parallel_threshold(Some(9));
        assert_eq!(set.parallel_threshold(), 9);
        set.set_parallel_threshold(None);
        assert_eq!(set.parallel_threshold(), crate::launch::DEFAULT_PARALLEL_THRESHOLD);

        // Env override sits between the pin and the default. Scheduling
        // never changes results, so a transient env read elsewhere is
        // harmless.
        std::env::set_var(DpuSet::PARALLEL_THRESHOLD_ENV, "13");
        assert_eq!(set.parallel_threshold(), 13);
        set.set_parallel_threshold(Some(2));
        assert_eq!(set.parallel_threshold(), 2, "pin wins over env");
        std::env::remove_var(DpuSet::PARALLEL_THRESHOLD_ENV);
        set.set_parallel_threshold(None);
    }

    #[test]
    fn threshold_gates_pool_scheduling() {
        let program = tiny_program();

        // Below threshold: sequential path, no steal launch recorded.
        let mut seq = DpuSet::allocate(8).unwrap();
        seq.set_parallel_threshold(Some(usize::MAX));
        let mut obs = crate::LaunchObservation::new();
        seq.launch_observed(&program, 2, &mut obs).unwrap();
        assert!(obs.metrics().counters().all(|(k, _)| k != "obs.steal.launches"));

        // Pinned low: even a 2-DPU set goes through the pool.
        let mut par = DpuSet::allocate(2).unwrap();
        par.set_parallel_threshold(Some(1));
        let mut obs = crate::LaunchObservation::new();
        par.launch_observed(&program, 2, &mut obs).unwrap();
        let steals =
            obs.metrics().counters().find(|(k, _)| *k == "obs.steal.launches").map(|(_, v)| v);
        assert_eq!(steals, Some(1));
    }

    #[test]
    fn broadcast_shares_full_pages_and_splits_unaligned_edges() {
        // "pad" shifts "w" to a page-unaligned base address.
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("pad", 8).unwrap();
        set.define_symbol("w", 2 * MRAM_PAGE_BYTES).unwrap();
        let image: Vec<u8> = (0..2 * MRAM_PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        set.copy_to("w", 0, &image).unwrap();

        for i in 0..4 {
            let mut back = vec![0u8; image.len()];
            set.copy_from_dpu(DpuId(i), "w", 0, &mut back).unwrap();
            assert_eq!(back, image, "DPU {i}");
        }
        // One full page is covered and shared once; the unaligned head and
        // tail spill into per-DPU pages (at most 2 per DPU).
        let res = set.system().mram_residency();
        assert!(res.distinct_pages <= 1 + 2 * 4, "{} distinct pages", res.distinct_pages);
        assert!(res.resident_pages >= 3 * 4, "{} resident pages", res.resident_pages);
    }
}
