//! DPU set allocation and broadcast transfers.
//!
//! A [`DpuSet`] is the host's handle on a group of simulated DPUs, mirroring
//! `dpu_alloc` / `dpu_copy_to` / `dpu_copy_from` / `dpu_launch` from the
//! UPMEM SDK. All DPUs of a set share the same symbol layout (they run the
//! same program); broadcast copies ([`DpuSet::copy_to`], the paper's
//! Eq. 3.1) write identical bytes to every DPU, while per-DPU copies and
//! [`crate::xfer::XferBatch`] scatter distinct buffers.

use crate::error::{HostError, Result};
use crate::launch::{Sched, DEFAULT_PARALLEL_THRESHOLD};
use crate::pool::WorkerPool;
use crate::symbol::{Symbol, SymbolTable};
use dpu_sim::{DpuId, DpuParams, Engine, ExecProgram, PimSystem, MRAM_PAGE_BYTES};
use pim_trace::{HostDirection, TraceBuffer, TraceEvent, TraceSink};
use std::sync::Arc;

/// A host-allocated set of DPUs with a shared symbol table.
#[derive(Debug)]
pub struct DpuSet {
    system: PimSystem,
    symbols: SymbolTable,
    loaded: Option<ExecProgram>,
    engine: Option<Engine>,
    // The persistent worker pool launches run on, created lazily by the
    // first launch that crosses the parallel threshold and reused for the
    // life of the set.
    pool: Option<WorkerPool>,
    parallel_threshold: Option<usize>,
    xfer_stats: std::collections::BTreeMap<String, TransferStats>,
    // `RefCell` because gather paths (`copy_from_dpu`) take `&self`; host
    // transfers are strictly host-thread-sequential, so no contention.
    host_trace: Option<std::cell::RefCell<HostTrace>>,
}

/// Recording state for host↔MRAM transfer events.
#[derive(Debug, Default)]
struct HostTrace {
    buffer: TraceBuffer,
    seq: u64,
}

/// Host-link traffic accumulated for one symbol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes sent host → DPUs (broadcasts count once per DPU reached).
    pub to_dpu_bytes: u64,
    /// Bytes read DPUs → host.
    pub from_dpu_bytes: u64,
    /// Individual transfer operations.
    pub operations: u64,
}

impl DpuSet {
    /// Allocate `n` DPUs with default device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the 2560-DPU
    /// system.
    pub fn allocate(n: usize) -> Result<Self> {
        Self::allocate_with(n, DpuParams::default())
    }

    /// Allocate `n` DPUs with explicit device parameters.
    ///
    /// # Errors
    /// [`HostError::BadAllocation`] when `n` is zero or exceeds the system.
    pub fn allocate_with(n: usize, params: DpuParams) -> Result<Self> {
        if n == 0 || n > dpu_sim::params::SYSTEM_DPUS {
            return Err(HostError::BadAllocation { requested: n });
        }
        Ok(Self {
            system: PimSystem::new(n, params),
            symbols: SymbolTable::new(),
            loaded: None,
            engine: None,
            pool: None,
            parallel_threshold: None,
            xfer_stats: std::collections::BTreeMap::new(),
            host_trace: None,
        })
    }

    /// Start recording every host↔MRAM transfer as a
    /// [`TraceEvent::HostTransfer`]. Events carry a monotonic sequence
    /// number (host transfers have no DPU cycle stamp) and the symbol,
    /// byte count, direction and target DPU (`None` for broadcasts).
    pub fn enable_host_tracing(&mut self) {
        if self.host_trace.is_none() {
            self.host_trace = Some(std::cell::RefCell::new(HostTrace::default()));
        }
    }

    /// Stop recording host transfers and hand back everything recorded
    /// since [`DpuSet::enable_host_tracing`], or `None` when tracing was
    /// never enabled.
    pub fn take_host_trace(&mut self) -> Option<TraceBuffer> {
        self.host_trace.take().map(|cell| cell.into_inner().buffer)
    }

    /// Snapshot of the host transfers recorded so far (empty buffer when
    /// tracing is disabled). Recording continues.
    #[must_use]
    pub fn host_trace_snapshot(&self) -> TraceBuffer {
        self.host_trace.as_ref().map_or_else(TraceBuffer::new, |cell| cell.borrow().buffer.clone())
    }

    fn record_host(&self, direction: HostDirection, symbol: &str, bytes: u64, dpu: Option<u32>) {
        if let Some(cell) = &self.host_trace {
            let mut t = cell.borrow_mut();
            let seq = t.seq;
            t.seq += 1;
            t.buffer.record(TraceEvent::HostTransfer {
                direction,
                symbol: symbol.to_owned(),
                bytes,
                dpu,
                seq,
            });
        }
    }

    /// Number of DPUs in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.system.len()
    }

    /// True when the set is empty (never happens after allocation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.system.is_empty()
    }

    /// Device parameters of the set.
    #[must_use]
    pub fn params(&self) -> DpuParams {
        self.system.params
    }

    /// The shared symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Define a new MRAM symbol on every DPU of the set.
    ///
    /// # Errors
    /// See [`SymbolTable::define`].
    pub fn define_symbol(&mut self, name: &str, capacity: usize) -> Result<Symbol> {
        self.symbols.define(name, capacity)
    }

    /// Borrow the underlying system (for Tier-2 kernels that need raw MRAM
    /// access).
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Mutably borrow the underlying system.
    pub fn system_mut(&mut self) -> &mut PimSystem {
        &mut self.system
    }

    /// Environment variable overriding the default parallel-launch
    /// threshold (the set size below which launches run on the calling
    /// thread), mirroring [`Engine::ENV_VAR`]. Unparseable values fall
    /// back to the built-in default.
    pub const PARALLEL_THRESHOLD_ENV: &'static str = "PIM_HOST_PARALLEL_THRESHOLD";

    /// Pin this set's parallel-launch threshold (`None` restores the
    /// ambient default, which honors [`DpuSet::PARALLEL_THRESHOLD_ENV`]).
    /// Sets smaller than the threshold launch sequentially on the calling
    /// thread; larger sets run on the persistent worker pool.
    pub fn set_parallel_threshold(&mut self, threshold: Option<usize>) {
        self.parallel_threshold = threshold;
    }

    /// The effective parallel-launch threshold: the pinned value, else the
    /// environment override, else the built-in default.
    #[must_use]
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold.unwrap_or_else(|| {
            std::env::var(Self::PARALLEL_THRESHOLD_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
        })
    }

    /// Split-borrow everything one launch needs: the system, the loaded
    /// program, and the scheduling context. Creates the persistent worker
    /// pool on the first launch that crosses the parallel threshold.
    pub(crate) fn launch_parts(&mut self) -> (&mut PimSystem, Option<&ExecProgram>, Sched<'_>) {
        let threshold = self.parallel_threshold();
        if self.system.len() >= threshold && self.pool.is_none() {
            self.pool = Some(WorkerPool::for_dpus(self.system.len()));
        }
        let sched = Sched { pool: self.pool.as_ref(), threshold };
        (&mut self.system, self.loaded.as_ref(), sched)
    }

    /// Load a program onto every DPU of the set (`dpu_load`): validates
    /// control flow and the IRAM footprint once and decodes the program
    /// into its [`ExecProgram`] execution form — including the superblock
    /// decomposition the interpreter's fast path dispatches from — kept for
    /// [`DpuSet::launch_loaded`]. The SDK's load-once/launch-many pattern —
    /// launches of the loaded program skip validation, decoding, and
    /// superblock analysis.
    ///
    /// # Errors
    /// [`HostError::Dpu`] when the program is malformed or exceeds IRAM.
    pub fn load(&mut self, program: &dpu_sim::Program) -> Result<()> {
        let exec = ExecProgram::compile(program)?;
        let iram = self.system.params.iram_bytes;
        if exec.iram_bytes() > iram {
            return Err(HostError::Dpu(dpu_sim::Error::ProgramTooLarge {
                bytes: exec.iram_bytes(),
                iram_bytes: iram,
            }));
        }
        self.loaded = Some(exec);
        Ok(())
    }

    /// The currently loaded program, if any.
    #[must_use]
    pub fn loaded_program(&self) -> Option<&dpu_sim::Program> {
        self.loaded.as_ref().map(ExecProgram::source)
    }

    /// Pin the execution engine every launch from this set uses
    /// (`None` restores the ambient default, which honors the
    /// `PIM_SIM_ENGINE` environment override — see
    /// [`Engine::effective`]).
    pub fn set_engine(&mut self, engine: Option<Engine>) {
        self.engine = engine;
    }

    /// The engine pinned by [`DpuSet::set_engine`], if any.
    #[must_use]
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Profile-guided recompilation of the loaded program: replay it once
    /// on `dpu` through the profiled reference path (accumulating a
    /// [`dpu_sim::CycleAttribution`]), recompile only the superblocks
    /// whose entry count meets `min_entries`
    /// ([`dpu_sim::DEFAULT_HOT_THRESHOLD`] is the conventional floor),
    /// and pin [`Engine::Compiled`] on the set. Returns the number of
    /// blocks hot enough to stay compiled.
    ///
    /// The replay runs the program for real on `dpu` — deterministic
    /// programs leave the same memory state a launch would, so on a
    /// warmed-up serving set this is idempotent. Results of subsequent
    /// launches are bit-identical to any other engine tier (the identity
    /// tests pin this); only host wall-clock changes.
    ///
    /// # Errors
    /// [`HostError::Symbol`] when no program is loaded,
    /// [`HostError::NoSuchDpu`] when `dpu` is outside the set, or
    /// [`HostError::Dpu`] when the profiling replay faults.
    pub fn recompile_hot_loaded(
        &mut self,
        dpu: DpuId,
        tasklets: usize,
        min_entries: u64,
    ) -> Result<usize> {
        self.check_dpu(dpu)?;
        let exec = self.loaded.as_ref().ok_or_else(|| HostError::Symbol {
            name: "<program>".to_owned(),
            problem: "no program loaded; call DpuSet::load first",
        })?;
        let mut attr = dpu_sim::CycleAttribution::new();
        self.system.dpu_mut(dpu).run_exec_profiled(exec, tasklets, &mut attr)?;
        let hot = attr.hot_starts(min_entries).len();
        self.loaded.as_mut().expect("checked above").recompile_hot(&attr, min_entries);
        self.engine = Some(Engine::Compiled);
        Ok(hot)
    }

    fn check_dpu(&self, dpu: DpuId) -> Result<()> {
        if (dpu.0 as usize) < self.system.len() {
            Ok(())
        } else {
            Err(HostError::NoSuchDpu { index: dpu.0, len: self.system.len() })
        }
    }

    /// Broadcast `src` to `symbol` at `symbol_offset` on **every** DPU
    /// (`dpu_copy_to`, Eq. 3.1). `src` must obey the 8-byte rule — use
    /// [`crate::align::PaddedBuf`] for arbitrary payloads.
    ///
    /// MRAM pages wholly covered by the span are materialized **once** and
    /// installed into every DPU's page table by reference
    /// ([`dpu_sim::CowMemory::install_page`]), so a rank-wide weight or
    /// LUT image costs one copy of itself instead of one per DPU; a DPU
    /// that later writes such a page gets its own copy transparently.
    ///
    /// # Errors
    /// Alignment, symbol and bounds violations.
    pub fn copy_to(&mut self, symbol: &str, symbol_offset: usize, src: &[u8]) -> Result<()> {
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        self.broadcast_write(addr, src)?;
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += (src.len() * self.system.len()) as u64;
        stats.operations += self.system.len() as u64;
        // A broadcast is one host-link operation reaching every DPU.
        self.record_host(
            HostDirection::HostToMram,
            symbol,
            (src.len() * self.system.len()) as u64,
            None,
        );
        Ok(())
    }

    /// Write `src` at `addr` on every DPU, storing each fully covered MRAM
    /// page once for the whole set. Partial head/tail pages fall back to
    /// per-DPU writes (they may merge with bytes a DPU already holds).
    fn broadcast_write(&mut self, addr: usize, src: &[u8]) -> Result<()> {
        let end = addr + src.len();
        let first_full = addr.div_ceil(MRAM_PAGE_BYTES);
        let last_full = end / MRAM_PAGE_BYTES; // exclusive
        if last_full <= first_full {
            // No fully covered page: plain per-DPU writes.
            for (_, dpu) in self.system.iter_mut() {
                dpu.mram.write(addr, src)?;
            }
            return Ok(());
        }
        let shared: Vec<Arc<Vec<u8>>> = (first_full..last_full)
            .map(|p| {
                let off = p * MRAM_PAGE_BYTES - addr;
                Arc::new(src[off..off + MRAM_PAGE_BYTES].to_vec())
            })
            .collect();
        let head = first_full * MRAM_PAGE_BYTES - addr;
        let tail = last_full * MRAM_PAGE_BYTES - addr;
        for (_, dpu) in self.system.iter_mut() {
            if head > 0 {
                dpu.mram.write(addr, &src[..head])?;
            }
            for (k, page) in shared.iter().enumerate() {
                dpu.mram.install_page(first_full + k, page)?;
            }
            if tail < src.len() {
                dpu.mram.write(addr + tail, &src[tail..])?;
            }
        }
        Ok(())
    }

    /// Copy `src` to a single DPU's `symbol` at `symbol_offset`.
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_to_dpu(
        &mut self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        src: &[u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, src.len())?;
        self.system.dpu_mut(dpu).mram.write(addr, src)?;
        let stats = self.xfer_stats.entry(symbol.to_owned()).or_default();
        stats.to_dpu_bytes += src.len() as u64;
        stats.operations += 1;
        self.record_host(HostDirection::HostToMram, symbol, src.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Read `dst.len()` bytes from a single DPU's `symbol` at
    /// `symbol_offset` (`dpu_copy_from`).
    ///
    /// # Errors
    /// Alignment, symbol, bounds, or unknown-DPU violations.
    pub fn copy_from_dpu(
        &self,
        dpu: DpuId,
        symbol: &str,
        symbol_offset: usize,
        dst: &mut [u8],
    ) -> Result<()> {
        self.check_dpu(dpu)?;
        let addr = self.symbols.resolve(symbol, symbol_offset, dst.len())?;
        self.system.dpu(dpu).mram.read(addr, dst)?;
        // `xfer_stats` counts only the host→DPU direction (it dominates
        // every workload here, and this method is `&self`); the trace log,
        // behind a `RefCell`, records gathers too.
        self.record_host(HostDirection::MramToHost, symbol, dst.len() as u64, Some(dpu.0));
        Ok(())
    }

    /// Broadcast a scalar (the idiom used to communicate unpadded lengths,
    /// §3.2): writes the 8-byte little-endian encoding of `value`.
    ///
    /// # Errors
    /// Symbol and bounds violations.
    pub fn copy_scalar_to(&mut self, symbol: &str, value: u64) -> Result<()> {
        self.copy_to(symbol, 0, &value.to_le_bytes())
    }

    /// Per-symbol host-link traffic so far (host → DPU direction).
    #[must_use]
    pub fn transfer_stats(&self) -> &std::collections::BTreeMap<String, TransferStats> {
        &self.xfer_stats
    }

    /// Total host → DPU bytes across all symbols.
    #[must_use]
    pub fn total_bytes_to_dpus(&self) -> u64 {
        self.xfer_stats.values().map(|s| s.to_dpu_bytes).sum()
    }

    /// Host-link seconds for the traffic so far at `bytes_per_sec`
    /// effective bandwidth (the Fig. 4.6 bottleneck, measured on the
    /// functional path instead of estimated).
    #[must_use]
    pub fn transfer_seconds(&self, bytes_per_sec: f64) -> f64 {
        self.total_bytes_to_dpus() as f64 / bytes_per_sec
    }

    /// Read back a scalar from one DPU.
    ///
    /// # Errors
    /// Symbol, bounds, or unknown-DPU violations.
    pub fn copy_scalar_from(&self, dpu: DpuId, symbol: &str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.copy_from_dpu(dpu, symbol, 0, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_bounds() {
        assert!(matches!(DpuSet::allocate(0), Err(HostError::BadAllocation { .. })));
        assert!(matches!(DpuSet::allocate(4000), Err(HostError::BadAllocation { .. })));
        assert_eq!(DpuSet::allocate(16).unwrap().len(), 16);
    }

    #[test]
    fn broadcast_reaches_every_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("buf", 64).unwrap();
        set.copy_to("buf", 8, &[9u8; 16]).unwrap();
        for i in 0..4 {
            let mut out = [0u8; 16];
            set.copy_from_dpu(DpuId(i), "buf", 8, &mut out).unwrap();
            assert_eq!(out, [9u8; 16]);
        }
    }

    #[test]
    fn per_dpu_copy_is_isolated() {
        let mut set = DpuSet::allocate(3).unwrap();
        set.define_symbol("buf", 16).unwrap();
        set.copy_to_dpu(DpuId(1), "buf", 0, &[5u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 8]);
        set.copy_from_dpu(DpuId(1), "buf", 0, &mut out).unwrap();
        assert_eq!(out, [5u8; 8]);
    }

    #[test]
    fn unknown_dpu_rejected() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("buf", 16).unwrap();
        let r = set.copy_to_dpu(DpuId(5), "buf", 0, &[0u8; 8]);
        assert!(matches!(r, Err(HostError::NoSuchDpu { index: 5, len: 2 })));
    }

    #[test]
    fn misaligned_broadcast_rejected() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", 16).unwrap();
        assert!(matches!(set.copy_to("buf", 0, &[0u8; 5]), Err(HostError::Alignment { .. })));
    }

    #[test]
    fn scalar_round_trip() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("n_images", 8).unwrap();
        set.copy_scalar_to("n_images", 784).unwrap();
        assert_eq!(set.copy_scalar_from(DpuId(1), "n_images").unwrap(), 784);
    }
}

#[cfg(test)]
mod transfer_stats_tests {
    use super::*;

    #[test]
    fn broadcast_counts_once_per_dpu() {
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("b", 64).unwrap();
        set.copy_to("b", 0, &[0u8; 32]).unwrap();
        let s = set.transfer_stats()["b"];
        assert_eq!(s.to_dpu_bytes, 32 * 4);
        assert_eq!(s.operations, 4);
    }

    #[test]
    fn per_dpu_copies_accumulate_per_symbol() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("a", 16).unwrap();
        set.define_symbol("b", 16).unwrap();
        set.copy_to_dpu(DpuId(0), "a", 0, &[0u8; 8]).unwrap();
        set.copy_to_dpu(DpuId(1), "a", 0, &[0u8; 16]).unwrap();
        set.copy_to_dpu(DpuId(0), "b", 0, &[0u8; 8]).unwrap();
        assert_eq!(set.transfer_stats()["a"].to_dpu_bytes, 24);
        assert_eq!(set.transfer_stats()["b"].to_dpu_bytes, 8);
        assert_eq!(set.total_bytes_to_dpus(), 32);
        // 32 bytes at 1 GB/s.
        assert!((set.transfer_seconds(1e9) - 3.2e-8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod host_trace_tests {
    use super::*;
    use pim_trace::TraceEvent;

    #[test]
    fn disabled_by_default() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 8).unwrap();
        set.copy_scalar_to("x", 1).unwrap();
        assert!(set.host_trace_snapshot().is_empty());
        assert!(set.take_host_trace().is_none());
    }

    #[test]
    fn records_all_directions_with_monotonic_seq() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("x", 16).unwrap();
        set.enable_host_tracing();
        set.copy_to("x", 0, &[0u8; 8]).unwrap(); // broadcast: 8 B x 2 DPUs
        set.copy_to_dpu(DpuId(1), "x", 8, &[0u8; 8]).unwrap();
        let mut out = [0u8; 8];
        set.copy_from_dpu(DpuId(0), "x", 0, &mut out).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let events = trace.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            TraceEvent::HostTransfer { direction, bytes, dpu, seq, symbol } => {
                assert_eq!(*direction, HostDirection::HostToMram);
                assert_eq!(*bytes, 16); // 8 bytes to each of 2 DPUs
                assert_eq!(*dpu, None);
                assert_eq!(*seq, 0);
                assert_eq!(symbol, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[2] {
            TraceEvent::HostTransfer { direction, dpu, seq, .. } => {
                assert_eq!(*direction, HostDirection::MramToHost);
                assert_eq!(*dpu, Some(0));
                assert_eq!(*seq, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xfer_batches_are_traced_through_the_copy_paths() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("row", 8).unwrap();
        set.enable_host_tracing();
        let mut b = crate::XferBatch::new();
        b.prepare(vec![1u8; 8]);
        b.prepare(vec![2u8; 8]);
        b.push(&mut set, "row", 0, 8).unwrap();
        let _ = crate::XferBatch::gather(&set, "row", 0, 8).unwrap();
        let trace = set.take_host_trace().expect("enabled");
        let to = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::HostToMram, .. })
        });
        let from = trace.count_matching(|e| {
            matches!(e, TraceEvent::HostTransfer { direction: HostDirection::MramToHost, .. })
        });
        assert_eq!((to, from), (2, 2));
    }

    fn tiny_program() -> dpu_sim::Program {
        dpu_sim::asm::assemble("movi r1, 7\nhalt\n").unwrap()
    }

    #[test]
    fn parallel_threshold_resolves_pin_then_env_then_default() {
        let mut set = DpuSet::allocate(2).unwrap();
        assert_eq!(set.parallel_threshold(), crate::launch::DEFAULT_PARALLEL_THRESHOLD);
        set.set_parallel_threshold(Some(9));
        assert_eq!(set.parallel_threshold(), 9);
        set.set_parallel_threshold(None);
        assert_eq!(set.parallel_threshold(), crate::launch::DEFAULT_PARALLEL_THRESHOLD);

        // Env override sits between the pin and the default. Scheduling
        // never changes results, so a transient env read elsewhere is
        // harmless.
        std::env::set_var(DpuSet::PARALLEL_THRESHOLD_ENV, "13");
        assert_eq!(set.parallel_threshold(), 13);
        set.set_parallel_threshold(Some(2));
        assert_eq!(set.parallel_threshold(), 2, "pin wins over env");
        std::env::remove_var(DpuSet::PARALLEL_THRESHOLD_ENV);
        set.set_parallel_threshold(None);
    }

    #[test]
    fn threshold_gates_pool_scheduling() {
        let program = tiny_program();

        // Below threshold: sequential path, no steal launch recorded.
        let mut seq = DpuSet::allocate(8).unwrap();
        seq.set_parallel_threshold(Some(usize::MAX));
        let mut obs = crate::LaunchObservation::new();
        seq.launch_observed(&program, 2, &mut obs).unwrap();
        assert!(obs.metrics().counters().all(|(k, _)| k != "obs.steal.launches"));

        // Pinned low: even a 2-DPU set goes through the pool.
        let mut par = DpuSet::allocate(2).unwrap();
        par.set_parallel_threshold(Some(1));
        let mut obs = crate::LaunchObservation::new();
        par.launch_observed(&program, 2, &mut obs).unwrap();
        let steals =
            obs.metrics().counters().find(|(k, _)| *k == "obs.steal.launches").map(|(_, v)| v);
        assert_eq!(steals, Some(1));
    }

    #[test]
    fn broadcast_shares_full_pages_and_splits_unaligned_edges() {
        // "pad" shifts "w" to a page-unaligned base address.
        let mut set = DpuSet::allocate(4).unwrap();
        set.define_symbol("pad", 8).unwrap();
        set.define_symbol("w", 2 * MRAM_PAGE_BYTES).unwrap();
        let image: Vec<u8> = (0..2 * MRAM_PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        set.copy_to("w", 0, &image).unwrap();

        for i in 0..4 {
            let mut back = vec![0u8; image.len()];
            set.copy_from_dpu(DpuId(i), "w", 0, &mut back).unwrap();
            assert_eq!(back, image, "DPU {i}");
        }
        // One full page is covered and shared once; the unaligned head and
        // tail spill into per-DPU pages (at most 2 per DPU).
        let res = set.system().mram_residency();
        assert!(res.distinct_pages <= 1 + 2 * 4, "{} distinct pages", res.distinct_pages);
        assert!(res.resident_pages >= 3 * 4, "{} resident pages", res.resident_pages);
    }
}
