//! Named MRAM regions ("symbols").
//!
//! DPU programs declare MRAM buffers as global symbols; the host addresses
//! transfers by symbol name plus an offset (paper Eqs. 3.1–3.3 all take a
//! `symbol_name`). The simulator keeps an explicit [`SymbolTable`] mapping
//! names to MRAM extents; symbol layout is identical on every DPU of a set,
//! just as the same compiled program is loaded on each.

use crate::error::{HostError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One named MRAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Byte offset of the region in MRAM.
    pub offset: usize,
    /// Capacity of the region in bytes.
    pub capacity: usize,
}

impl Symbol {
    /// End offset (exclusive).
    #[must_use]
    pub fn end(&self) -> usize {
        self.offset + self.capacity
    }
}

/// Symbol name → MRAM extent, shared by all DPUs of a set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    map: BTreeMap<String, Symbol>,
    next_free: usize,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a symbol at an explicit MRAM offset.
    ///
    /// # Errors
    /// [`HostError::Symbol`] on redefinition,
    /// [`HostError::Alignment`] when offset or capacity break the 8-byte
    /// rule.
    pub fn define_at(&mut self, name: &str, offset: usize, capacity: usize) -> Result<Symbol> {
        crate::align::check_aligned("offset", offset)?;
        crate::align::check_aligned("capacity", capacity)?;
        if self.map.contains_key(name) {
            return Err(HostError::Symbol { name: name.to_owned(), problem: "already defined" });
        }
        let sym = Symbol { offset, capacity };
        self.map.insert(name.to_owned(), sym);
        self.next_free = self.next_free.max(sym.end());
        Ok(sym)
    }

    /// Define a symbol right after the last allocation (linker-style
    /// sequential layout). `capacity` is rounded up to the 8-byte rule.
    ///
    /// # Errors
    /// [`HostError::Symbol`] on redefinition.
    pub fn define(&mut self, name: &str, capacity: usize) -> Result<Symbol> {
        let cap = crate::align::padded_len(capacity);
        let offset = self.next_free;
        self.define_at(name, offset, cap)
    }

    /// Look up a symbol.
    ///
    /// # Errors
    /// [`HostError::Symbol`] when absent.
    pub fn get(&self, name: &str) -> Result<Symbol> {
        self.map
            .get(name)
            .copied()
            .ok_or_else(|| HostError::Symbol { name: name.to_owned(), problem: "not defined" })
    }

    /// Resolve a transfer of `len` bytes at `sym_offset` within `name`,
    /// returning the absolute MRAM offset.
    ///
    /// # Errors
    /// Unknown symbol, misaligned offset/length, or overflow of the
    /// symbol's capacity.
    pub fn resolve(&self, name: &str, sym_offset: usize, len: usize) -> Result<usize> {
        let sym = self.get(name)?;
        crate::align::check_aligned("offset", sym_offset)?;
        crate::align::check_aligned("length", len)?;
        let end = sym_offset.checked_add(len).ok_or(HostError::SymbolOverflow {
            name: name.to_owned(),
            requested: usize::MAX,
            capacity: sym.capacity,
        })?;
        if end > sym.capacity {
            return Err(HostError::SymbolOverflow {
                name: name.to_owned(),
                requested: end,
                capacity: sym.capacity,
            });
        }
        Ok(sym.offset + sym_offset)
    }

    /// Total MRAM bytes allocated so far.
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.next_free
    }

    /// Iterate `(name, symbol)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Symbol)> + '_ {
        self.map.iter().map(|(n, s)| (n.as_str(), *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_layout_packs_tightly() {
        let mut t = SymbolTable::new();
        let a = t.define("input", 784).unwrap();
        let b = t.define("weights", 100).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(a.capacity, 784);
        assert_eq!(b.offset, 784);
        assert_eq!(b.capacity, 104); // rounded up to 8
        assert_eq!(t.allocated(), 888);
    }

    #[test]
    fn redefinition_rejected() {
        let mut t = SymbolTable::new();
        t.define("x", 8).unwrap();
        assert!(matches!(t.define("x", 8), Err(HostError::Symbol { .. })));
    }

    #[test]
    fn resolve_checks_alignment_and_bounds() {
        let mut t = SymbolTable::new();
        t.define("buf", 64).unwrap();
        assert_eq!(t.resolve("buf", 8, 16).unwrap(), 8);
        assert!(matches!(t.resolve("buf", 4, 16), Err(HostError::Alignment { .. })));
        assert!(matches!(t.resolve("buf", 0, 12), Err(HostError::Alignment { .. })));
        assert!(matches!(t.resolve("buf", 32, 40), Err(HostError::SymbolOverflow { .. })));
        assert!(matches!(t.resolve("nope", 0, 8), Err(HostError::Symbol { .. })));
    }

    #[test]
    fn explicit_offsets_honoured() {
        let mut t = SymbolTable::new();
        t.define_at("high", 1024, 64).unwrap();
        let s = t.define("after", 8).unwrap();
        assert_eq!(s.offset, 1024 + 64);
        assert!(t.define_at("odd", 3, 8).is_err());
    }
}
