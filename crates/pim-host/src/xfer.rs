//! Scatter/gather transfer batches (`dpu_prepare_xfer` + `dpu_push_xfer`).
//!
//! To send *different* data to each DPU — one GEMM row per DPU in the
//! YOLOv3 mapping, one image batch per DPU in the eBNN mapping — the UPMEM
//! API first attaches a host buffer to each DPU (`dpu_prepare_xfer`,
//! Eq. 3.2) and then pushes them all to a common symbol with a common
//! length (`dpu_push_xfer`, Eq. 3.3). [`XferBatch`] reproduces this
//! two-phase protocol, including its failure modes: pushing with a buffer
//! count that doesn't match the set, or a length violating the 8-byte rule.

use crate::error::{HostError, Result};
use crate::set::DpuSet;
use dpu_sim::DpuId;

/// Transfer direction of a pushed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XferDirection {
    /// Host → DPU MRAM (`DPU_XFER_TO_DPU`).
    ToDpu,
    /// DPU MRAM → host (`DPU_XFER_FROM_DPU`).
    FromDpu,
}

/// A prepared scatter/gather batch.
///
/// Typical use, mirroring the paper's `DPU_FOREACH` + prepare/push idiom:
///
/// ```
/// use pim_host::{DpuSet, XferBatch};
/// use pim_host::xfer::XferDirection;
///
/// let mut set = DpuSet::allocate(2).unwrap();
/// set.define_symbol("row", 16).unwrap();
/// let rows = vec![vec![1u8; 8], vec![2u8; 8]];
///
/// let mut batch = XferBatch::new();
/// for row in &rows {
///     batch.prepare(row.clone());
/// }
/// batch.push(&mut set, "row", 0, 8).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct XferBatch {
    buffers: Vec<Vec<u8>>,
}

impl XferBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach the next DPU's buffer (`dpu_prepare_xfer`). Buffers are
    /// assigned to DPUs in preparation order: the i-th prepared buffer goes
    /// to DPU i.
    pub fn prepare(&mut self, buffer: Vec<u8>) -> &mut Self {
        self.buffers.push(buffer);
        self
    }

    /// Number of buffers prepared so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// True when no buffer has been prepared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Push all prepared buffers to `symbol` at `symbol_offset`
    /// (`dpu_push_xfer` with `DPU_XFER_TO_DPU`). Exactly `len` bytes of each
    /// buffer are sent — the SDK semantics where the push length caps the
    /// per-DPU transfer.
    ///
    /// # Errors
    /// [`HostError::XferArity`] when the batch size differs from the set
    /// size; alignment/symbol/bounds errors as usual; and an arity error if
    /// any buffer is shorter than `len`.
    pub fn push(
        &self,
        set: &mut DpuSet,
        symbol: &str,
        symbol_offset: usize,
        len: usize,
    ) -> Result<()> {
        self.check_arity(set)?;
        for (i, buf) in self.buffers.iter().enumerate() {
            if buf.len() < len {
                return Err(HostError::XferArity { prepared: buf.len(), dpus: len });
            }
            set.copy_to_dpu(DpuId(i as u32), symbol, symbol_offset, &buf[..len])?;
        }
        Ok(())
    }

    /// Gather `len` bytes from `symbol` on every DPU of the set
    /// (`dpu_push_xfer` with `DPU_XFER_FROM_DPU`), returning one buffer per
    /// DPU in DPU order.
    ///
    /// # Errors
    /// Alignment/symbol/bounds errors.
    pub fn gather(
        set: &DpuSet,
        symbol: &str,
        symbol_offset: usize,
        len: usize,
    ) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(set.len());
        for i in 0..set.len() {
            let mut buf = vec![0u8; len];
            set.copy_from_dpu(DpuId(i as u32), symbol, symbol_offset, &mut buf)?;
            out.push(buf);
        }
        Ok(out)
    }

    fn check_arity(&self, set: &DpuSet) -> Result<()> {
        if self.buffers.len() != set.len() {
            return Err(HostError::XferArity { prepared: self.buffers.len(), dpus: set.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_assigns_buffers_in_dpu_order() {
        let mut set = DpuSet::allocate(3).unwrap();
        set.define_symbol("row", 8).unwrap();
        let mut b = XferBatch::new();
        for i in 0..3u8 {
            b.prepare(vec![i + 1; 8]);
        }
        b.push(&mut set, "row", 0, 8).unwrap();
        for i in 0..3u32 {
            let mut out = [0u8; 8];
            set.copy_from_dpu(DpuId(i), "row", 0, &mut out).unwrap();
            assert_eq!(out, [(i + 1) as u8; 8]);
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("row", 8).unwrap();
        let mut b = XferBatch::new();
        b.prepare(vec![0; 8]);
        assert!(matches!(
            b.push(&mut set, "row", 0, 8),
            Err(HostError::XferArity { prepared: 1, dpus: 2 })
        ));
    }

    #[test]
    fn push_length_caps_transfer() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("row", 16).unwrap();
        let mut b = XferBatch::new();
        b.prepare(vec![7u8; 16]);
        b.push(&mut set, "row", 0, 8).unwrap();
        let mut out = [0u8; 16];
        set.copy_from_dpu(DpuId(0), "row", 0, &mut out).unwrap();
        assert_eq!(&out[..8], &[7u8; 8]);
        assert_eq!(&out[8..], &[0u8; 8]); // beyond push length untouched
    }

    #[test]
    fn short_buffer_rejected() {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("row", 16).unwrap();
        let mut b = XferBatch::new();
        b.prepare(vec![7u8; 4]);
        assert!(b.push(&mut set, "row", 0, 8).is_err());
    }

    #[test]
    fn gather_returns_per_dpu_buffers() {
        let mut set = DpuSet::allocate(2).unwrap();
        set.define_symbol("out", 8).unwrap();
        set.copy_to_dpu(DpuId(0), "out", 0, &[1u8; 8]).unwrap();
        set.copy_to_dpu(DpuId(1), "out", 0, &[2u8; 8]).unwrap();
        let rows = XferBatch::gather(&set, "out", 0, 8).unwrap();
        assert_eq!(rows, vec![vec![1u8; 8], vec![2u8; 8]]);
    }
}
