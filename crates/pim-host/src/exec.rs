//! Tier-2 kernel accounting: run CNN kernels natively, charge DPU cycles.
//!
//! Full CNN layers are executed as ordinary Rust over the DPU's simulated
//! MRAM while a [`KernelRun`] tallies, per tasklet, the operations the DPU
//! program would have executed. The tally is converted into cycles by the
//! calibrated pipeline law in [`dpu_sim::cost`]. The pattern a kernel
//! follows:
//!
//! ```
//! use pim_host::{KernelRun, OptLevel};
//! use dpu_sim::DpuParams;
//!
//! let mut run = KernelRun::new(DpuParams::default(), OptLevel::O3, 11);
//! // ... tasklet 3 performs an 8-bit MAC on WRAM-resident data:
//! let t = run.tally(3);
//! t.mul8 += 1;
//! t.alu += 1;
//! t.load += 2;
//! let est = run.estimate();
//! assert!(est.cycles > 0);
//! ```
//!
//! The same structure aggregates across DPUs: each DPU gets its own
//! `KernelRun`; the set-level makespan is the maximum estimate (all DPUs run
//! concurrently).

use dpu_sim::cost::{CycleModel, KernelEstimate, OpCounts, OptLevel};
use dpu_sim::DpuParams;

/// Per-tasklet operation tally for one kernel launch on one DPU.
#[derive(Debug, Clone)]
pub struct KernelRun {
    model: CycleModel,
    counts: Vec<OpCounts>,
}

impl KernelRun {
    /// A run with `tasklets` threads under the given device parameters and
    /// compiler optimization level.
    ///
    /// # Panics
    /// When `tasklets` is zero or exceeds the hardware maximum.
    #[must_use]
    pub fn new(params: DpuParams, opt: OptLevel, tasklets: usize) -> Self {
        assert!(
            tasklets >= 1 && tasklets <= params.max_tasklets,
            "tasklet count {tasklets} outside 1..={}",
            params.max_tasklets
        );
        Self { model: CycleModel::new(params, opt), counts: vec![OpCounts::default(); tasklets] }
    }

    /// Number of tasklets.
    #[must_use]
    pub fn tasklets(&self) -> usize {
        self.counts.len()
    }

    /// The cycle model in force.
    #[must_use]
    pub fn model(&self) -> CycleModel {
        self.model
    }

    /// Mutable tally of tasklet `t`.
    ///
    /// # Panics
    /// When `t` is out of range.
    pub fn tally(&mut self, t: usize) -> &mut OpCounts {
        &mut self.counts[t]
    }

    /// Charge one MRAM→WRAM or WRAM→MRAM transfer of `bytes` bytes to
    /// tasklet `t`.
    ///
    /// # Panics
    /// When `t` is out of range.
    pub fn charge_dma(&mut self, t: usize, bytes: usize) {
        let c = &mut self.counts[t];
        c.mram_transfers += 1;
        c.mram_bytes += bytes as u64;
    }

    /// Per-tasklet tallies, in tasklet order.
    #[must_use]
    pub fn counts(&self) -> &[OpCounts] {
        &self.counts
    }

    /// Aggregate tally across tasklets.
    #[must_use]
    pub fn total_counts(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for c in &self.counts {
            total.merge(c);
        }
        total
    }

    /// Cycle estimate for this launch.
    #[must_use]
    pub fn estimate(&self) -> KernelEstimate {
        self.model.estimate(&self.counts)
    }

    /// Estimated seconds for this launch.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.estimate().seconds(&self.model.params)
    }
}

/// Combine per-DPU estimates into the set's completion time: DPUs run
/// concurrently, so the set finishes with its slowest member (§4.1.3).
#[must_use]
pub fn makespan(estimates: &[KernelEstimate]) -> u64 {
    estimates.iter().map(|e| e.cycles).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_are_per_tasklet() {
        let mut run = KernelRun::new(DpuParams::default(), OptLevel::O3, 4);
        run.tally(0).alu += 100;
        run.tally(3).alu += 50;
        assert_eq!(run.counts()[0].alu, 100);
        assert_eq!(run.counts()[1].alu, 0);
        assert_eq!(run.total_counts().alu, 150);
    }

    #[test]
    fn estimate_reflects_imbalance() {
        let params = DpuParams::default();
        let mut balanced = KernelRun::new(params, OptLevel::O3, 2);
        balanced.tally(0).alu = 100;
        balanced.tally(1).alu = 100;
        let mut skewed = KernelRun::new(params, OptLevel::O3, 2);
        skewed.tally(0).alu = 190;
        skewed.tally(1).alu = 10;
        assert!(skewed.estimate().cycles > balanced.estimate().cycles);
    }

    #[test]
    fn dma_charging_matches_eq_3_4() {
        let mut run = KernelRun::new(DpuParams::default(), OptLevel::O3, 1);
        run.charge_dma(0, 2048);
        let est = run.estimate();
        // 1 DMA instruction slot + 1049 stall + drain.
        assert!(est.dma_cycles == 1049);
        assert!(est.is_memory_bound());
    }

    #[test]
    fn makespan_is_max() {
        let params = DpuParams::default();
        let mk = |alu: u64| {
            let mut r = KernelRun::new(params, OptLevel::O3, 1);
            r.tally(0).alu = alu;
            r.estimate()
        };
        let ests = vec![mk(10), mk(1000), mk(100)];
        assert_eq!(makespan(&ests), mk(1000).cycles);
        assert_eq!(makespan(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "tasklet count")]
    fn zero_tasklets_panics() {
        let _ = KernelRun::new(DpuParams::default(), OptLevel::O3, 0);
    }

    #[test]
    fn seconds_uses_device_frequency() {
        let mut run = KernelRun::new(DpuParams::default(), OptLevel::O3, 1);
        run.tally(0).alu = 350_000_000 / 11; // ~1s of rotations
        let s = run.seconds();
        assert!((s - 1.0).abs() < 0.01, "got {s}");
    }
}
