//! End-to-end serving tests: batching edge cases, determinism, fault
//! degradation, PGO invisibility, and bit-identity of zero-fault serving
//! against the plain batch pipeline.

use ebnn::codegen::{encode_slot, run_tier1_batch_multi_dpu};
use ebnn::mnist::synth_digit;
use ebnn::model::{EbnnModel, ModelConfig};
use ebnn::IMAGES_PER_DPU;
use pim_serve::{
    serve, BatchEngine, BatchRun, BreakerConfig, Completion, EbnnServeEngine, Gathered, OpenLoop,
    Overloaded, PipelineMode, Request, Rng64, ServeConfig, ServeReport, Traffic, TrafficStep,
};
use pim_trace::keys;

/// A scripted traffic source: fixed requests with exact arrival stamps —
/// the precision instrument for batching edge cases.
struct Script<I> {
    reqs: std::collections::VecDeque<Request<I>>,
}

impl<I> Script<I> {
    fn new(reqs: Vec<Request<I>>) -> Self {
        Self { reqs: reqs.into() }
    }
}

impl<I> Traffic for Script<I> {
    type Item = I;

    fn next(&mut self) -> TrafficStep<I> {
        match self.reqs.pop_front() {
            Some(r) => TrafficStep::Arrival(r),
            None => TrafficStep::Done,
        }
    }

    fn on_complete(&mut self, _c: &Completion) {}

    fn on_reject(&mut self, _r: &Overloaded) {}
}

fn model() -> EbnnModel {
    EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() })
}

fn images(n: usize, seed: u64) -> Vec<ebnn::mnist::GrayImage> {
    (0..n).map(|i| synth_digit(i % 10, seed ^ i as u64)).collect()
}

fn slots(m: &EbnnModel, imgs: &[ebnn::mnist::GrayImage]) -> Vec<Vec<u8>> {
    imgs.iter().map(|img| encode_slot(m, img)).collect()
}

fn cfg() -> ServeConfig {
    ServeConfig { record_outputs: true, ..ServeConfig::default() }
}

/// Flatten a report's outputs (admission order) into one item stream.
fn flat_outputs(report: &ServeReport<Vec<u8>>) -> Vec<Option<Vec<u8>>> {
    report.outputs.iter().flat_map(|(_, items)| items.iter().cloned()).collect()
}

#[test]
fn zero_fault_serving_is_bit_identical_to_batch_pipeline() {
    let m = model();
    let imgs = images(2 * IMAGES_PER_DPU + 5, 0xBEEF);
    let sl = slots(&m, &imgs);

    // Reference: the plain batch pipeline over the same images.
    let (want, _) = run_tier1_batch_multi_dpu(&m, &imgs).expect("batch pipeline");

    for pipeline in [PipelineMode::Serial, PipelineMode::Double] {
        // One request carrying everything: the serving path packs the same
        // 16-image chunks onto the same DPUs as the batch pipeline.
        let mut engine = EbnnServeEngine::new(&m, 3, pipeline, None).expect("engine");
        assert!(engine.capacity() >= sl.len(), "one batch covers the request");
        let mut t = Script::new(vec![Request { id: 0, arrival: 0, items: sl.clone() }]);
        let report = serve(&mut engine, &mut t, &ServeConfig { pipeline, ..cfg() }).expect("serve");

        let got = flat_outputs(&report);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_deref(), Some(w.as_slice()), "{pipeline:?} diverged");
        }
        assert_eq!(report.metrics.counter(keys::SERVE_COMPLETED), 1);
        assert_eq!(report.metrics.counter(keys::SERVE_FAILED), 0);
    }
}

#[test]
fn oversize_request_splits_across_launches_and_stays_correct() {
    let m = model();
    // One DPU => capacity 16; a 40-item request needs 3 launches.
    let imgs = images(40, 0x51D);
    let sl = slots(&m, &imgs);
    let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
    assert_eq!(engine.capacity(), IMAGES_PER_DPU);
    let mut t = Script::new(vec![Request { id: 0, arrival: 0, items: sl }]);
    let report = serve(&mut engine, &mut t, &cfg()).expect("serve");

    assert_eq!(report.metrics.counter(keys::SERVE_BATCHES), 3);
    assert_eq!(report.metrics.counter(keys::SERVE_SPLITS), 1, "one request split");
    assert_eq!(report.completions.len(), 1);
    assert!(report.completions[0].served);

    // The split slices reassemble to the batch pipeline's output.
    let mut want = Vec::new();
    for chunk in imgs.chunks(IMAGES_PER_DPU) {
        let (features, _) = run_tier1_batch_multi_dpu(&m, chunk).expect("batch pipeline");
        want.extend(features);
    }
    let got = flat_outputs(&report);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.as_deref(), Some(w.as_slice()));
    }
}

#[test]
fn empty_traffic_launches_nothing() {
    let m = model();
    let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
    let mut t = Script::new(Vec::<Request<Vec<u8>>>::new());
    let report = serve(&mut engine, &mut t, &cfg()).expect("serve");
    assert_eq!(report.metrics.counter(keys::SERVE_BATCHES), 0);
    assert_eq!(report.metrics.counter(keys::SERVE_REQUESTS), 0);
    assert!(report.completions.is_empty());
    assert!(report.rejections.is_empty());
    assert_eq!(report.vtime_cycles, 0);
}

#[test]
fn deadline_cut_fires_for_a_lonely_partial_batch() {
    let m = model();
    let sl = slots(&m, &images(2, 3));
    let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
    // Second arrival is far beyond the first's deadline, so the first
    // launches as a deadline-cut partial batch.
    let mut t = Script::new(vec![
        Request { id: 0, arrival: 0, items: vec![sl[0].clone()] },
        Request { id: 1, arrival: 50_000_000, items: vec![sl[1].clone()] },
    ]);
    let c = ServeConfig { max_batch_delay: 10_000, ..cfg() };
    let report = serve(&mut engine, &mut t, &c).expect("serve");
    assert_eq!(report.metrics.counter(keys::SERVE_BATCHES), 2);
    assert!(report.metrics.counter(keys::SERVE_CUTS_DEADLINE) >= 1, "deadline cut expected");
    assert_eq!(report.completions.len(), 2);
}

#[test]
fn shutdown_drain_completes_in_flight_batches() {
    let m = model();
    // 3 one-item requests at t=0 against capacity 16: traffic ends with a
    // partial batch that must drain to completion.
    let sl = slots(&m, &images(3, 17));
    let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
    let reqs = sl
        .iter()
        .enumerate()
        .map(|(i, s)| Request { id: i as u64, arrival: 0, items: vec![s.clone()] })
        .collect();
    let mut t = Script::new(reqs);
    let report = serve(&mut engine, &mut t, &cfg()).expect("serve");
    assert_eq!(report.metrics.counter(keys::SERVE_CUTS_DRAIN), 1);
    assert_eq!(report.metrics.counter(keys::SERVE_COMPLETED), 3);
    assert_eq!(report.completions.len(), 3, "every in-flight request completed at shutdown");
    assert!(report.completions.iter().all(|c| c.served && c.finish > 0));
}

#[test]
fn admission_rejections_are_counted_and_typed() {
    let m = model();
    // Capacity 16; full-batch requests arriving simultaneously with a
    // queue bound of 1: the first packs, the second waits, the rest shed.
    let sl = slots(&m, &images(IMAGES_PER_DPU, 23));
    let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
    let reqs = (0..5).map(|i| Request { id: i, arrival: 0, items: sl.clone() }).collect();
    let mut t = Script::new(reqs);
    let c = ServeConfig { queue_capacity: 1, ..cfg() };
    let report = serve(&mut engine, &mut t, &c).expect("serve");

    let rejected = report.metrics.counter(keys::SERVE_REJECTED);
    assert!(rejected >= 1, "overload must shed");
    assert_eq!(rejected as usize, report.rejections.len());
    for r in &report.rejections {
        assert_eq!(r.queue_depth, 1, "shed at the configured bound");
    }
    assert_eq!(
        report.metrics.counter(keys::SERVE_ACCEPTED) + rejected,
        report.metrics.counter(keys::SERVE_REQUESTS),
    );
}

#[test]
fn forced_offline_without_redispatch_degrades_but_keeps_goodput() {
    let m = model();
    let imgs = images(2 * IMAGES_PER_DPU, 31);
    let sl = slots(&m, &imgs);
    let policy = pim_host::ResilientLaunchPolicy {
        redispatch: false,
        ..pim_host::ResilientLaunchPolicy::with_faults(dpu_sim::FaultPlan::new(
            dpu_sim::FaultConfig { forced_offline: vec![1], ..dpu_sim::FaultConfig::default() },
        ))
    };
    let mut engine =
        EbnnServeEngine::new(&m, 2, PipelineMode::Double, Some(policy)).expect("engine");
    let mut t = Script::new(vec![Request { id: 0, arrival: 0, items: sl }]);
    let report = serve(&mut engine, &mut t, &cfg()).expect("serve");

    assert_eq!(report.metrics.counter(keys::SERVE_FAILED), 1, "degraded request counted");
    assert!(!report.completions[0].served);
    assert!(report.goodput_ips > 0.0, "survivor DPU still produces goodput");
    let got = flat_outputs(&report);
    // DPU 0's chunk is served, DPU 1's is lost.
    assert!(got[..IMAGES_PER_DPU].iter().all(Option::is_some));
    assert!(got[IMAGES_PER_DPU..].iter().all(Option::is_none));
}

#[test]
fn redispatch_recovers_offline_dpus_results_exactly() {
    let m = model();
    let imgs = images(2 * IMAGES_PER_DPU, 77);
    let sl = slots(&m, &imgs);
    let (want, _) = run_tier1_batch_multi_dpu(&m, &imgs).expect("batch pipeline");

    let policy = pim_host::ResilientLaunchPolicy::with_faults(dpu_sim::FaultPlan::new(
        dpu_sim::FaultConfig { forced_offline: vec![0], ..dpu_sim::FaultConfig::default() },
    ));
    let mut engine =
        EbnnServeEngine::new(&m, 2, PipelineMode::Double, Some(policy)).expect("engine");
    let mut t = Script::new(vec![Request { id: 0, arrival: 0, items: sl }]);
    let report = serve(&mut engine, &mut t, &cfg()).expect("serve");

    assert_eq!(report.metrics.counter(keys::SERVE_FAILED), 0);
    assert!(report.metrics.counter(keys::SERVE_REDISPATCHED_ITEMS) >= IMAGES_PER_DPU as u64);
    let got = flat_outputs(&report);
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.as_deref(), Some(w.as_slice()), "redispatched results must match");
    }
}

#[test]
fn fixed_seed_reproduces_metrics_bit_for_bit() {
    let run = || {
        let m = model();
        let pool = slots(&m, &images(8, 1));
        let policy = pim_host::ResilientLaunchPolicy::with_faults(dpu_sim::FaultPlan::new(
            dpu_sim::FaultConfig {
                seed: 0xFA117,
                dpu_offline_prob: 0.05,
                dma_fail_prob: 0.02,
                ..dpu_sim::FaultConfig::default()
            },
        ));
        let mut engine =
            EbnnServeEngine::new(&m, 2, PipelineMode::Double, Some(policy)).expect("engine");
        let gen = move |rng: &mut Rng64, _id: u64| -> Vec<Vec<u8>> {
            let n = rng.range(1, 3) as usize;
            (0..n).map(|_| pool[rng.range(0, 7) as usize].clone()).collect()
        };
        let mut t = OpenLoop::new(0xD06, 40, 5_000, gen);
        let report = serve(&mut engine, &mut t, &ServeConfig::default()).expect("serve");
        let json = serde_json::to_string(&report.metrics.to_json()).expect("serialize metrics");
        (json, report.completions, report.rejections)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "metrics JSON must be bit-identical");
    assert_eq!(a.1, b.1, "completions must match");
    assert_eq!(a.2, b.2, "rejections must match");
}

/// A scripted engine for circuit-breaker tests: one item per DPU, a
/// designated sick DPU that quarantines every batch staging items on it
/// until launch sequence `heal_after`. Honors the service's live mask, so
/// ejection is observable as the sick DPU simply receiving no items.
struct FlakyEngine {
    dpus: usize,
    live: Vec<bool>,
    items: Vec<u8>,
    assign: Vec<u32>,
    served: Vec<bool>,
    sick: u32,
    heal_after: u64,
}

impl FlakyEngine {
    fn new(dpus: usize, sick: u32, heal_after: u64) -> Self {
        Self {
            dpus,
            live: vec![true; dpus],
            items: Vec::new(),
            assign: Vec::new(),
            served: Vec::new(),
            sick,
            heal_after,
        }
    }
}

impl BatchEngine for FlakyEngine {
    type Item = u8;
    type Output = u8;

    fn capacity(&self) -> usize {
        self.dpus
    }

    fn dpus(&self) -> usize {
        self.dpus
    }

    fn buffers(&self) -> usize {
        1
    }

    fn set_live_mask(&mut self, live: &[bool]) {
        self.live = live.to_vec();
    }

    fn stage(&mut self, items: &[u8], buf: usize) -> Result<u64, pim_host::HostError> {
        assert_eq!(buf, 0);
        let targets: Vec<u32> = (0..self.dpus as u32).filter(|&d| self.live[d as usize]).collect();
        assert!(items.len() <= targets.len(), "service must pack within live capacity");
        self.items = items.to_vec();
        self.assign = targets[..items.len()].to_vec();
        self.served = vec![true; items.len()];
        Ok(items.len() as u64)
    }

    fn launch(&mut self, seq: u64) -> Result<BatchRun, pim_host::HostError> {
        let mut quarantined = Vec::new();
        if seq < self.heal_after && self.assign.contains(&self.sick) {
            quarantined.push(self.sick);
            for (i, &d) in self.assign.iter().enumerate() {
                if d == self.sick {
                    self.served[i] = false;
                }
            }
        }
        let lost = self.served.iter().filter(|s| !**s).count();
        Ok(BatchRun {
            compute_cycles: 1_000,
            redispatched_items: 0,
            lost_items: lost,
            quarantined_dpus: quarantined,
            repaired_dpus: Vec::new(),
            active_dpus: self.assign.clone(),
        })
    }

    fn gather(&mut self, buf: usize) -> Result<Gathered<u8>, pim_host::HostError> {
        assert_eq!(buf, 0);
        let outs = self.items.iter().zip(&self.served).map(|(&x, &ok)| ok.then_some(x)).collect();
        Ok((outs, self.items.len() as u64))
    }

    fn dirty(&self) -> bool {
        false
    }

    fn restore(&mut self) -> Result<(), pim_host::HostError> {
        Ok(())
    }

    fn recompile_hot(&mut self, _min_entries: u64) -> Result<usize, pim_host::HostError> {
        Ok(0)
    }
}

fn breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        rank_dpus: 2,
        window: 4,
        trip_score: 100,
        cooldown_batches: 2,
        quarantine_weight: 50,
        repair_weight: 1,
    }
}

#[test]
fn breaker_ejects_sick_rank_and_readmits_after_clean_probe() {
    // 4 DPUs = 2 ranks of 2; DPU 3 (rank 1) quarantines until launch 6,
    // then heals. The breaker must trip rank 1, keep traffic off it, and
    // re-admit it after a clean probation probe.
    let mut engine = FlakyEngine::new(4, 3, 6);
    let mut t = Script::new(vec![Request { id: 0, arrival: 0, items: vec![7u8; 40] }]);
    let c = ServeConfig { breaker: Some(breaker_cfg()), record_outputs: true, ..cfg2() };
    let report = serve(&mut engine, &mut t, &c).expect("serve");

    assert!(report.metrics.counter(keys::SERVE_BREAKER_TRIPS) >= 2, "trip + failed probe re-trip");
    assert!(report.metrics.counter(keys::SERVE_BREAKER_PROBES) >= 2);
    assert_eq!(report.metrics.counter(keys::SERVE_BREAKER_READMITS), 1, "healed rank re-admitted");
    assert_eq!(report.metrics.gauge(keys::SERVE_BREAKER_RANKS), Some(2.0));
    assert_eq!(report.metrics.gauge(keys::SERVE_BREAKER_OPEN_RANKS), Some(0.0));
    let quarantines = report.metrics.counter(keys::SERVE_QUARANTINED_DPUS);
    assert!(
        (2..=4).contains(&quarantines),
        "trip after 2 quarantines, at most a couple of failed probes: {quarantines}"
    );
    // Lost items match quarantine events exactly (one item per sick DPU
    // per faulted batch) — everything else served.
    let got = flat_outputs2(&report);
    let lost = got.iter().filter(|o| o.is_none()).count() as u64;
    assert_eq!(lost, quarantines, "each quarantine loses exactly its one staged item");
    assert_eq!(got.len(), 40);
    assert!(!report.completions[0].served, "request lost items, completes degraded");
    assert_eq!(report.metrics.counter(keys::SERVE_FAILED), 1);
}

#[test]
fn breaker_open_rank_shrinks_admission_and_sheds_typed_overloaded() {
    // DPU 3 never heals: rank 1 ends the warmup run ejected. A burst of
    // single-item requests then arrives at an idle service; with one of
    // two ranks live, the queue bound shrinks from 4 to 2, so the burst
    // sheds with typed `Overloaded` rejections at depth 2.
    let mut engine = FlakyEngine::new(4, 3, u64::MAX);
    let mut reqs = vec![Request { id: 0, arrival: 0, items: vec![9u8; 40] }];
    for i in 1..=6u64 {
        reqs.push(Request { id: i, arrival: 1_000_000_000, items: vec![i as u8] });
    }
    let mut t = Script::new(reqs);
    let c = ServeConfig {
        queue_capacity: 4,
        breaker: Some(breaker_cfg()),
        record_outputs: true,
        ..cfg2()
    };
    let report = serve(&mut engine, &mut t, &c).expect("serve");

    assert_eq!(report.metrics.counter(keys::SERVE_BREAKER_READMITS), 0, "sick rank never heals");
    assert!(report.metrics.counter(keys::SERVE_BREAKER_TRIPS) >= 1);
    assert!(
        report.rejections.iter().any(|r| r.queue_depth == 2),
        "burst must shed at the shrunken bound (2 of 4): {:?}",
        report.rejections
    );
    let rejected = report.metrics.counter(keys::SERVE_REJECTED);
    assert_eq!(rejected as usize, report.rejections.len());
    assert_eq!(
        report.metrics.counter(keys::SERVE_COMPLETED)
            + report.metrics.counter(keys::SERVE_FAILED)
            + rejected,
        7,
        "every request completes, degrades, or sheds — none time out"
    );
}

/// `cfg()` pinned to `Vec<u8>` outputs; the breaker tests serve `u8`.
fn cfg2() -> ServeConfig {
    ServeConfig { record_outputs: true, ..ServeConfig::default() }
}

fn flat_outputs2(report: &ServeReport<u8>) -> Vec<Option<u8>> {
    report.outputs.iter().flat_map(|(_, items)| items.iter().copied()).collect()
}

#[test]
fn pgo_warmup_is_observationally_invisible() {
    let m = model();
    let sl = slots(&m, &images(IMAGES_PER_DPU, 9));
    let run = |warmup: Option<u64>| {
        let mut engine = EbnnServeEngine::new(&m, 1, PipelineMode::Double, None).expect("engine");
        let reqs =
            (0..3u64).map(|i| Request { id: i, arrival: i * 1_000, items: sl.clone() }).collect();
        let mut t = Script::new(reqs);
        let c = ServeConfig { pgo_warmup_batches: warmup, ..cfg() };
        serve(&mut engine, &mut t, &c).expect("serve")
    };
    let plain = run(None);
    let pgo = run(Some(1));

    assert_eq!(plain.metrics.counter(keys::SERVE_PGO_RECOMPILES), 0);
    assert_eq!(pgo.metrics.counter(keys::SERVE_PGO_RECOMPILES), 1);
    // Engine-tier cycle identity: everything observable matches.
    assert_eq!(plain.completions, pgo.completions);
    assert_eq!(plain.vtime_cycles, pgo.vtime_cycles);
    assert_eq!(flat_outputs(&plain), flat_outputs(&pgo));
}
