//! Deterministic traffic generation: seeded open- and closed-loop sources.
//!
//! Everything is integer arithmetic on a splitmix64 stream, so a fixed
//! seed reproduces the exact same arrival schedule, request sizes, and
//! (in closed loop) think times on every platform — the loadgen's
//! bit-determinism guarantee rests on this.

use crate::request::{Completion, Overloaded, Request};
use std::collections::{BTreeMap, BinaryHeap};

/// One splitmix64 step (public: the serve engine reuses it to derive
/// per-batch fault seeds).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny seeded integer RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..=hi` (modulo bias is irrelevant for traffic
    /// shaping and keeps the math integer-only).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// A positive gap with mean ≈ `mean` (uniform on `1..=2·mean−1`).
    pub fn gap(&mut self, mean: u64) -> u64 {
        let m = mean.max(1);
        self.range(1, 2 * m - 1)
    }
}

/// What the traffic source has for the service right now.
#[derive(Debug)]
pub enum TrafficStep<I> {
    /// A request arrived.
    Arrival(Request<I>),
    /// Closed-loop clients are blocked on in-flight completions; flushing
    /// the pending readback will unblock them.
    Waiting,
    /// No further requests will ever arrive.
    Done,
}

/// A source of requests plus the completion/rejection feedback channel
/// closed-loop sources need.
pub trait Traffic {
    /// Work-item type of the requests produced.
    type Item;

    /// Produce the next arrival, or report the source's state.
    fn next(&mut self) -> TrafficStep<Self::Item>;

    /// A request finished (served or degraded) — closed-loop sources
    /// schedule the issuing client's next request from here.
    fn on_complete(&mut self, completion: &Completion);

    /// A request was shed at admission.
    fn on_reject(&mut self, rejection: &Overloaded);
}

/// Open-loop source: arrivals follow the seeded schedule regardless of
/// service latency (the "arrival rate" experiments).
pub struct OpenLoop<I, F> {
    rng: Rng64,
    gen: F,
    remaining: u64,
    mean_gap: u64,
    clock: u64,
    next_id: u64,
    _marker: std::marker::PhantomData<I>,
}

impl<I, F: FnMut(&mut Rng64, u64) -> Vec<I>> OpenLoop<I, F> {
    /// `requests` arrivals with mean inter-arrival `mean_gap` cycles;
    /// `gen(rng, id)` builds each request's items.
    #[must_use]
    pub fn new(seed: u64, requests: u64, mean_gap: u64, gen: F) -> Self {
        Self {
            rng: Rng64::new(seed),
            gen,
            remaining: requests,
            mean_gap,
            clock: 0,
            next_id: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I, F: FnMut(&mut Rng64, u64) -> Vec<I>> Traffic for OpenLoop<I, F> {
    type Item = I;

    fn next(&mut self) -> TrafficStep<I> {
        if self.remaining == 0 {
            return TrafficStep::Done;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let arrival = self.clock;
        let items = (self.gen)(&mut self.rng, id);
        self.clock += self.rng.gap(self.mean_gap);
        TrafficStep::Arrival(Request { id, arrival, items })
    }

    fn on_complete(&mut self, _completion: &Completion) {}

    fn on_reject(&mut self, _rejection: &Overloaded) {}
}

/// Closed-loop source: `clients` concurrent users, each issuing its next
/// request `think` cycles after the previous one finishes (or is shed) —
/// latency feedback throttles load, the classic closed-loop model.
pub struct ClosedLoop<I, F> {
    rng: Rng64,
    gen: F,
    /// Requests still allowed to be issued (total budget).
    remaining: u64,
    think_mean: u64,
    next_id: u64,
    /// Min-heap of (arrival cycle, client) — `Reverse` for earliest-first.
    ready: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    in_flight: BTreeMap<u64, u64>,
    _marker: std::marker::PhantomData<I>,
}

impl<I, F: FnMut(&mut Rng64, u64) -> Vec<I>> ClosedLoop<I, F> {
    /// `clients` users issuing `requests` total, thinking ≈`think_mean`
    /// cycles between interactions; `gen(rng, id)` builds each request.
    ///
    /// # Panics
    /// When `clients` is zero.
    #[must_use]
    pub fn new(seed: u64, clients: u64, requests: u64, think_mean: u64, gen: F) -> Self {
        assert!(clients > 0, "closed loop needs at least one client");
        let mut rng = Rng64::new(seed);
        let mut ready = BinaryHeap::new();
        for c in 0..clients {
            let t = rng.gap(think_mean.max(1));
            ready.push(std::cmp::Reverse((t, c)));
        }
        Self {
            rng,
            gen,
            remaining: requests,
            think_mean,
            next_id: 0,
            ready,
            in_flight: BTreeMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    fn reschedule(&mut self, client: u64, at: u64) {
        let t = at + self.rng.gap(self.think_mean);
        self.ready.push(std::cmp::Reverse((t, client)));
    }
}

impl<I, F: FnMut(&mut Rng64, u64) -> Vec<I>> Traffic for ClosedLoop<I, F> {
    type Item = I;

    fn next(&mut self) -> TrafficStep<I> {
        if self.remaining == 0 {
            return if self.in_flight.is_empty() {
                TrafficStep::Done
            } else {
                TrafficStep::Waiting
            };
        }
        match self.ready.pop() {
            Some(std::cmp::Reverse((arrival, client))) => {
                self.remaining -= 1;
                let id = self.next_id;
                self.next_id += 1;
                let items = (self.gen)(&mut self.rng, id);
                self.in_flight.insert(id, client);
                TrafficStep::Arrival(Request { id, arrival, items })
            }
            None if self.in_flight.is_empty() => TrafficStep::Done,
            None => TrafficStep::Waiting,
        }
    }

    fn on_complete(&mut self, completion: &Completion) {
        if let Some(client) = self.in_flight.remove(&completion.id) {
            self.reschedule(client, completion.finish);
        }
    }

    fn on_reject(&mut self, rejection: &Overloaded) {
        if let Some(client) = self.in_flight.remove(&rejection.id) {
            self.reschedule(client, rejection.at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_item(_rng: &mut Rng64, id: u64) -> Vec<u64> {
        vec![id]
    }

    #[test]
    fn open_loop_is_deterministic_and_bounded() {
        let collect = |seed| {
            let mut t = OpenLoop::new(seed, 50, 100, one_item);
            let mut out = Vec::new();
            while let TrafficStep::Arrival(r) = t.next() {
                out.push((r.id, r.arrival));
            }
            assert!(matches!(t.next(), TrafficStep::Done));
            out
        };
        let a = collect(7);
        assert_eq!(a, collect(7));
        assert_ne!(a, collect(8));
        assert_eq!(a.len(), 50);
        // Arrivals are monotone and gaps are in [1, 199].
        for w in a.windows(2) {
            let gap = w[1].1 - w[0].1;
            assert!((1..=199).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn closed_loop_waits_on_in_flight_clients() {
        let mut t = ClosedLoop::new(3, 2, 10, 50, one_item);
        let TrafficStep::Arrival(a) = t.next() else { panic!("expected arrival") };
        let TrafficStep::Arrival(b) = t.next() else { panic!("expected arrival") };
        // Both clients are now blocked.
        assert!(matches!(t.next(), TrafficStep::Waiting));
        t.on_complete(&Completion {
            id: a.id,
            arrival: a.arrival,
            finish: 500,
            items: 1,
            served: true,
        });
        let TrafficStep::Arrival(c) = t.next() else { panic!("expected arrival") };
        assert!(c.arrival > 500, "next interaction comes after completion + think");
        let _ = b;
    }

    #[test]
    fn closed_loop_reschedules_after_rejection() {
        let mut t = ClosedLoop::new(9, 1, 5, 10, one_item);
        let TrafficStep::Arrival(a) = t.next() else { panic!("expected arrival") };
        assert!(matches!(t.next(), TrafficStep::Waiting));
        t.on_reject(&Overloaded { id: a.id, at: a.arrival, queue_depth: 4 });
        let TrafficStep::Arrival(b) = t.next() else { panic!("expected arrival") };
        assert!(b.arrival > a.arrival);
    }
}
