//! Deterministic serving traffic generator.
//!
//! Replays seeded open- or closed-loop traffic against the eBNN serving
//! engine and reports p50/p99/p999 latency and goodput from the
//! `serve.*` metrics. `--compare` runs the same traffic through the
//! serial and double-buffered pipelines, prints the goodput speedup,
//! optionally gates it (`--min-speedup`) and writes a BENCH-style JSON
//! record (`--bench-json`).
//!
//! Everything is a pure function of `--seed` and the flags: two runs
//! with the same arguments print byte-identical `--json` output, which
//! the CI `serve-smoke` job asserts.

use ebnn::codegen::encode_slot;
use ebnn::model::{EbnnModel, ModelConfig};
use pim_serve::{
    serve, BreakerConfig, ClosedLoop, EbnnServeEngine, LinkModel, OpenLoop, PipelineMode, Rng64,
    ServeConfig, ServeReport,
};
use std::fmt::Write as _;

#[derive(Debug, Clone)]
struct Args {
    mode: String,
    seed: u64,
    requests: u64,
    gap: u64,
    clients: u64,
    think: u64,
    items_lo: u64,
    items_hi: u64,
    dpus: usize,
    filters: usize,
    pipeline: PipelineMode,
    queue_depth: usize,
    delay: u64,
    bw: u64,
    pgo_warmup: Option<u64>,
    fault_offline: f64,
    fault_dma: f64,
    fault_flip: f64,
    fault_hang: f64,
    fault_forced: Vec<u32>,
    fault_seed: u64,
    chaos: bool,
    json: bool,
    compare: bool,
    min_speedup: f64,
    bench_json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            mode: "open".to_owned(),
            seed: 42,
            requests: 10_000,
            gap: 20_000,
            clients: 32,
            think: 200_000,
            items_lo: 1,
            items_hi: 4,
            dpus: 8,
            filters: 1,
            pipeline: PipelineMode::Double,
            queue_depth: 64,
            delay: 500_000,
            bw: pim_serve::DEFAULT_SERVE_LINK_BYTES_PER_SEC,
            pgo_warmup: None,
            fault_offline: 0.0,
            fault_dma: 0.0,
            fault_flip: 0.0,
            fault_hang: 0.0,
            fault_forced: Vec::new(),
            fault_seed: 0xF0CA,
            chaos: false,
            json: false,
            compare: false,
            min_speedup: 0.0,
            bench_json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--mode open|closed] [--seed N] [--requests N] [--gap CYCLES]\n\
         \x20              [--clients N] [--think CYCLES] [--items LO..HI] [--dpus N]\n\
         \x20              [--filters N] [--pipeline serial|double] [--queue-depth N]\n\
         \x20              [--delay CYCLES] [--bw BYTES_PER_SEC] [--pgo-warmup BATCHES]\n\
         \x20              [--fault-offline P] [--fault-dma P] [--fault-flip P]\n\
         \x20              [--fault-hang P] [--fault-forced CSV] [--fault-seed N]\n\
         \x20              [--chaos] [--json] [--compare [--min-speedup X] [--bench-json PATH]]\n\
         --chaos arms a seeded multi-fault campaign (flips, double flips, DMA aborts,\n\
         hangs, offline DPUs) with ECC + the circuit breaker, and prints a JSON\n\
         health report (corrections, ejected ranks, probe readmits, latency)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = |flag: &str| argv.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--mode" => a.mode = val("--mode"),
            "--seed" => a.seed = val("--seed").parse().expect("--seed"),
            "--requests" => a.requests = val("--requests").parse().expect("--requests"),
            "--gap" => a.gap = val("--gap").parse().expect("--gap"),
            "--clients" => a.clients = val("--clients").parse().expect("--clients"),
            "--think" => a.think = val("--think").parse().expect("--think"),
            "--items" => {
                let v = val("--items");
                let (lo, hi) = v.split_once("..").unwrap_or((v.as_str(), v.as_str()));
                a.items_lo = lo.parse().expect("--items lo");
                a.items_hi = hi.parse().expect("--items hi");
            }
            "--dpus" => a.dpus = val("--dpus").parse().expect("--dpus"),
            "--filters" => a.filters = val("--filters").parse().expect("--filters"),
            "--pipeline" => {
                a.pipeline = match val("--pipeline").as_str() {
                    "serial" => PipelineMode::Serial,
                    "double" => PipelineMode::Double,
                    _ => usage(),
                }
            }
            "--queue-depth" => {
                a.queue_depth = val("--queue-depth").parse().expect("--queue-depth");
            }
            "--delay" => a.delay = val("--delay").parse().expect("--delay"),
            "--bw" => a.bw = val("--bw").parse().expect("--bw"),
            "--pgo-warmup" => {
                a.pgo_warmup = Some(val("--pgo-warmup").parse().expect("--pgo-warmup"));
            }
            "--fault-offline" => a.fault_offline = val("--fault-offline").parse().expect("P"),
            "--fault-dma" => a.fault_dma = val("--fault-dma").parse().expect("P"),
            "--fault-flip" => a.fault_flip = val("--fault-flip").parse().expect("P"),
            "--fault-hang" => a.fault_hang = val("--fault-hang").parse().expect("P"),
            "--fault-forced" => {
                a.fault_forced = val("--fault-forced")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("--fault-forced"))
                    .collect();
            }
            "--fault-seed" => a.fault_seed = val("--fault-seed").parse().expect("--fault-seed"),
            "--chaos" => a.chaos = true,
            "--json" => a.json = true,
            "--compare" => a.compare = true,
            "--min-speedup" => {
                a.min_speedup = val("--min-speedup").parse().expect("--min-speedup");
            }
            "--bench-json" => a.bench_json = Some(val("--bench-json")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    a
}

fn policy(a: &Args) -> Option<pim_host::ResilientLaunchPolicy> {
    let armed = a.chaos
        || a.fault_offline > 0.0
        || a.fault_dma > 0.0
        || a.fault_flip > 0.0
        || a.fault_hang > 0.0
        || !a.fault_forced.is_empty();
    armed.then(|| {
        // `--chaos` fills in campaign defaults for any rate left at zero
        // (explicit --fault-* flags still win), and adds the SEC-DED
        // uncorrectable class, which has no standalone flag.
        let or_chaos = |explicit: f64, chaos_default: f64| {
            if a.chaos && explicit == 0.0 {
                chaos_default
            } else {
                explicit
            }
        };
        pim_host::ResilientLaunchPolicy::with_faults(dpu_sim::FaultPlan::new(
            dpu_sim::FaultConfig {
                seed: a.fault_seed,
                dpu_offline_prob: or_chaos(a.fault_offline, 0.04),
                dma_fail_prob: or_chaos(a.fault_dma, 0.08),
                bit_flip_prob: or_chaos(a.fault_flip, 0.08),
                double_flip_prob: if a.chaos { 0.04 } else { 0.0 },
                hang_prob: or_chaos(a.fault_hang, 0.04),
                forced_offline: a.fault_forced.clone(),
            },
        ))
    })
}

/// Pre-encode a deterministic pool of image slots; requests draw from it
/// so per-request item generation stays cheap and seed-stable.
fn slot_pool(model: &EbnnModel, seed: u64) -> Vec<Vec<u8>> {
    (0..64u64)
        .map(|i| {
            let img = ebnn::mnist::synth_digit((i % 10) as usize, seed ^ (i / 10));
            encode_slot(model, &img)
        })
        .collect()
}

fn run_once(a: &Args, pipeline: PipelineMode) -> (ServeReport<Vec<u8>>, Option<serde_json::Value>) {
    let model = EbnnModel::generate(ModelConfig { filters: a.filters, ..ModelConfig::default() });
    let pool = slot_pool(&model, a.seed);
    let mut engine =
        EbnnServeEngine::new(&model, a.dpus, pipeline, policy(a)).expect("engine builds");
    if a.chaos {
        engine.enable_ecc(true);
    }
    let cfg = ServeConfig {
        queue_capacity: a.queue_depth,
        max_batch_delay: a.delay,
        pipeline,
        link: LinkModel { bytes_per_sec: a.bw, ..LinkModel::default() },
        pgo_warmup_batches: a.pgo_warmup,
        record_outputs: false,
        // Small ranks (4 per set by default) so the breaker can actually
        // eject under the chaos campaign's fault rates.
        breaker: a
            .chaos
            .then(|| BreakerConfig { rank_dpus: (a.dpus / 4).max(1), ..BreakerConfig::default() }),
        ..ServeConfig::default()
    }
    .with_env();
    let (lo, hi) = (a.items_lo.max(1), a.items_hi.max(a.items_lo.max(1)));
    let gen = move |rng: &mut Rng64, _id: u64| -> Vec<Vec<u8>> {
        let n = rng.range(lo, hi) as usize;
        (0..n).map(|_| pool[rng.range(0, 63) as usize].clone()).collect()
    };
    let report = if a.mode == "closed" {
        serve(&mut engine, &mut ClosedLoop::new(a.seed, a.clients, a.requests, a.think, gen), &cfg)
    } else {
        serve(&mut engine, &mut OpenLoop::new(a.seed, a.requests, a.gap, gen), &cfg)
    };
    let report = report.expect("serving run succeeds");
    let health = a.chaos.then(|| chaos_health(a, &mut engine, &report));
    (report, health)
}

/// The `--chaos` JSON health report: self-healing telemetry (corrections,
/// quarantines, breaker ejections/readmissions), a post-run residual
/// scrub of the serving set, and the latency/goodput quantiles.
fn chaos_health(
    a: &Args,
    engine: &mut EbnnServeEngine,
    r: &ServeReport<Vec<u8>>,
) -> serde_json::Value {
    use pim_trace::keys as k;
    let residual = engine.inner_mut().set_mut().scrub_all();
    let m = &r.metrics;
    let q = |p: f64| r.latency_quantile(p).unwrap_or(0.0);
    serde_json::json!({
        "schema": "pim-serve-chaos-v1",
        "shape": {
            "dpus": a.dpus,
            "requests": a.requests,
            "mode": a.mode,
            "seed": a.seed,
            "fault_seed": a.fault_seed,
        },
        "health": {
            "repaired_dpu_launches": m.counter(k::SERVE_REPAIRED_DPUS),
            "quarantined_dpu_launches": m.counter(k::SERVE_QUARANTINED_DPUS),
            "dma_corrected_words": engine.inner().set().dma_corrected_total(),
            "residual_scrub_corrected": residual.corrected(),
            "residual_uncorrectable_words": residual.uncorrectable.len(),
            "ejected_ranks": m.counter(k::SERVE_BREAKER_TRIPS),
            "probes": m.counter(k::SERVE_BREAKER_PROBES),
            "probe_readmits": m.counter(k::SERVE_BREAKER_READMITS),
        },
        "requests": {
            "completed": m.counter(k::SERVE_COMPLETED),
            "failed": m.counter(k::SERVE_FAILED),
            "rejected": m.counter(k::SERVE_REJECTED),
        },
        "latency_cycles": { "p50": q(0.50), "p99": q(0.99), "p999": q(0.999) },
        "goodput_ips": r.goodput_ips,
    })
}

fn summarize(tag: &str, r: &ServeReport<Vec<u8>>) -> String {
    use pim_trace::keys as k;
    let m = &r.metrics;
    let q = |p: f64| r.latency_quantile(p).unwrap_or(0.0);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "[{tag}] requests={} accepted={} rejected={} completed={} failed={}",
        m.counter(k::SERVE_REQUESTS),
        m.counter(k::SERVE_ACCEPTED),
        m.counter(k::SERVE_REJECTED),
        m.counter(k::SERVE_COMPLETED),
        m.counter(k::SERVE_FAILED),
    );
    let _ = writeln!(
        s,
        "[{tag}] batches={} cuts(full/deadline/drain)={}/{}/{} splits={} redispatched={} pgo={}",
        m.counter(k::SERVE_BATCHES),
        m.counter(k::SERVE_CUTS_FULL),
        m.counter(k::SERVE_CUTS_DEADLINE),
        m.counter(k::SERVE_CUTS_DRAIN),
        m.counter(k::SERVE_SPLITS),
        m.counter(k::SERVE_REDISPATCHED_ITEMS),
        m.counter(k::SERVE_PGO_RECOMPILES),
    );
    let _ = writeln!(
        s,
        "[{tag}] latency_cycles p50={:.0} p99={:.0} p999={:.0}  goodput={:.1} items/s  \
         vtime={} cycles",
        q(0.50),
        q(0.99),
        q(0.999),
        r.goodput_ips,
        r.vtime_cycles,
    );
    s
}

fn main() {
    let a = parse_args();
    if a.compare {
        let (serial, _) = run_once(&a, PipelineMode::Serial);
        let (double, _) = run_once(&a, PipelineMode::Double);
        print!("{}", summarize("serial", &serial));
        print!("{}", summarize("double", &double));
        let speedup =
            if serial.goodput_ips > 0.0 { double.goodput_ips / serial.goodput_ips } else { 0.0 };
        println!("pipelined-vs-serial goodput speedup: {speedup:.3}x");
        if let Some(path) = &a.bench_json {
            let v = serde_json::json!({
                "schema": "pim-serve-compare-v1",
                "shape": {
                    "dpus": a.dpus,
                    "filters": a.filters,
                    "requests": a.requests,
                    "items": format!("{}..{}", a.items_lo, a.items_hi),
                    "mode": a.mode,
                    "seed": a.seed,
                    "link_bytes_per_sec": a.bw,
                },
                "serial": {
                    "goodput_ips": serial.goodput_ips,
                    "vtime_cycles": serial.vtime_cycles,
                },
                "double": {
                    "goodput_ips": double.goodput_ips,
                    "vtime_cycles": double.vtime_cycles,
                },
                "speedup": speedup,
            });
            let body = serde_json::to_string_pretty(&v).expect("serialize bench json");
            std::fs::write(path, body + "\n").expect("write bench json");
            println!("wrote {path}");
        }
        if speedup < a.min_speedup {
            eprintln!("FAIL: speedup {speedup:.3} < required {:.3}", a.min_speedup);
            std::process::exit(1);
        }
        return;
    }
    let (report, health) = run_once(&a, a.pipeline);
    if let Some(health) = health {
        println!("{}", serde_json::to_string_pretty(&health).expect("serialize health"));
    } else if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.metrics.to_json()).expect("serialize metrics")
        );
    } else {
        print!("{}", summarize("serve", &report));
    }
}
