//! Bounded admission queue with typed load-shedding.

use crate::request::{Overloaded, Request};
use std::collections::VecDeque;

/// Per-request serving state, kept for the whole run (indexed by
/// admission order — the service's stable request key).
#[derive(Debug)]
pub(crate) struct ReqState<I> {
    pub id: u64,
    pub arrival: u64,
    pub items: Vec<I>,
    /// Items already packed into batches.
    pub taken: usize,
    /// Batch slices launched but not yet read back.
    pub open_slices: usize,
    /// Latest read-back cycle across the request's slices.
    pub finish: u64,
    /// Whether any item was lost to an unserved DPU chunk.
    pub lost: bool,
    /// Whether this request was already counted in `serve.splits`.
    pub split_counted: bool,
}

/// FIFO of admitted-but-not-fully-packed requests with a hard depth bound:
/// a request arriving at a full queue is shed with a typed [`Overloaded`]
/// instead of queuing unbounded latency.
#[derive(Debug)]
pub struct AdmissionQueue<I> {
    bound: usize,
    reqs: Vec<ReqState<I>>,
    fifo: VecDeque<usize>,
}

impl<I> AdmissionQueue<I> {
    /// An empty queue shedding above `bound` waiting requests.
    #[must_use]
    pub fn new(bound: usize) -> Self {
        Self { bound: bound.max(1), reqs: Vec::new(), fifo: VecDeque::new() }
    }

    /// Requests currently waiting (admitted, not fully packed).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.fifo.len()
    }

    /// The configured depth bound.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Re-bound the queue (the circuit breaker shrinks admission to the
    /// live ranks). Requests already waiting stay; only new arrivals are
    /// shed against the lower bound. Clamped to at least 1.
    pub fn set_bound(&mut self, bound: usize) {
        self.bound = bound.max(1);
    }

    /// Whether no request is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Requests ever admitted.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.reqs.len()
    }

    /// Admit `req`, returning its stable index, or shed it when the queue
    /// is at its bound.
    ///
    /// # Errors
    /// [`Overloaded`] when `depth() == bound()`.
    pub fn admit(&mut self, req: Request<I>) -> Result<usize, Overloaded> {
        if self.fifo.len() >= self.bound {
            return Err(Overloaded { id: req.id, at: req.arrival, queue_depth: self.fifo.len() });
        }
        let idx = self.reqs.len();
        self.reqs.push(ReqState {
            id: req.id,
            arrival: req.arrival,
            items: req.items,
            taken: 0,
            open_slices: 0,
            finish: 0,
            lost: false,
            split_counted: false,
        });
        self.fifo.push_back(idx);
        Ok(idx)
    }

    pub(crate) fn front(&self) -> Option<usize> {
        self.fifo.front().copied()
    }

    pub(crate) fn pop_front(&mut self) {
        self.fifo.pop_front();
    }

    pub(crate) fn req(&self, idx: usize) -> &ReqState<I> {
        &self.reqs[idx]
    }

    pub(crate) fn req_mut(&mut self, idx: usize) -> &mut ReqState<I> {
        &mut self.reqs[idx]
    }

    pub(crate) fn all(&self) -> &[ReqState<I>] {
        &self.reqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, items: usize) -> Request<u8> {
        Request { id, arrival: id * 10, items: vec![0u8; items] }
    }

    #[test]
    fn sheds_above_bound_with_typed_error() {
        let mut q = AdmissionQueue::new(2);
        q.admit(req(0, 1)).unwrap();
        q.admit(req(1, 1)).unwrap();
        let e = q.admit(req(2, 1)).unwrap_err();
        assert_eq!(e, Overloaded { id: 2, at: 20, queue_depth: 2 });
        assert_eq!(format!("{e}"), "request 2 rejected at cycle 20: queue full (2 waiting)");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.admitted(), 2);
    }

    #[test]
    fn indices_are_stable_across_pops() {
        let mut q = AdmissionQueue::new(8);
        let a = q.admit(req(0, 1)).unwrap();
        let b = q.admit(req(1, 2)).unwrap();
        q.pop_front();
        assert_eq!(q.front(), Some(b));
        assert_eq!(q.req(a).id, 0);
        assert_eq!(q.req(b).items.len(), 2);
    }
}
