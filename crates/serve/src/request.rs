//! Request, rejection, and completion types.

/// One inference request: a batch of work items (eBNN image slots or GEMM
/// rows) arriving at a simulated cycle stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<I> {
    /// Generator-assigned id, unique per run.
    pub id: u64,
    /// Arrival time in simulated cycles.
    pub arrival: u64,
    /// The work items; a request larger than one rank batch is split
    /// across launches and completes when its last slice is read back.
    pub items: Vec<I>,
}

/// Typed admission rejection: the queue was at capacity when the request
/// arrived, so it was shed instead of adding unbounded latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// The rejected request's id.
    pub id: u64,
    /// Rejection time in simulated cycles (= the request's arrival).
    pub at: u64,
    /// Queue depth at rejection (= the configured bound).
    pub queue_depth: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} rejected at cycle {}: queue full ({} waiting)",
            self.id, self.at, self.queue_depth
        )
    }
}

impl std::error::Error for Overloaded {}

/// Why a batch was cut and launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// The batch filled to the engine's capacity.
    Full,
    /// The head-of-line request waited `max_batch_delay` cycles.
    Deadline,
    /// Traffic ended; the partial batch was drained.
    Drain,
}

/// A finished request: served or degraded, with its latency endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Arrival time in simulated cycles.
    pub arrival: u64,
    /// Cycle at which the last of its results was read back.
    pub finish: u64,
    /// Items the request carried.
    pub items: usize,
    /// `false` when at least one item was lost to an unserved DPU chunk
    /// (quarantined with no redispatch) — degraded service, not an error.
    pub served: bool,
}

impl Completion {
    /// Latency in simulated cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }
}
