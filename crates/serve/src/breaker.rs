//! Per-rank circuit breaker over the serving set.
//!
//! DPUs are grouped into ranks of [`BreakerConfig::rank_dpus`]; each rank
//! accumulates a health score from the fault telemetry the engine reports
//! per batch (quarantines weigh heavily, ECC/DMA repairs lightly) over a
//! rolling window of recent batches. A rank whose windowed score reaches
//! the trip threshold is **ejected** from batch packing (state `Open`):
//! no items are staged on its DPUs, and admission capacity shrinks so the
//! queue sheds with a typed [`crate::request::Overloaded`] instead of
//! letting requests time out against hardware that cannot serve them.
//! After a cooldown the rank enters `Probation`: it rejoins the live mask
//! and the next batch that actually lands items on it is the probe — a
//! clean probe re-admits the rank (window cleared), another quarantine
//! re-opens it. The last live rank is never ejected; its window is reset
//! instead, so the service always retains capacity.
//!
//! Everything is integer arithmetic driven by the deterministic batch
//! sequence — a fixed traffic seed reproduces every trip, probe, and
//! re-admission bit-for-bit.

use crate::engine::BatchRun;
use std::collections::VecDeque;

/// Circuit-breaker knobs. The defaults suit the small serving sets the
/// tests and `loadgen` drive; production-scale sets raise `rank_dpus` to
/// the hardware rank width (64 on UPMEM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// DPUs per rank group (the ejection granularity).
    pub rank_dpus: usize,
    /// Rolling window length, in observed batches.
    pub window: usize,
    /// Eject a rank when its windowed score reaches this.
    pub trip_score: u32,
    /// Batches a rank stays `Open` before it may probe.
    pub cooldown_batches: u64,
    /// Score per quarantined DPU in a batch.
    pub quarantine_weight: u32,
    /// Score per DPU served healthy-after-repair in a batch.
    pub repair_weight: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            rank_dpus: 64,
            window: 8,
            trip_score: 100,
            cooldown_batches: 4,
            quarantine_weight: 50,
            repair_weight: 1,
        }
    }
}

/// Where a rank sits in the trip → cooldown → probe cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// Serving normally.
    Closed,
    /// Ejected from packing until the given batch sequence number.
    Open {
        /// First batch (by observation count) at which the rank may move
        /// to [`RankState::Probation`].
        until_batch: u64,
    },
    /// Back in the live mask awaiting a probe batch that lands items on
    /// it; the probe's outcome decides re-admission.
    Probation,
}

#[derive(Debug, Clone)]
struct RankHealth {
    state: RankState,
    /// Per-batch scores, newest last, bounded by `cfg.window`.
    window: VecDeque<u32>,
    score: u32,
}

impl RankHealth {
    fn push(&mut self, score: u32, window: usize) {
        self.window.push_back(score);
        self.score += score;
        while self.window.len() > window {
            self.score -= self.window.pop_front().unwrap_or(0);
        }
    }

    fn reset(&mut self) {
        self.window.clear();
        self.score = 0;
    }
}

/// The breaker: per-rank health windows plus trip/probe/re-admit
/// counters for the `serve.breaker.*` metrics.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    dpus: usize,
    ranks: Vec<RankHealth>,
    batches: u64,
    trips: u64,
    probes: u64,
    readmits: u64,
}

impl CircuitBreaker {
    /// A breaker over a serving set of `dpus` DPUs, all ranks closed.
    ///
    /// # Panics
    /// When `dpus` is 0 or `cfg.rank_dpus` is 0.
    #[must_use]
    pub fn new(cfg: BreakerConfig, dpus: usize) -> Self {
        assert!(dpus > 0, "breaker needs a non-empty serving set");
        assert!(cfg.rank_dpus > 0, "rank_dpus must be positive");
        let n_ranks = dpus.div_ceil(cfg.rank_dpus);
        let ranks = vec![
            RankHealth { state: RankState::Closed, window: VecDeque::new(), score: 0 };
            n_ranks
        ];
        Self { cfg, dpus, ranks, batches: 0, trips: 0, probes: 0, readmits: 0 }
    }

    /// Rank index of a DPU.
    #[must_use]
    pub fn rank_of(&self, dpu: u32) -> usize {
        dpu as usize / self.cfg.rank_dpus
    }

    /// Number of rank groups.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    /// State of one rank.
    ///
    /// # Panics
    /// When `rank` is out of range.
    #[must_use]
    pub fn state(&self, rank: usize) -> RankState {
        self.ranks[rank].state
    }

    /// Current windowed health score of one rank (higher is sicker).
    ///
    /// # Panics
    /// When `rank` is out of range.
    #[must_use]
    pub fn score(&self, rank: usize) -> u32 {
        self.ranks[rank].score
    }

    /// Ranks currently ejected (`Open`).
    #[must_use]
    pub fn open_ranks(&self) -> usize {
        self.ranks.iter().filter(|r| matches!(r.state, RankState::Open { .. })).count()
    }

    /// Ranks currently packable (`Closed` or `Probation`).
    #[must_use]
    pub fn live_ranks(&self) -> usize {
        self.ranks.len() - self.open_ranks()
    }

    /// Per-DPU liveness: a DPU is live when its rank is not `Open`.
    #[must_use]
    pub fn live_mask(&self) -> Vec<bool> {
        (0..self.dpus)
            .map(|d| !matches!(self.ranks[self.rank_of(d as u32)].state, RankState::Open { .. }))
            .collect()
    }

    /// Live DPUs (the packable capacity numerator).
    #[must_use]
    pub fn live_dpus(&self) -> usize {
        self.live_mask().iter().filter(|l| **l).count()
    }

    /// Ranks ejected so far (including re-trips out of probation).
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Open → Probation transitions so far.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probation → Closed re-admissions so far.
    #[must_use]
    pub fn readmits(&self) -> u64 {
        self.readmits
    }

    /// Batches observed so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Fold one batch's telemetry into the windows and advance the state
    /// machine. Call once per launched batch, after gathering its
    /// [`BatchRun`].
    pub fn observe(&mut self, run: &BatchRun) {
        self.batches += 1;
        let n = self.ranks.len();
        let mut quarantines = vec![0u32; n];
        let mut repairs = vec![0u32; n];
        let mut active = vec![false; n];
        for &d in &run.quarantined_dpus {
            quarantines[self.rank_of(d).min(n - 1)] += 1;
        }
        for &d in &run.repaired_dpus {
            repairs[self.rank_of(d).min(n - 1)] += 1;
        }
        for &d in &run.active_dpus {
            active[self.rank_of(d).min(n - 1)] = true;
        }

        for rank in 0..n {
            let score = self.cfg.quarantine_weight * quarantines[rank]
                + self.cfg.repair_weight * repairs[rank];
            let window = self.cfg.window;
            self.ranks[rank].push(score, window);
            match self.ranks[rank].state {
                RankState::Closed => {
                    if self.ranks[rank].score >= self.cfg.trip_score {
                        if self.live_ranks() <= 1 {
                            // Never eject the last live rank: zero
                            // capacity would stall the service. Forgive
                            // and keep watching.
                            self.ranks[rank].reset();
                        } else {
                            self.trips += 1;
                            self.ranks[rank].state = RankState::Open {
                                until_batch: self.batches + self.cfg.cooldown_batches,
                            };
                        }
                    }
                }
                RankState::Open { until_batch } => {
                    if self.batches >= until_batch {
                        self.probes += 1;
                        self.ranks[rank].state = RankState::Probation;
                    }
                }
                RankState::Probation => {
                    if quarantines[rank] > 0 {
                        if self.live_ranks() <= 1 {
                            // A failed probe on the sole live rank must
                            // not re-open it: zero capacity would stall
                            // the service. Forgive and keep watching.
                            self.ranks[rank].reset();
                            self.ranks[rank].state = RankState::Closed;
                        } else {
                            // The probe failed: straight back to Open.
                            self.trips += 1;
                            self.ranks[rank].state = RankState::Open {
                                until_batch: self.batches + self.cfg.cooldown_batches,
                            };
                        }
                    } else if active[rank] {
                        // A clean batch actually landed items here: the
                        // probe passed, re-admit with a fresh window.
                        self.readmits += 1;
                        self.ranks[rank].reset();
                        self.ranks[rank].state = RankState::Closed;
                    }
                    // No items staged on this rank: inconclusive, keep
                    // probing.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            rank_dpus: 2,
            window: 4,
            trip_score: 100,
            cooldown_batches: 2,
            quarantine_weight: 50,
            repair_weight: 1,
        }
    }

    fn run(quarantined: &[u32], repaired: &[u32], active: &[u32]) -> BatchRun {
        BatchRun {
            compute_cycles: 1,
            redispatched_items: 0,
            lost_items: 0,
            quarantined_dpus: quarantined.to_vec(),
            repaired_dpus: repaired.to_vec(),
            active_dpus: active.to_vec(),
        }
    }

    #[test]
    fn quarantines_trip_the_rank_and_cooldown_leads_to_probation() {
        let mut b = CircuitBreaker::new(cfg(), 6);
        assert_eq!(b.ranks(), 3);
        assert_eq!(b.live_dpus(), 6);
        // Two quarantines on rank 1 (DPUs 2,3) reach the trip score.
        b.observe(&run(&[2], &[], &[0, 1, 2, 3, 4, 5]));
        assert_eq!(b.state(1), RankState::Closed, "one quarantine is below the threshold");
        b.observe(&run(&[3], &[], &[0, 1, 2, 3, 4, 5]));
        assert!(matches!(b.state(1), RankState::Open { .. }));
        assert_eq!(b.trips(), 1);
        assert_eq!(b.live_mask(), [true, true, false, false, true, true]);
        assert_eq!(b.live_ranks(), 2);
        // Cooldown: two clean batches later the rank probes.
        b.observe(&run(&[], &[], &[0, 1, 4, 5]));
        assert!(matches!(b.state(1), RankState::Open { .. }));
        b.observe(&run(&[], &[], &[0, 1, 4, 5]));
        assert_eq!(b.state(1), RankState::Probation);
        assert_eq!(b.probes(), 1);
        assert_eq!(b.live_dpus(), 6, "probation ranks rejoin the live mask");
    }

    #[test]
    fn clean_probe_readmits_and_failed_probe_reopens() {
        let mut b = CircuitBreaker::new(cfg(), 4);
        b.observe(&run(&[0, 1], &[], &[0, 1, 2, 3]));
        assert!(matches!(b.state(0), RankState::Open { .. }));
        b.observe(&run(&[], &[], &[2, 3]));
        b.observe(&run(&[], &[], &[2, 3]));
        assert_eq!(b.state(0), RankState::Probation);
        // A batch that skips the rank is inconclusive.
        b.observe(&run(&[], &[], &[2, 3]));
        assert_eq!(b.state(0), RankState::Probation);
        // The probe lands items and stays clean: re-admitted, score wiped.
        b.observe(&run(&[], &[], &[0, 1, 2, 3]));
        assert_eq!(b.state(0), RankState::Closed);
        assert_eq!(b.readmits(), 1);
        assert_eq!(b.score(0), 0);
        // Trip again, cool down, and fail the probe this time.
        b.observe(&run(&[0, 1], &[], &[0, 1, 2, 3]));
        b.observe(&run(&[], &[], &[2, 3]));
        b.observe(&run(&[], &[], &[2, 3]));
        assert_eq!(b.state(0), RankState::Probation);
        b.observe(&run(&[0], &[], &[0, 1, 2, 3]));
        assert!(matches!(b.state(0), RankState::Open { .. }), "failed probe re-opens");
        assert_eq!(b.trips(), 3);
    }

    #[test]
    fn repairs_alone_accumulate_slowly_and_age_out_of_the_window() {
        let mut b = CircuitBreaker::new(cfg(), 4);
        // 30 repairs/batch on rank 0: hits 100 within the 4-batch window.
        for _ in 0..3 {
            b.observe(&run(&[], &[0; 30], &[0, 1, 2, 3]));
            assert_eq!(b.state(0), RankState::Closed);
        }
        b.observe(&run(&[], &[0; 30], &[0, 1, 2, 3]));
        assert!(matches!(b.state(0), RankState::Open { .. }), "chronic repairs trip too");
        // A lighter trickle ages out before it can trip.
        let mut c = CircuitBreaker::new(cfg(), 4);
        for _ in 0..20 {
            c.observe(&run(&[], &[0; 10], &[0, 1, 2, 3]));
        }
        assert_eq!(c.state(0), RankState::Closed);
        assert_eq!(c.score(0), 40, "window holds only the last 4 batches");
    }

    #[test]
    fn last_live_rank_is_never_ejected() {
        let mut b = CircuitBreaker::new(cfg(), 2);
        assert_eq!(b.ranks(), 1);
        for _ in 0..10 {
            b.observe(&run(&[0, 1], &[], &[0, 1]));
            assert_eq!(b.state(0), RankState::Closed, "sole rank must stay live");
        }
        assert_eq!(b.trips(), 0);
        assert_eq!(b.live_dpus(), 2);
    }

    #[test]
    fn failed_probe_on_the_sole_live_rank_stays_live() {
        // Two ranks: trip rank 1, then keep quarantining rank 0 until it
        // is the probing sole-live rank failing its probe. The mask must
        // never go all-dead.
        let mut b = CircuitBreaker::new(cfg(), 4);
        b.observe(&run(&[2, 3], &[], &[0, 1, 2, 3]));
        assert!(matches!(b.state(1), RankState::Open { .. }));
        // Rank 0 would trip too, but it is the last live rank: forgiven.
        b.observe(&run(&[0, 1], &[], &[0, 1]));
        assert_eq!(b.state(0), RankState::Closed);
        // Rank 1 cools down into probation and fails its probe while
        // rank 0 keeps quarantining — every observation must leave at
        // least one live DPU.
        for _ in 0..12 {
            b.observe(&run(&[0, 1, 2, 3], &[], &b.live_mask_dpus()));
            assert!(b.live_dpus() > 0, "breaker starved the service");
        }
    }

    impl CircuitBreaker {
        /// Test helper: the live mask as explicit DPU indices.
        fn live_mask_dpus(&self) -> Vec<u32> {
            self.live_mask()
                .iter()
                .enumerate()
                .filter_map(|(d, &l)| l.then_some(d as u32))
                .collect()
        }
    }

    #[test]
    fn uneven_tail_rank_maps_correctly() {
        let b = CircuitBreaker::new(cfg(), 5);
        assert_eq!(b.ranks(), 3, "5 DPUs over rank width 2 is 3 ranks");
        assert_eq!(b.rank_of(4), 2);
        assert_eq!(b.live_mask().len(), 5);
    }
}
