//! The engine abstraction the service batches onto, plus the eBNN and
//! YOLO implementations over their persistent batch-slicing engines.

use crate::pipeline::PipelineMode;
use crate::traffic::splitmix64;
use ebnn::codegen::Tier1Engine;
use ebnn::model::EbnnModel;
use pim_host::{HostError, ResilientLaunchPolicy, ServeHealth};
use yolo_pim::codegen::RowEngine;
use yolo_pim::gemm::GemmDims;

/// Per-item gathered results (`None` = lost item) plus bytes read on
/// the host link.
pub type Gathered<O> = (Vec<Option<O>>, u64);

/// What one launch did, in the units the scheduler needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRun {
    /// DPU compute makespan in simulated cycles.
    pub compute_cycles: u64,
    /// Items recomputed on a survivor after their home DPU quarantined.
    pub redispatched_items: usize,
    /// Items lost outright (quarantined, not redispatched) — their
    /// requests complete degraded.
    pub lost_items: usize,
    /// DPUs quarantined during this launch (circuit-breaker telemetry).
    pub quarantined_dpus: Vec<u32>,
    /// DPUs that served healthy-after-repair: retries consumed or
    /// single-bit errors corrected by ECC scrub / DMA verify-on-read.
    pub repaired_dpus: Vec<u32>,
    /// DPUs that had items staged this batch (probation probes are
    /// confirmed only by batches that actually landed work).
    pub active_dpus: Vec<u32>,
}

impl BatchRun {
    /// A clean, fully-healthy run over the given active DPUs.
    #[must_use]
    pub fn clean(compute_cycles: u64, active_dpus: Vec<u32>) -> Self {
        Self {
            compute_cycles,
            redispatched_items: 0,
            lost_items: 0,
            quarantined_dpus: Vec::new(),
            repaired_dpus: Vec::new(),
            active_dpus,
        }
    }
}

/// A persistent rank-batch executor the serving loop drives: stage items
/// into one of `buffers()` MRAM buffers, launch, gather. Implementations
/// own the fault policy (deriving a fresh per-batch fault seed) and the
/// golden-snapshot recovery story behind [`BatchEngine::dirty`].
pub trait BatchEngine {
    /// One staged work item (an encoded eBNN image slot, a GEMM row).
    type Item;
    /// One gathered result.
    type Output;

    /// Items one batch can hold.
    fn capacity(&self) -> usize;
    /// DPUs in the serving set.
    fn dpus(&self) -> usize;
    /// MRAM buffer pairs (2 enables the double-buffered schedule).
    fn buffers(&self) -> usize;

    /// Stage `items` into buffer `buf`; returns bytes written on the host
    /// link.
    ///
    /// # Errors
    /// Host-runtime failures.
    fn stage(&mut self, items: &[Self::Item], buf: usize) -> Result<u64, HostError>;

    /// Restrict staging to the DPUs marked live — the circuit breaker's
    /// ejection hook. Engines that cannot mask their staging ignore the
    /// hint (the default does nothing).
    fn set_live_mask(&mut self, live: &[bool]) {
        let _ = live;
    }

    /// Launch the last-staged buffer's batch; `seq` is the batch sequence
    /// number (mixed into the fault seed so each batch draws fresh
    /// faults).
    ///
    /// # Errors
    /// Host-runtime failures (injected faults degrade, they don't error).
    fn launch(&mut self, seq: u64) -> Result<BatchRun, HostError>;

    /// Gather buffer `buf`'s results in staging order (`None` = lost
    /// item), plus bytes read on the host link.
    ///
    /// # Errors
    /// Host-runtime failures.
    fn gather(&mut self, buf: usize) -> Result<Gathered<Self::Output>, HostError>;

    /// Whether a fault-armed launch left quarantined DPUs' MRAM dirty —
    /// the service restores the golden snapshot before the next staging.
    fn dirty(&self) -> bool;

    /// Restore the pristine weights-loaded state (forgets staged
    /// batches; the service flushes pending readbacks first).
    ///
    /// # Errors
    /// Host-runtime failures.
    fn restore(&mut self) -> Result<(), HostError>;

    /// Profile-guided warmup: recompile hot superblocks from a profiling
    /// replay and pin the compiled engine. Returns hot-block count.
    ///
    /// # Errors
    /// Simulator faults during the replay.
    fn recompile_hot(&mut self, min_entries: u64) -> Result<usize, HostError>;
}

/// Derive a per-batch policy: same retry/backoff knobs, fault seed mixed
/// with the batch sequence so each batch draws a fresh (but still fully
/// deterministic) fault pattern.
fn per_batch_policy(base: &ResilientLaunchPolicy, seq: u64) -> ResilientLaunchPolicy {
    let mut p = base.clone();
    if let Some(plan) = &p.faults {
        let cfg = plan.config().clone();
        let mixed = dpu_sim::FaultConfig { seed: splitmix64(cfg.seed ^ seq), ..cfg };
        p.faults = Some(dpu_sim::FaultPlan::new(mixed));
    }
    p
}

/// eBNN tier-1 serving engine: items are 128-byte encoded image slots
/// (see [`ebnn::codegen::encode_slot`]), outputs are per-image feature
/// bytes. Double-buffered when built with [`PipelineMode::Double`].
pub struct EbnnServeEngine {
    inner: Tier1Engine,
    policy: Option<ResilientLaunchPolicy>,
    /// Per-buffer per-chunk served mask from the last launch into it.
    served: Vec<Option<Vec<bool>>>,
    active: usize,
    dirty: bool,
    /// Circuit-breaker liveness: staging skips DPUs marked dead.
    live: Vec<bool>,
}

impl EbnnServeEngine {
    /// Build over `dpus` DPUs; `policy` arms fault-tolerant launches.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// See [`Tier1Engine::with_buffers`].
    pub fn new(
        model: &EbnnModel,
        dpus: usize,
        pipeline: PipelineMode,
        policy: Option<ResilientLaunchPolicy>,
    ) -> Result<Self, HostError> {
        let buffers = match pipeline {
            PipelineMode::Double => 2,
            PipelineMode::Serial => 1,
        };
        let inner = Tier1Engine::with_buffers(model, dpus, buffers, false)?;
        let served = vec![None; buffers];
        Ok(Self { inner, policy, served, active: 0, dirty: false, live: vec![true; dpus] })
    }

    /// The wrapped batch-slicing engine.
    #[must_use]
    pub fn inner(&self) -> &Tier1Engine {
        &self.inner
    }

    /// Mutable access to the wrapped engine (post-run integrity audits:
    /// a final scrub of the serving set).
    pub fn inner_mut(&mut self) -> &mut Tier1Engine {
        &mut self.inner
    }

    /// Arm (or disarm) the SEC-DED MRAM sidecar on the serving set —
    /// delegates to [`Tier1Engine::enable_ecc`], which also refreshes
    /// the golden snapshot so mid-run restores keep the setting.
    pub fn enable_ecc(&mut self, on: bool) {
        self.inner.enable_ecc(on);
    }
}

impl BatchEngine for EbnnServeEngine {
    type Item = Vec<u8>;
    type Output = Vec<u8>;

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn dpus(&self) -> usize {
        self.inner.dpus()
    }

    fn buffers(&self) -> usize {
        self.inner.buffers()
    }

    fn stage(&mut self, items: &[Vec<u8>], buf: usize) -> Result<u64, HostError> {
        self.active = buf;
        self.served[buf] = None;
        self.inner.stage_encoded_live(items, buf, &self.live)
    }

    fn set_live_mask(&mut self, live: &[bool]) {
        assert_eq!(live.len(), self.live.len(), "mask must cover every DPU");
        self.live.copy_from_slice(live);
    }

    fn launch(&mut self, seq: u64) -> Result<BatchRun, HostError> {
        let chunks =
            self.inner.staged_chunks(self.active).expect("launch without staging").to_vec();
        let active_dpus: Vec<u32> = (0..chunks.len())
            .filter(|&d| chunks[d] > 0)
            .map(|d| u32::try_from(d).expect("dpu index fits"))
            .collect();
        match &self.policy {
            None => {
                let r = self.inner.launch()?;
                self.served[self.active] = Some(vec![true; chunks.len()]);
                Ok(BatchRun::clean(r.makespan_cycles(), active_dpus))
            }
            Some(base) => {
                let pol = per_batch_policy(base, seq);
                let rep = self.inner.launch_resilient(&pol)?;
                let mask: Vec<bool> =
                    (0..chunks.len()).map(|d| rep.per_dpu[d].result.is_some()).collect();
                let redispatched_items: usize = rep
                    .degraded
                    .iter()
                    .map(|d| chunks.get(d.from.0 as usize).copied().unwrap_or(0))
                    .sum();
                let lost_items: usize =
                    mask.iter().zip(&chunks).filter_map(|(ok, &len)| (!ok).then_some(len)).sum();
                self.dirty |= !rep.quarantined.is_empty();
                self.served[self.active] = Some(mask);
                Ok(BatchRun {
                    compute_cycles: rep.makespan_cycles(),
                    redispatched_items,
                    lost_items,
                    quarantined_dpus: rep.quarantined.iter().map(|d| d.0).collect(),
                    repaired_dpus: (0..rep.per_dpu.len())
                        .filter(|&d| rep.per_dpu[d].health() == ServeHealth::HealthyAfterRepair)
                        .map(|d| u32::try_from(d).expect("dpu index fits"))
                        .collect(),
                    active_dpus,
                })
            }
        }
    }

    fn gather(&mut self, buf: usize) -> Result<Gathered<Vec<u8>>, HostError> {
        let chunks = self.inner.staged_chunks(buf).expect("gather without staging").to_vec();
        let mask = self.served[buf].clone().unwrap_or_else(|| vec![true; chunks.len()]);
        let (all, bytes) = self.inner.gather(buf)?;
        let mut out = Vec::with_capacity(all.len());
        let mut it = all.into_iter();
        for (d, &len) in chunks.iter().enumerate() {
            for _ in 0..len {
                let f = it.next().expect("gather matches staged chunks");
                out.push(mask[d].then_some(f));
            }
        }
        Ok((out, bytes))
    }

    fn dirty(&self) -> bool {
        self.dirty
    }

    fn restore(&mut self) -> Result<(), HostError> {
        self.inner.restore_golden()?;
        for s in &mut self.served {
            *s = None;
        }
        self.dirty = false;
        Ok(())
    }

    fn recompile_hot(&mut self, min_entries: u64) -> Result<usize, HostError> {
        self.inner.recompile_hot(min_entries)
    }
}

/// YOLO row-GEMM serving engine: items are `A` rows (`k` values each),
/// outputs are `C` rows (`n` values each). Single-buffered — the GEMM
/// program bakes its MRAM bases — so the service schedules it serially.
pub struct YoloServeEngine {
    inner: RowEngine,
    policy: Option<ResilientLaunchPolicy>,
    served: Option<Vec<bool>>,
    dirty: bool,
}

impl YoloServeEngine {
    /// Build over `dpus` DPUs computing rows against the broadcast `b`.
    ///
    /// # Errors
    /// Host-runtime failures.
    ///
    /// # Panics
    /// See [`RowEngine::new`].
    pub fn new(
        dims: GemmDims,
        alpha: i32,
        b: &[i16],
        dpus: usize,
        tasklets: usize,
        policy: Option<ResilientLaunchPolicy>,
    ) -> Result<Self, HostError> {
        let inner = RowEngine::new(dims, alpha, b, dpus, tasklets)?;
        Ok(Self { inner, policy, served: None, dirty: false })
    }

    /// The wrapped batch-slicing engine.
    #[must_use]
    pub fn inner(&self) -> &RowEngine {
        &self.inner
    }
}

impl BatchEngine for YoloServeEngine {
    type Item = Vec<i16>;
    type Output = Vec<i16>;

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn dpus(&self) -> usize {
        self.inner.capacity()
    }

    fn buffers(&self) -> usize {
        1
    }

    fn stage(&mut self, items: &[Vec<i16>], buf: usize) -> Result<u64, HostError> {
        assert_eq!(buf, 0, "row engine is single-buffered");
        self.served = None;
        let k = self.inner.dims().k;
        let mut flat = Vec::with_capacity(items.len() * k);
        for row in items {
            assert_eq!(row.len(), k, "row length must be k");
            flat.extend_from_slice(row);
        }
        self.inner.stage(&flat)
    }

    fn launch(&mut self, seq: u64) -> Result<BatchRun, HostError> {
        let n_rows = self.inner.staged_rows();
        let active_dpus: Vec<u32> =
            (0..n_rows).map(|d| u32::try_from(d).expect("row index fits")).collect();
        match &self.policy {
            None => {
                let r = self.inner.launch()?;
                self.served = Some(vec![true; n_rows]);
                Ok(BatchRun::clean(r.makespan_cycles(), active_dpus))
            }
            Some(base) => {
                let pol = per_batch_policy(base, seq);
                let rep = self.inner.launch_resilient(&pol)?;
                let mask: Vec<bool> =
                    (0..n_rows).map(|d| rep.per_dpu[d].result.is_some()).collect();
                let redispatched_items =
                    rep.degraded.iter().filter(|d| (d.from.0 as usize) < n_rows).count();
                let lost_items = mask.iter().filter(|ok| !**ok).count();
                self.dirty |= !rep.quarantined.is_empty();
                self.served = Some(mask);
                Ok(BatchRun {
                    compute_cycles: rep.makespan_cycles(),
                    redispatched_items,
                    lost_items,
                    quarantined_dpus: rep.quarantined.iter().map(|d| d.0).collect(),
                    repaired_dpus: (0..rep.per_dpu.len())
                        .filter(|&d| rep.per_dpu[d].health() == ServeHealth::HealthyAfterRepair)
                        .map(|d| u32::try_from(d).expect("dpu index fits"))
                        .collect(),
                    active_dpus,
                })
            }
        }
    }

    fn gather(&mut self, buf: usize) -> Result<Gathered<Vec<i16>>, HostError> {
        assert_eq!(buf, 0, "row engine is single-buffered");
        let n = self.inner.dims().n;
        let n_rows = self.inner.staged_rows();
        let mask = self.served.clone().unwrap_or_else(|| vec![true; n_rows]);
        let (flat, bytes) = self.inner.gather()?;
        let out = (0..n_rows).map(|i| mask[i].then(|| flat[i * n..(i + 1) * n].to_vec())).collect();
        Ok((out, bytes))
    }

    fn dirty(&self) -> bool {
        self.dirty
    }

    fn restore(&mut self) -> Result<(), HostError> {
        self.inner.restore_golden()?;
        self.served = None;
        self.dirty = false;
        Ok(())
    }

    fn recompile_hot(&mut self, min_entries: u64) -> Result<usize, HostError> {
        self.inner.recompile_hot(min_entries)
    }
}
