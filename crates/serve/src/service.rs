//! The serving loop: admission → dynamic batching → pipelined execution.
//!
//! [`serve`] drives a [`BatchEngine`] from a [`Traffic`] source until the
//! source is exhausted, accounting all time in simulated cycles (see
//! [`crate::pipeline`] for the schedule). Every decision is a pure
//! function of the traffic seed, the engine's deterministic cycle counts,
//! and the config — a fixed seed reproduces the run bit-for-bit.

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::engine::BatchEngine;
use crate::pipeline::{LinkModel, PipelineMode};
use crate::queue::AdmissionQueue;
use crate::request::{Completion, CutKind, Overloaded, Request};
use crate::traffic::{Traffic, TrafficStep};
use pim_trace::{keys, MetricsRegistry};

/// Environment override for [`ServeConfig::max_batch_delay`] (cycles).
pub const MAX_BATCH_DELAY_ENV: &str = "PIM_SERVE_MAX_BATCH_DELAY";
/// Environment override for [`ServeConfig::queue_capacity`] (requests).
pub const QUEUE_DEPTH_ENV: &str = "PIM_SERVE_QUEUE_DEPTH";

/// Serving-loop knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-queue bound: requests waiting beyond this are shed with
    /// a typed [`Overloaded`] (counted in `serve.rejected`).
    pub queue_capacity: usize,
    /// Cycles the head-of-line request may wait before a partial batch is
    /// cut (the latency/throughput dial).
    pub max_batch_delay: u64,
    /// Execution-loop shape; engines with one buffer force serial.
    pub pipeline: PipelineMode,
    /// Host-link cost model for staging/readback accounting.
    pub link: LinkModel,
    /// `Some(n)`: after `n` launched batches, profile-guided-recompile
    /// the loaded program and pin the compiled engine.
    pub pgo_warmup_batches: Option<u64>,
    /// Hot-block entry threshold for the PGO recompile.
    pub pgo_min_entries: u64,
    /// Keep per-request outputs in the report (identity tests; costs
    /// memory on big runs).
    pub record_outputs: bool,
    /// `Some`: arm the per-rank circuit breaker — sick ranks are ejected
    /// from packing and admission capacity shrinks to the live ranks
    /// (see [`crate::breaker`]).
    pub breaker: Option<BreakerConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch_delay: 500_000,
            pipeline: PipelineMode::Double,
            link: LinkModel::default(),
            pgo_warmup_batches: None,
            pgo_min_entries: dpu_sim::DEFAULT_HOT_THRESHOLD,
            record_outputs: false,
            breaker: None,
        }
    }
}

impl ServeConfig {
    /// Apply the `PIM_SERVE_MAX_BATCH_DELAY` / `PIM_SERVE_QUEUE_DEPTH`
    /// environment overrides (unparseable values are ignored).
    #[must_use]
    pub fn with_env(mut self) -> Self {
        if let Some(v) = std::env::var(MAX_BATCH_DELAY_ENV).ok().and_then(|s| s.parse().ok()) {
            self.max_batch_delay = v;
        }
        if let Some(v) = std::env::var(QUEUE_DEPTH_ENV).ok().and_then(|s| s.parse().ok()) {
            self.queue_capacity = v;
        }
        self
    }
}

/// Everything a serving run produced.
#[derive(Debug)]
pub struct ServeReport<O> {
    /// `serve.*` counters/histograms/gauges (see [`pim_trace::keys`]).
    pub metrics: MetricsRegistry,
    /// Per-request completions in finish order.
    pub completions: Vec<Completion>,
    /// Typed admission rejections in arrival order.
    pub rejections: Vec<Overloaded>,
    /// Per-request outputs (request id, per-item results) when
    /// [`ServeConfig::record_outputs`] was set, in admission order.
    pub outputs: Vec<(u64, Vec<Option<O>>)>,
    /// Simulated cycle of the last readback.
    pub vtime_cycles: u64,
    /// Served items per second of simulated time.
    pub goodput_ips: f64,
}

impl<O> ServeReport<O> {
    /// Latency quantile (in cycles) from the `serve.latency_cycles`
    /// histogram.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.metrics.histogram(keys::SERVE_LATENCY_CYCLES).and_then(|h| h.quantile(q))
    }
}

/// One batch slice of a request: `count` items starting at `req_off`.
#[derive(Debug)]
struct Slice {
    req: usize,
    req_off: usize,
    count: usize,
}

/// A launched batch whose results have not been read back yet.
#[derive(Debug)]
struct Pending {
    buf: usize,
    compute_end: u64,
    slices: Vec<Slice>,
}

struct RunState<I, O> {
    queue: AdmissionQueue<I>,
    outputs: Vec<Vec<Option<O>>>,
    record: bool,
    completions: Vec<Completion>,
    rejections: Vec<Overloaded>,
    metrics: MetricsRegistry,
    link: LinkModel,
    link_cursor: u64,
    buf_free: [u64; 2],
    compute_end_last: u64,
    pending: Option<Pending>,
    peeked: Option<Request<I>>,
    traffic_done: bool,
    seq: u64,
    first_arrival: Option<u64>,
    last_finish: u64,
    served_items: u64,
    pgo_done: bool,
}

impl<I, O> RunState<I, O> {
    fn new(cfg: &ServeConfig) -> Self {
        Self {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            outputs: Vec::new(),
            record: cfg.record_outputs,
            completions: Vec::new(),
            rejections: Vec::new(),
            metrics: MetricsRegistry::new(),
            link: cfg.link,
            link_cursor: 0,
            buf_free: [0; 2],
            compute_end_last: 0,
            pending: None,
            peeked: None,
            traffic_done: false,
            seq: 0,
            first_arrival: None,
            last_finish: 0,
            served_items: 0,
            pgo_done: false,
        }
    }

    /// Admit (or shed) one arrival, delivering feedback to `traffic`.
    fn admit<T: Traffic<Item = I>>(&mut self, req: Request<I>, traffic: &mut T) {
        self.first_arrival.get_or_insert(req.arrival);
        self.metrics.counter_add(keys::SERVE_REQUESTS, 1);
        self.metrics.counter_add(keys::SERVE_ITEMS, req.items.len() as u64);
        if req.items.is_empty() {
            // Degenerate zero-item request: nothing to launch, complete
            // on the spot.
            let c = Completion {
                id: req.id,
                arrival: req.arrival,
                finish: req.arrival,
                items: 0,
                served: true,
            };
            self.metrics.counter_add(keys::SERVE_ACCEPTED, 1);
            self.metrics.counter_add(keys::SERVE_COMPLETED, 1);
            self.metrics.observe(keys::SERVE_LATENCY_CYCLES, 0.0);
            traffic.on_complete(&c);
            self.completions.push(c);
            return;
        }
        let n_items = req.items.len();
        match self.queue.admit(req) {
            Ok(idx) => {
                self.metrics.counter_add(keys::SERVE_ACCEPTED, 1);
                self.metrics.observe(keys::SERVE_QUEUE_DEPTH, self.queue.depth() as f64);
                debug_assert_eq!(idx, self.outputs.len());
                self.outputs.push(if self.record {
                    std::iter::repeat_with(|| None).take(n_items).collect()
                } else {
                    Vec::new()
                });
            }
            Err(over) => {
                self.metrics.counter_add(keys::SERVE_REJECTED, 1);
                traffic.on_reject(&over);
                self.rejections.push(over);
            }
        }
    }

    /// Admit every arrival up to `horizon` — the requests that queued up
    /// while the previous batch occupied the link.
    fn admit_up_to<T: Traffic<Item = I>>(&mut self, horizon: u64, traffic: &mut T) {
        loop {
            let req = if let Some(r) = self.peeked.take() {
                r
            } else if self.traffic_done {
                return;
            } else {
                match traffic.next() {
                    TrafficStep::Arrival(r) => r,
                    TrafficStep::Waiting => return,
                    TrafficStep::Done => {
                        self.traffic_done = true;
                        return;
                    }
                }
            };
            if req.arrival > horizon {
                self.peeked = Some(req);
                return;
            }
            self.admit(req, traffic);
        }
    }

    /// Read back the pending batch (if any): schedule the read on the
    /// link, deliver per-request results, and complete finished requests.
    fn flush<E, T>(&mut self, engine: &mut E, traffic: &mut T) -> Result<(), pim_host::HostError>
    where
        E: BatchEngine<Item = I, Output = O>,
        T: Traffic<Item = I>,
        O: Clone,
    {
        let Some(p) = self.pending.take() else { return Ok(()) };
        let (outs, bytes) = engine.gather(p.buf)?;
        let read_cycles = self.link.cycles(bytes);
        let read_start = p.compute_end.max(self.link_cursor);
        let read_end = read_start + read_cycles;
        self.link_cursor = read_end;
        self.buf_free[p.buf] = read_end;
        self.last_finish = self.last_finish.max(read_end);
        self.metrics.observe(keys::SERVE_READBACK_CYCLES, read_cycles as f64);

        let mut done = Vec::new();
        let mut pos = 0usize;
        for s in &p.slices {
            let slice_out = &outs[pos..pos + s.count];
            pos += s.count;
            self.served_items += slice_out.iter().filter(|o| o.is_some()).count() as u64;
            if self.record {
                for (j, o) in slice_out.iter().enumerate() {
                    self.outputs[s.req][s.req_off + j].clone_from(o);
                }
            }
            let r = self.queue.req_mut(s.req);
            if slice_out.iter().any(Option::is_none) {
                r.lost = true;
            }
            r.open_slices -= 1;
            r.finish = r.finish.max(read_end);
            if r.open_slices == 0 && r.taken == r.items.len() {
                done.push(Completion {
                    id: r.id,
                    arrival: r.arrival,
                    finish: r.finish,
                    items: r.items.len(),
                    served: !r.lost,
                });
            }
        }
        for c in done {
            let key = if c.served { keys::SERVE_COMPLETED } else { keys::SERVE_FAILED };
            self.metrics.counter_add(key, 1);
            self.metrics.observe(keys::SERVE_LATENCY_CYCLES, c.latency() as f64);
            traffic.on_complete(&c);
            self.completions.push(c);
        }
        Ok(())
    }
}

/// Drive `engine` from `traffic` until the source is exhausted and every
/// admitted request has completed; returns the full run record.
///
/// # Errors
/// Host-runtime failures from the engine (injected faults degrade
/// goodput, they do not error).
///
/// # Panics
/// Internal bookkeeping invariants (slice accounting) only.
#[allow(clippy::too_many_lines)]
pub fn serve<E, T>(
    engine: &mut E,
    traffic: &mut T,
    cfg: &ServeConfig,
) -> Result<ServeReport<E::Output>, pim_host::HostError>
where
    E: BatchEngine,
    E::Item: Clone,
    E::Output: Clone,
    T: Traffic<Item = E::Item>,
{
    let capacity = engine.capacity();
    assert!(capacity > 0, "engine capacity must be positive");
    let double = matches!(cfg.pipeline, PipelineMode::Double) && engine.buffers() >= 2;
    let mut st: RunState<E::Item, E::Output> = RunState::new(cfg);
    st.metrics.gauge_set(keys::SERVE_DPUS, engine.dpus() as f64);
    st.metrics.gauge_set(keys::SERVE_CAPACITY_ITEMS, capacity as f64);
    let mut breaker = cfg.breaker.map(|b| CircuitBreaker::new(b, engine.dpus()));

    'rounds: loop {
        // Profile-guided warmup: after the configured number of batches,
        // recompile the hot superblocks and pin the compiled engine. The
        // replay costs no simulated time (host-side optimization) and the
        // engine-tier identity guarantee keeps results bit-identical.
        if !st.pgo_done {
            if let Some(w) = cfg.pgo_warmup_batches {
                if st.seq >= w && st.seq > 0 {
                    engine.recompile_hot(cfg.pgo_min_entries)?;
                    st.metrics.counter_add(keys::SERVE_PGO_RECOMPILES, 1);
                    st.pgo_done = true;
                }
            }
        }
        // A fault-armed launch that quarantined DPUs leaves their MRAM
        // dirty: read back what is in flight, then restore the golden
        // weights-loaded snapshot before staging anything new.
        if engine.dirty() {
            st.flush(engine, traffic)?;
            engine.restore()?;
        }

        // Circuit breaker: refresh the engine's live mask before staging
        // and shrink packing + admission capacity to the live ranks, so
        // overload sheds as a typed `Overloaded` instead of queueing
        // against hardware that cannot serve.
        let cap = match &breaker {
            Some(b) => {
                engine.set_live_mask(&b.live_mask());
                let bound = (cfg.queue_capacity * b.live_ranks()).div_ceil(b.ranks());
                st.queue.set_bound(bound.max(1));
                (capacity * b.live_dpus() / engine.dpus()).max(1)
            }
            None => capacity,
        };

        // ---- assemble the next batch ------------------------------------
        let mut items: Vec<E::Item> = Vec::new();
        let mut slices: Vec<Slice> = Vec::new();
        let mut fill_time = 0u64;
        let mut head_arrival: Option<u64> = None;
        let cut: (u64, CutKind);
        loop {
            // Pack what is already queued.
            while items.len() < cap {
                let Some(ri) = st.queue.front() else { break };
                let (r_arrival, r_total, r_taken) = {
                    let r = st.queue.req(ri);
                    (r.arrival, r.items.len(), r.taken)
                };
                let take = (cap - items.len()).min(r_total - r_taken);
                items.extend(st.queue.req(ri).items[r_taken..r_taken + take].iter().cloned());
                slices.push(Slice { req: ri, req_off: r_taken, count: take });
                {
                    let r = st.queue.req_mut(ri);
                    if r.taken > 0 && !r.split_counted {
                        // Second slice: the request spans multiple
                        // launches — count it once.
                        r.split_counted = true;
                        st.metrics.counter_add(keys::SERVE_SPLITS, 1);
                    }
                    r.taken += take;
                    r.open_slices += 1;
                }
                fill_time = fill_time.max(r_arrival);
                head_arrival.get_or_insert(r_arrival);
                if st.queue.req(ri).taken == r_total {
                    st.queue.pop_front();
                } else {
                    break; // batch is full, request continues next batch
                }
            }
            if items.len() == cap {
                cut = (fill_time, CutKind::Full);
                break;
            }
            // Not full: wait for arrivals or the head-of-line deadline.
            let deadline = head_arrival.map(|h| h + cfg.max_batch_delay);
            let step = if let Some(r) = st.peeked.take() {
                TrafficStep::Arrival(r)
            } else if st.traffic_done {
                TrafficStep::Done
            } else {
                traffic.next()
            };
            match step {
                TrafficStep::Arrival(req) => {
                    if let Some(dl) = deadline {
                        if req.arrival > dl {
                            st.peeked = Some(req);
                            cut = (dl, CutKind::Deadline);
                            break;
                        }
                    }
                    st.admit(req, traffic);
                }
                TrafficStep::Waiting => {
                    if st.pending.is_some() {
                        // Closed-loop clients are blocked on the pending
                        // readback: flush it early to release them.
                        st.flush(engine, traffic)?;
                    } else if let Some(dl) = deadline {
                        cut = (dl, CutKind::Deadline);
                        break;
                    } else {
                        debug_assert!(false, "traffic waiting with nothing in flight");
                        st.traffic_done = true;
                    }
                }
                TrafficStep::Done => {
                    st.traffic_done = true;
                    if items.is_empty() {
                        if st.queue.is_empty() {
                            break 'rounds;
                        }
                        continue;
                    }
                    cut = (fill_time, CutKind::Drain);
                    break;
                }
            }
        }

        // ---- stage / read(k-1) / launch ---------------------------------
        let buf = if double { (st.seq % 2) as usize } else { 0 };
        let stage_start = cut.0.max(st.link_cursor).max(st.buf_free[buf]);
        let stage_bytes = engine.stage(&items, buf)?;
        let stage_cycles = st.link.cycles(stage_bytes);
        let stage_end = stage_start + stage_cycles;
        st.link_cursor = stage_end;

        st.metrics.counter_add(keys::SERVE_BATCHES, 1);
        st.metrics.counter_add(
            match cut.1 {
                CutKind::Full => keys::SERVE_CUTS_FULL,
                CutKind::Deadline => keys::SERVE_CUTS_DEADLINE,
                CutKind::Drain => keys::SERVE_CUTS_DRAIN,
            },
            1,
        );
        st.metrics.observe(keys::SERVE_BATCH_FILL, items.len() as f64);
        st.metrics.observe(keys::SERVE_STAGE_CYCLES, stage_cycles as f64);

        if double {
            // Read back batch k-1 while batch k computes.
            st.flush(engine, traffic)?;
            let run = engine.launch(st.seq)?;
            let compute_start = stage_end.max(st.compute_end_last);
            let compute_end = compute_start + run.compute_cycles;
            st.compute_end_last = compute_end;
            st.metrics.observe(keys::SERVE_COMPUTE_CYCLES, run.compute_cycles as f64);
            st.metrics.counter_add(keys::SERVE_REDISPATCHED_ITEMS, run.redispatched_items as u64);
            st.metrics.counter_add(keys::SERVE_QUARANTINED_DPUS, run.quarantined_dpus.len() as u64);
            st.metrics.counter_add(keys::SERVE_REPAIRED_DPUS, run.repaired_dpus.len() as u64);
            if let Some(b) = &mut breaker {
                b.observe(&run);
            }
            st.pending = Some(Pending { buf, compute_end, slices });
        } else {
            let run = engine.launch(st.seq)?;
            let compute_end = stage_end + run.compute_cycles;
            st.compute_end_last = compute_end;
            st.metrics.observe(keys::SERVE_COMPUTE_CYCLES, run.compute_cycles as f64);
            st.metrics.counter_add(keys::SERVE_REDISPATCHED_ITEMS, run.redispatched_items as u64);
            st.metrics.counter_add(keys::SERVE_QUARANTINED_DPUS, run.quarantined_dpus.len() as u64);
            st.metrics.counter_add(keys::SERVE_REPAIRED_DPUS, run.repaired_dpus.len() as u64);
            if let Some(b) = &mut breaker {
                b.observe(&run);
            }
            st.pending = Some(Pending { buf, compute_end, slices });
            st.flush(engine, traffic)?;
        }
        st.seq += 1;
        st.admit_up_to(stage_end, traffic);
    }

    // Drain the last in-flight batch.
    st.flush(engine, traffic)?;

    let window = st.last_finish.saturating_sub(st.first_arrival.unwrap_or(0));
    let goodput = if window == 0 {
        0.0
    } else {
        st.served_items as f64 * st.link.freq_hz as f64 / window as f64
    };
    st.metrics.gauge_set(keys::SERVE_GOODPUT_IPS, goodput);
    st.metrics.gauge_set(keys::SERVE_VTIME_CYCLES, st.last_finish as f64);
    if let Some(b) = &breaker {
        st.metrics.counter_add(keys::SERVE_BREAKER_TRIPS, b.trips());
        st.metrics.counter_add(keys::SERVE_BREAKER_PROBES, b.probes());
        st.metrics.counter_add(keys::SERVE_BREAKER_READMITS, b.readmits());
        st.metrics.gauge_set(keys::SERVE_BREAKER_RANKS, b.ranks() as f64);
        st.metrics.gauge_set(keys::SERVE_BREAKER_OPEN_RANKS, b.open_ranks() as f64);
    }

    Ok(ServeReport {
        metrics: st.metrics,
        completions: st.completions,
        rejections: st.rejections,
        outputs: if cfg.record_outputs {
            let ids: Vec<u64> = st.queue.all().iter().map(|r| r.id).collect();
            ids.into_iter().zip(st.outputs).collect()
        } else {
            Vec::new()
        },
        vtime_cycles: st.last_finish,
        goodput_ips: goodput,
    })
}
