//! The host-link cost model and the pipeline schedule.
//!
//! The service accounts all time in **simulated cycles** so every gated
//! number is deterministic. DPU compute time comes straight from the
//! simulator ([`pim_host::LaunchResult::makespan_cycles`]); host↔MRAM
//! staging and readback are charged against a single shared link via
//! [`LinkModel`], mirroring how one rank's bus serializes transfers.
//!
//! # The 3-stage schedule
//!
//! In [`PipelineMode::Serial`] each batch runs transfer → compute →
//! readback back-to-back on one cursor, like the plain batch pipelines.
//! In [`PipelineMode::Double`] the engine holds two MRAM image/feature
//! buffers and round *k* is scheduled as:
//!
//! 1. **stage(k)** on the link, as soon as the cut time, the link, and
//!    buffer `k mod 2` (whose previous results must have been read) allow;
//! 2. **read(k−1)** on the link, right after — batch *k−1*'s compute may
//!    still be running, so the read starts at
//!    `max(compute_end(k−1), link free)`;
//! 3. **compute(k)** on the DPUs at `max(stage_end(k), compute_end(k−1))`.
//!
//! At steady state the makespan per batch is `max(compute, stage + read)`
//! instead of `stage + compute + read` — the transfer-heavy shapes the
//! paper profiles (Fig. 3.2) are exactly where that quotient is largest.
//! The double MRAM buffer is what makes the overlap sound: compute(k)
//! writes buffer `k mod 2`'s features while read(k−1) drains buffer
//! `(k−1) mod 2`.

/// Default effective host-link bandwidth for serving, bytes/second.
///
/// Serving transfers are many small scattered per-DPU copies (16-byte
/// params records, 128-byte image slots), not the large sequential bursts
/// that reach the ~1 GB/s peak the YOLO pipeline models — PrIM-style
/// measurements put scattered small-transfer efficiency at a fraction of
/// peak, so the serve default is 400 MB/s. Override via
/// [`LinkModel::bytes_per_sec`].
pub const DEFAULT_SERVE_LINK_BYTES_PER_SEC: u64 = 400_000_000;

/// Integer-exact host-link cost model: `cycles = ceil(bytes · f / bw)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// DPU clock the cycle domain is expressed in.
    pub freq_hz: u64,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self {
            freq_hz: dpu_sim::DpuParams::default().freq_hz,
            bytes_per_sec: DEFAULT_SERVE_LINK_BYTES_PER_SEC,
        }
    }
}

impl LinkModel {
    /// Cycles the link is busy transferring `bytes` (exact integer
    /// ceiling, so results are platform-independent).
    #[must_use]
    pub fn cycles(&self, bytes: u64) -> u64 {
        let num = u128::from(bytes) * u128::from(self.freq_hz);
        let den = u128::from(self.bytes_per_sec.max(1));
        u64::try_from(num.div_ceil(den)).unwrap_or(u64::MAX)
    }
}

/// Execution-loop shape (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// transfer → compute → readback, one cursor — the baseline.
    Serial,
    /// Double-buffered 3-stage overlap (requires an engine with 2
    /// buffers; engines reporting 1 fall back to serial).
    #[default]
    Double,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_cycles_exact_ceiling() {
        let l = LinkModel { freq_hz: 350_000_000, bytes_per_sec: 400_000_000 };
        assert_eq!(l.cycles(0), 0);
        // 1 byte: ceil(350e6 / 400e6) = 1.
        assert_eq!(l.cycles(1), 1);
        // 400 bytes: exactly 350 cycles.
        assert_eq!(l.cycles(400), 350);
        assert_eq!(l.cycles(401), 351);
    }

    #[test]
    fn default_uses_dpu_clock() {
        let l = LinkModel::default();
        assert_eq!(l.freq_hz, dpu_sim::DpuParams::default().freq_hz);
        assert_eq!(l.bytes_per_sec, DEFAULT_SERVE_LINK_BYTES_PER_SEC);
    }
}
