//! `pim-serve` — a serving runtime over the PIM simulator stack.
//!
//! Turns the batch pipelines (`ebnn`, `yolo-pim`) into an inference
//! service: a bounded admission queue sheds overload with a typed
//! [`Overloaded`] rejection, dynamic batching accumulates work items
//! until a rank's worth is filled or `max_batch_delay` expires, and the
//! execution loop overlaps MRAM staging, DPU compute, and result
//! readback in a double-buffered 3-stage pipeline (see
//! [`pipeline`]). Fault-armed runs launch on the
//! [`pim_host::ResilientLaunchPolicy`] so quarantined DPUs degrade
//! goodput instead of failing requests, with golden-snapshot recovery
//! of the weights between batches.
//!
//! All time is accounted in **simulated cycles**: compute comes from the
//! simulator's cycle-exact makespans, transfers from the integer
//! [`LinkModel`], and traffic from seeded integer generators — a fixed
//! seed reproduces every metric bit-for-bit, which the CI `serve-smoke`
//! job asserts. Per-run statistics land in a [`pim_trace::MetricsRegistry`]
//! under the stable `serve.*` keys ([`pim_trace::keys`]), including
//! p50/p99/p999 latency and goodput.
//!
//! The `loadgen` binary (`src/bin/loadgen.rs`) replays open- or
//! closed-loop traffic against the eBNN engine and reports (or gates,
//! `--compare`) the pipelined-vs-serial speedup. See `docs/SERVING.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod pipeline;
pub mod queue;
pub mod request;
pub mod service;
pub mod traffic;

pub use breaker::{BreakerConfig, CircuitBreaker, RankState};
pub use engine::{BatchEngine, BatchRun, EbnnServeEngine, Gathered, YoloServeEngine};
pub use pipeline::{LinkModel, PipelineMode, DEFAULT_SERVE_LINK_BYTES_PER_SEC};
pub use queue::AdmissionQueue;
pub use request::{Completion, CutKind, Overloaded, Request};
pub use service::{serve, ServeConfig, ServeReport, MAX_BATCH_DELAY_ENV, QUEUE_DEPTH_ENV};
pub use traffic::{splitmix64, ClosedLoop, OpenLoop, Rng64, Traffic, TrafficStep};
