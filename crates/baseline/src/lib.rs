//! # cpu-baseline — the paper's Intel Xeon comparison point
//!
//! Fig. 4.7(c) compares eBNN inference on the UPMEM system against a single
//! Intel Xeon CPU, finding a linear speedup as DPUs are added. The exact
//! Xeon model is not specified, so this crate provides two baselines:
//!
//! * [`MeasuredCpu`] — runs the *same* eBNN forward pass natively on the
//!   build machine and measures wall-clock throughput (honest but
//!   machine-dependent);
//! * [`XeonModel`] — a deterministic single-core throughput model pinned to
//!   a documented images/second figure, so reports and benches are
//!   reproducible across machines.
//!
//! Either way only the *shape* of Fig. 4.7(c) depends on the baseline: a
//! scalar CPU rate against embarrassingly parallel DPUs yields a straight
//! line in DPU count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ebnn::EbnnModel;
use std::time::Instant;

/// Deterministic single-core CPU throughput model.
///
/// The default rate corresponds to a mid-2010s Xeon core running a
/// bit-sliced eBNN conv-pool block at a few thousand 28×28 frames per
/// second — the order of magnitude that makes the paper's full-system
/// (2560-DPU) speedup land in the 10²–10³ range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonModel {
    /// Sustained eBNN inferences per second on one core.
    pub ebnn_images_per_sec: f64,
    /// Sustained 8/16-bit fixed-point MACs per second on one core
    /// (for GEMM workloads).
    pub macs_per_sec: f64,
}

impl Default for XeonModel {
    fn default() -> Self {
        Self { ebnn_images_per_sec: 4000.0, macs_per_sec: 2.0e9 }
    }
}

impl XeonModel {
    /// Seconds to infer `n` eBNN images serially.
    #[must_use]
    pub fn ebnn_seconds(&self, n: usize) -> f64 {
        n as f64 / self.ebnn_images_per_sec
    }

    /// Seconds to execute a GEMM of `macs` multiply-accumulates.
    #[must_use]
    pub fn gemm_seconds(&self, macs: u64) -> f64 {
        macs as f64 / self.macs_per_sec
    }
}

/// Wall-clock measurement of the native eBNN forward pass on this machine.
#[derive(Debug, Clone)]
pub struct MeasuredCpu {
    /// The model under test.
    pub model: EbnnModel,
}

impl MeasuredCpu {
    /// Wrap a model.
    #[must_use]
    pub fn new(model: EbnnModel) -> Self {
        Self { model }
    }

    /// Measure eBNN images/second over `iters` inferences of a synthetic
    /// digit (includes binarization, conv-pool-BN and the classifier head —
    /// the full per-image work the DPU+host pipeline shares).
    ///
    /// # Panics
    /// When `iters` is zero.
    #[must_use]
    pub fn measure_ebnn_rate(&self, iters: usize) -> f64 {
        assert!(iters > 0, "need at least one iteration");
        let digit = ebnn::mnist::synth_digit(3, 0);
        let img = self.model.binarize(&digit.pixels);
        // Warm-up to fault in caches.
        let _ = self.model.predict(&img);
        let start = Instant::now();
        let mut guard = 0usize;
        for _ in 0..iters {
            guard = guard.wrapping_add(self.model.predict(&img));
        }
        let elapsed = start.elapsed().as_secs_f64();
        // Keep the loop from being optimized out.
        assert!(guard < usize::MAX);
        iters as f64 / elapsed
    }

    /// A [`XeonModel`] pinned to rates measured on this machine.
    #[must_use]
    pub fn calibrate(&self, iters: usize) -> XeonModel {
        XeonModel {
            ebnn_images_per_sec: self.measure_ebnn_rate(iters),
            macs_per_sec: measure_gemm_rate(),
        }
    }
}

/// Measure native fixed-point GEMM MACs/second on this machine.
#[must_use]
pub fn measure_gemm_rate() -> f64 {
    use yolo_pim::{gemm, GemmDims};
    let dims = GemmDims { m: 32, n: 256, k: 128 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| (i % 61) as i16 - 30).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|i| (i % 53) as i16 - 26).collect();
    let mut c = vec![0i16; dims.m * dims.n];
    gemm(dims, 1, &a, &b, &mut c); // warm-up
    let start = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        gemm(dims, 1, &a, &b, &mut c);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (dims.macs() * reps) as f64 / elapsed
}

/// The Fig. 4.7(c) series: speedup of a `dpus`-wide UPMEM system over one
/// CPU core for a weak-scaled workload (each DPU carries a fixed image
/// batch, so total images grow with the system).
///
/// `dpu_batch_seconds` is the measured/simulated time for one DPU to finish
/// its batch of `images_per_dpu` images; all DPUs run concurrently.
#[must_use]
pub fn speedup_series(
    cpu: &XeonModel,
    dpu_batch_seconds: f64,
    images_per_dpu: usize,
    dpu_counts: &[usize],
) -> Vec<(usize, f64)> {
    dpu_counts
        .iter()
        .map(|&d| {
            let total_images = d * images_per_dpu;
            let cpu_time = cpu.ebnn_seconds(total_images);
            (d, cpu_time / dpu_batch_seconds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebnn::ModelConfig;

    #[test]
    fn xeon_model_is_linear() {
        let x = XeonModel::default();
        assert!((x.ebnn_seconds(4000) - 1.0).abs() < 1e-9);
        assert_eq!(x.ebnn_seconds(0), 0.0);
        assert!((x.gemm_seconds(2_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measured_rate_is_positive_and_stable() {
        let m = MeasuredCpu::new(EbnnModel::generate(ModelConfig {
            filters: 4,
            ..ModelConfig::default()
        }));
        let r = m.measure_ebnn_rate(5);
        assert!(r > 1.0, "rate {r} images/s implausibly low");
    }

    #[test]
    fn gemm_rate_is_plausible() {
        let r = measure_gemm_rate();
        assert!(r > 1e6, "GEMM rate {r} MAC/s implausibly low");
    }

    #[test]
    fn speedup_series_is_linear_in_dpus() {
        let cpu = XeonModel::default();
        let series = speedup_series(&cpu, 0.01, 16, &[1, 2, 4, 8, 16]);
        // Weak scaling: speedup at d DPUs is d x the single-DPU speedup.
        let s1 = series[0].1;
        for &(d, s) in &series {
            assert!((s / (s1 * d as f64) - 1.0).abs() < 1e-9, "not linear at {d}");
        }
    }
}
