//! The eBNN evaluation scenario (§4.1): a multi-DPU MNIST batch with and
//! without the LUT rewrite of BatchNorm + BinaryActivation.
//!
//! ```sh
//! cargo run --release --example ebnn_mnist_batch [images]
//! ```
//!
//! Reproduces the Fig. 4.3 subroutine-profile comparison and the Fig. 4.4
//! completion-time comparison, then scales the batch across DPUs and
//! reports throughput against the Xeon baseline.

use cpu_baseline::{MeasuredCpu, XeonModel};
use ebnn::mapping::BnPlacement;
use ebnn::{EbnnModel, EbnnPipeline, ModelConfig, SynthMnist};

fn main() {
    let n_images: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("image count must be a number"))
        .unwrap_or(160);
    let model = EbnnModel::generate(ModelConfig::default());
    let dataset = SynthMnist::generate(n_images.div_ceil(10));
    let images = &dataset.images[..n_images];

    // --- Fig. 4.3: subroutine profiles ---
    let f43 = pim_core::experiments::fig_4_3(&model);
    println!(
        "Fig. 4.3(a) — float BN in the DPU: {} distinct subroutines",
        f43.float_profile.distinct
    );
    for (sym, occ) in &f43.float_profile.occ {
        println!("    {sym:<14} #occ {occ}");
    }
    println!("Fig. 4.3(b) — LUT rewrite: {} distinct subroutines", f43.lut_profile.distinct);
    for (sym, occ) in &f43.lut_profile.occ {
        println!("    {sym:<14} #occ {occ}");
    }

    // --- Fig. 4.4: 16-image completion time ---
    let batch16 = &images[..16.min(images.len())];
    let lut = EbnnPipeline::new(model.clone()).infer(batch16).expect("lut run");
    let float = EbnnPipeline::new(model.clone())
        .with_placement(BnPlacement::DpuFloat)
        .infer(batch16)
        .expect("float run");
    println!("\nFig. 4.4 — 16 images on one DPU:");
    println!("    float BN: {:.3} ms", float.dpu_seconds * 1e3);
    println!("    LUT:      {:.3} ms", lut.dpu_seconds * 1e3);
    println!("    speedup:  {:.2}x (paper: 1.4x)", float.dpu_seconds / lut.dpu_seconds);

    // --- Multi-DPU batch ---
    let report = EbnnPipeline::new(model.clone()).infer(images).expect("batch run");
    let correct = images.iter().zip(&report.predictions).filter(|(img, &p)| img.label == p).count();
    println!("\nBatch of {} images over {} DPUs:", images.len(), report.dpus_used);
    println!("    accuracy:       {}/{}", correct, images.len());
    println!("    DPU completion: {:.3} ms", report.dpu_seconds * 1e3);
    println!("    host softmax:   {:.3} ms", report.host_seconds * 1e3);
    println!("    throughput:     {:.0} frames/s", report.frames_per_second());

    // --- Tier-1: the generated DPU program, instruction by instruction ---
    let (t1_features, t1) = ebnn::codegen::run_tier1_batch(&model, batch16).expect("tier1");
    let exact = batch16
        .iter()
        .zip(&t1_features)
        .all(|(img, f)| *f == model.features(&model.binarize(&img.pixels)));
    println!("\nTier-1 generated DPU program (16 images, {} tasklets):", batch16.len());
    println!(
        "    {} instructions, {} cycles = {:.3} ms",
        t1.total_instructions(),
        t1.makespan_cycles(),
        t1.makespan_seconds(&dpu_sim::DpuParams::default()) * 1e3
    );
    println!("    features bit-exact vs host reference: {exact}");

    // --- CPU comparison (measured on this machine + deterministic model) ---
    let cpu = MeasuredCpu::new(model).measure_ebnn_rate(200);
    println!("\nCPU baseline on this machine: {cpu:.0} images/s (single core)");
    let default_xeon = XeonModel::default();
    println!(
        "Fig. 4.7(c) speedup vs modelled Xeon at 2560 DPUs: {:.0}x",
        default_xeon.ebnn_seconds(2560 * 16) / report.dpu_seconds.max(1e-12)
    );
}
