//! Quickstart: classify handwritten digits on the simulated UPMEM PIM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates an eBNN, synthesizes a few MNIST-like digits, deploys the
//! Convolution-Pool block to simulated DPUs with the paper's
//! multi-image-per-DPU mapping (LUT-rewritten BatchNorm), and prints
//! predictions with the cycle-accounted latency.

use ebnn::{EbnnModel, EbnnPipeline, ModelConfig};

fn main() {
    // 1. A model: one binary conv-pool block (16 filters) + classifier.
    let model = EbnnModel::generate(ModelConfig::default());

    // 2. A handful of synthetic digits (one per class).
    let digits: Vec<_> = (0..10).map(|c| ebnn::mnist::synth_digit(c, 42)).collect();

    // 3. Deploy: the pipeline binarizes and bit-packs on the host, scatters
    //    images to DPU MRAM, runs one tasklet per image, and classifies the
    //    returned feature maps on the host.
    let pipeline = EbnnPipeline::new(model);
    let report = pipeline.infer(&digits).expect("inference runs");

    println!("eBNN on the simulated UPMEM PIM");
    println!("-------------------------------");
    for (digit, &pred) in digits.iter().zip(&report.predictions) {
        let mark = if pred == digit.label { "ok " } else { "MISS" };
        println!("  digit {} -> predicted {} [{}]", digit.label, pred, mark);
    }
    let correct = digits.iter().zip(&report.predictions).filter(|(d, &p)| d.label == p).count();
    println!("\naccuracy: {}/{}", correct, digits.len());
    println!("DPUs used: {}", report.dpus_used);
    println!(
        "DPU completion: {:.3} ms ({} cycles @ 350 MHz)",
        report.dpu_seconds * 1e3,
        report.makespan_cycles
    );
    println!("host softmax:   {:.3} ms", report.host_seconds * 1e3);
    println!("throughput:     {:.0} frames/s of DPU time", report.frames_per_second());
}
