//! Quantify the paper's improvement proposals and future-work studies.
//!
//! ```sh
//! cargo run --release --example improvements_study
//! ```
//!
//! §4.3.4 proposes three UPMEM improvements (600 MHz clock, larger WRAM,
//! cheaper MRAM access); §6.1 sketches a frame-per-DPU YOLO mapping, a
//! network-size sweep and an eBNN image-size study. The simulator turns
//! each into a measurement.

use ebnn::{EbnnModel, ModelConfig};
use pim_core::ablations;

fn main() {
    let model = EbnnModel::generate(ModelConfig::default());

    println!("{}", pim_bench_render(&ablations::improvements(&model)));
    println!("{}", render_mapping(&ablations::mapping_comparison(&[1, 2, 4, 8])));
    println!("{}", render_sweep(&ablations::size_sweep(&[96, 160, 224, 320, 416])));
    println!("{}", render_limits(&ablations::ebnn_image_size_limits(&[28, 32, 56, 64, 112, 224])));
    println!("Reading the tables:");
    println!("- the 600 MHz clock helps compute but not the host link, so YOLO's");
    println!("  frame time barely moves: the mapping, not the silicon, is the wall;");
    println!("- 4x WRAM lets the ctmp accumulator stay on-chip for more layers;");
    println!("- frame-per-DPU would beat the row mapping by >50x on throughput, but");
    println!("  the full model's 124 MB of weights cannot fit the 64 MB MRAM -");
    println!("  which is why the paper had to spread single frames across DPUs.");
}

fn pim_bench_render(rows: &[ablations::AblationRow]) -> String {
    let mut s = String::from("== Improvements ablation (§4.3.4) ==\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<42} eBNN {:.3} ms/img, YOLO {:.1} s/frame ({:.1} s on-DPU)\n",
            r.name,
            r.ebnn_per_image * 1e3,
            r.yolo_frame,
            r.yolo_dpu_seconds
        ));
    }
    s
}

fn render_mapping(rows: &[ablations::MappingRow]) -> String {
    let mut s = String::from("== Mapping comparison (§6.1) ==\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<18} weights {:>6.1} MB  fits: {:<3}  row {:>7.2} s/frame ({:.3} fps)",
            r.network,
            r.weights_bytes as f64 / 1e6,
            if r.fits_mram { "yes" } else { "NO" },
            r.row_frame_seconds,
            r.row_fps
        ));
        match (r.fpd_frame_seconds, r.fpd_fps) {
            (Some(fs), Some(fps)) => {
                s.push_str(&format!("  frame/DPU {fs:>7.1} s/frame ({fps:.1} fps system)\n"));
            }
            _ => s.push_str("  frame/DPU infeasible\n"),
        }
    }
    s
}

fn render_sweep(rows: &[ablations::SizeSweepRow]) -> String {
    let mut s = String::from("== Network-size sweep (§6.1) ==\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>3}px  {:>9.2e} MACs  UPMEM {:>6.2} s  pPIM {:>7.4} s  ({:.0}x behind)\n",
            r.input, r.macs as f64, r.upmem_seconds, r.ppim_seconds, r.ratio
        ));
    }
    s
}

fn render_limits(rows: &[ablations::ImageSizeRow]) -> String {
    let mut s = String::from("== eBNN image-size limits (§6.1) ==\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>3}px: {:>5} B/slot, {:>2} per DMA, {:>2} in WRAM -> multi-image {}\n",
            r.dim,
            r.slot_bytes,
            r.images_per_transfer,
            r.images_in_wram,
            if r.multi_image_feasible { "OK" } else { "infeasible" }
        ));
    }
    s
}
