//! Trace a Tier-1 eBNN inference and export it for timeline inspection.
//!
//! ```sh
//! cargo run --release --example trace_inspection [out.json]
//! ```
//!
//! Runs a 24-image MNIST batch through the generated eBNN DPU program on
//! two simulated DPUs with tracing enabled, then:
//!
//! * writes a Chrome trace-event JSON file (default
//!   `target/ebnn_trace.json`) — open it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`: one process track
//!   per DPU with a row per tasklet, DMA and subroutine spans on the
//!   cycle axis, plus a host track of MRAM transfers;
//! * prints the per-phase cycle breakdown and the launch's metrics
//!   registry to stdout.

use ebnn::{EbnnModel, ModelConfig};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "target/ebnn_trace.json".to_owned());

    let model = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
    let images: Vec<_> =
        (0..24).map(|i| ebnn::mnist::synth_digit(i % 10, (i / 10) as u64)).collect();

    let traced =
        ebnn::codegen::run_tier1_batch_multi_dpu_traced(&model, &images).expect("traced run");

    println!(
        "Traced {} images over {} DPUs: {} cycles makespan, {} trace events\n",
        images.len(),
        traced.launch.per_dpu.len(),
        traced.launch.makespan_cycles(),
        traced.dpu_traces.iter().map(pim_trace::TraceBuffer::len).sum::<usize>()
            + traced.host_trace.len(),
    );

    println!("{}", pim_trace::cycle_breakdown(&traced.dpu_traces));

    let mut metrics = traced.launch.metrics();
    metrics.counter_add("host.transfer.events", traced.host_trace.len() as u64);
    let metrics_json = serde_json::to_string(&metrics.to_json()).expect("metrics serialize");
    println!("metrics registry:\n{metrics_json}\n");

    let json = pim_trace::chrome_trace_string(&traced.dpu_traces, Some(&traced.host_trace));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write trace file");
    println!("Chrome trace written to {out_path} ({} bytes).", json.len());
    println!("Open it at https://ui.perfetto.dev or chrome://tracing.");
}
