//! The YOLOv3 evaluation scenario (§4.2): the row-per-DPU GEMM mapping.
//!
//! ```sh
//! cargo run --release --example yolo_pipeline [path/to/network.cfg]
//! ```
//!
//! With a Darknet `.cfg` argument the full-size estimate uses that network
//! instead of the built-in table (try `configs/yolov3-416.cfg`).
//!
//! Runs a scaled-down YOLOv3 *functionally* through simulated DPU MRAM
//! (synthetic weights — detections are structural, not semantic), decodes
//! and NMS-filters the heads, then prints the latency estimate for the full
//! 416×416 network against the paper's 65 s/frame.

use yolo_pim::{darknet53_yolov3, decode_and_nms, tiny_config, LayerSpec, YoloPipeline};

fn main() {
    // --- Functional run: tiny topology, real data through MRAM ---
    let net = tiny_config();
    let input_dim = net.input.h;
    let input: Vec<f32> =
        (0..net.input.len()).map(|i| (((i * 2654435761) % 255) as f32 / 127.5) - 1.0).collect();
    let pipe = YoloPipeline::new(net);
    let (heads, report) = pipe.run(&input).expect("pipeline runs");

    println!("Functional run: {} ({} conv layers on DPUs)", pipe.network.name, report.layers.len());
    for (l, r) in pipe
        .network
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, LayerSpec::Conv(_)))
        .zip(&report.layers)
        .map(|((i, _), r)| (i, r))
    {
        println!(
            "    layer {:>2}: M={:<4} N={:<5} K={:<5} -> {} DPUs, {:>9} cycles{}",
            l,
            r.dims.m,
            r.dims.n,
            r.dims.k,
            r.dpus,
            r.kernel.cycles,
            if r.memory_bound { "  [MRAM-bound]" } else { "" }
        );
    }
    let dets = decode_and_nms(&heads, input_dim, 0.6, 0.45);
    println!("    YOLO heads: {}, detections after NMS: {}", heads.len(), dets.len());
    for d in dets.iter().take(5) {
        println!(
            "      box @ ({:5.1},{:5.1}) {:4.1}x{:<4.1} class {} conf {:.2}",
            d.x, d.y, d.w, d.h, d.class, d.confidence
        );
    }

    // --- Tier-1: one layer's GEMM as a real DPU program across DPUs ---
    use yolo_pim::GemmDims;
    let dims = GemmDims { m: 4, n: 64, k: 36 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| ((i * 13) % 41) as i16 - 20).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|i| ((i * 7) % 61) as i16 - 30).collect();
    let (c_t1, launch) =
        yolo_pim::codegen::run_tier1_layer(dims, 1, &a, &b, 11).expect("tier-1 layer");
    let mut c_host = vec![0i16; dims.m * dims.n];
    yolo_pim::gemm(dims, 1, &a, &b, &mut c_host);
    println!("\nTier-1 GEMM layer (M={} DPUs, 11 tasklets):", dims.m);
    println!(
        "    {} instructions, makespan {} cycles",
        launch.total_instructions(),
        launch.makespan_cycles()
    );
    println!("    C matches host GEMM: {}", c_t1 == c_host);
    println!(
        "    B-element DMAs per DPU: {} (the §4.3.3 MRAM-bound pattern)",
        launch.per_dpu[0].dma_transfers
    );

    // --- Full-size estimate: the paper's 416×416 frame (or a user .cfg) ---
    let network = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable cfg file");
            let net = yolo_pim::parse_cfg(&path, &text).expect("valid Darknet cfg");
            println!(
                "\nLoaded {}: {} layers, {:.2e} MACs",
                path,
                net.layers.len(),
                net.total_macs() as f64
            );
            net
        }
        None => darknet53_yolov3(),
    };
    let full = YoloPipeline::new(network).estimate();
    println!("\nFull YOLOv3-416 frame estimate (Fig. 4.6 mapping, 11 tasklets, -O3):");
    println!("    total:          {:.1} s   (paper: 65 s)", full.total_seconds());
    println!("    mean layer:     {:.2} s   (paper: ~0.9 s)", full.mean_layer_seconds());
    println!("    max layer:      {:.2} s   (paper: ~6 s)", full.max_layer_seconds());
    println!("    DPU compute:    {:.1} s", full.dpu_seconds());
    println!(
        "    host transfers: {:.1} s  <- every DPU receives the whole B matrix",
        full.host_transfer_seconds()
    );
    let bound = full.layers.iter().filter(|l| l.memory_bound).count();
    println!("    MRAM-bound layers: {}/{} (the §4.3.3 takeaway)", bound, full.layers.len());
}
