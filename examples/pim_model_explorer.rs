//! Explore the Chapter-5 analytical PIM model.
//!
//! ```sh
//! cargo run --release --example pim_model_explorer [tops] [device.json]
//! ```
//!
//! Prints the paper's model tables, then evaluates a custom workload
//! (default: 1e8 MACs) across the architecture line-up — the "model usage"
//! workflow of §5.4. Pass a JSON device description (the serde form of
//! `pim_model::PimArch`) to score your own PIM against the line-up.

use pim_model::{ModelReport, OperandBits, Workload};

fn main() {
    let tops: f64 = std::env::args().nth(1).map(|s| s.parse().expect("tops")).unwrap_or(1e8);
    println!("{}", pim_bench_render::table_5_1());
    println!("{}", pim_bench_render::table_5_2());
    println!("{}", pim_bench_render::table_5_3());

    // Custom workload across the line-up, all operand widths.
    let w = Workload::custom("custom", tops);
    println!("Custom workload: {} MACs", tops);
    println!("{:<16} {:>10} {:>10} {:>10} {:>10}", "device", "4-bit", "8-bit", "16-bit", "32-bit");
    for a in pim_model::arch::table_5_4_lineup() {
        if a.compute().is_none() {
            // Throughput/measured devices: single figure.
            if a.name == "UPMEM" {
                continue; // measured rows need eBNN/YOLO workloads
            }
            let t = a.latency_nominal(&w, OperandBits::B8);
            println!("{:<16} {:>10} {:>9.3e}s {:>10} {:>10}", a.name, "-", t, "-", "-");
            continue;
        }
        let row: Vec<String> = OperandBits::ALL
            .iter()
            .map(|&x| format!("{:.3e}s", a.latency_nominal(&w, x)))
            .collect();
        println!("{:<16} {:>10} {:>10} {:>10} {:>10}", a.name, row[0], row[1], row[2], row[3]);
    }

    println!("\n{}", pim_bench_render::fig_5_6());
    println!("{}", pim_bench_render::table_5_4(&ModelReport::table_5_4(None)));

    // Optional: score a user-described device from JSON.
    if let Some(path) = std::env::args().nth(2) {
        let json = std::fs::read_to_string(&path).expect("readable JSON file");
        let dev = pim_model::arch::arch_from_json(&json).expect("valid PimArch JSON");
        println!("Custom device `{}` ({}):", dev.name, path);
        for wname in ["eBNN", "YOLOv3"] {
            let wl = if wname == "eBNN" { Workload::ebnn() } else { Workload::yolov3() };
            let t = dev.latency_nominal(&wl, OperandBits::B8);
            println!(
                "  {wname:<7} latency {t:.3e} s, {:.3e} frames/s-W, {:.3e} frames/s-mm2",
                1.0 / t / dev.power_w,
                1.0 / t / dev.area_mm2
            );
        }
    }
}

/// Local renderers (the example is standalone; the `pim-bench` crate has
/// richer ones).
mod pim_bench_render {
    use pim_model::report::BenchRow;
    use pim_model::ModelReport;

    pub fn table_5_1() -> String {
        let mut s = String::from("Table 5.1 — model walkthrough (8-bit AlexNet)\n");
        for c in ModelReport::table_5_1() {
            s.push_str(&format!(
                "  {:<12} Cop={:<4} PEs={:<6} Ccomp={:.4e} Tcomp={:.3e}s\n",
                c.name, c.cop, c.pes, c.ccomp_tops, c.tcomp_tops
            ));
        }
        s
    }

    pub fn table_5_2() -> String {
        let mut s = String::from("Table 5.2 — multiplication Cop (4/8/16/32-bit)\n");
        for (name, row) in ModelReport::table_5_2() {
            s.push_str(&format!("  {:<12} {:?}\n", name, row));
        }
        s
    }

    pub fn table_5_3() -> String {
        let mut s = String::from("Table 5.3 — memory model (8-bit AlexNet)\n");
        for (name, tt, opp, local, tmem) in ModelReport::table_5_3() {
            s.push_str(&format!(
                "  {:<12} Ttransfer={:.2e}s ops/PE={} local={} Tmem={:.3e}s\n",
                name, tt, opp, local, tmem
            ));
        }
        s
    }

    pub fn fig_5_6() -> String {
        let mut s = String::from("Fig. 5.6 — multiply cycles at PEs=2560, TOPs=1e5\n");
        for (name, row) in ModelReport::fig_5_6() {
            s.push_str(&format!("  {:<12} {:?}\n", name, row.map(|v| v as u64)));
        }
        s
    }

    pub fn table_5_4(rows: &[BenchRow]) -> String {
        let mut s = String::from(
            "Table 5.4 — benchmarking (8-bit)\n  device           eBNN lat    f/sW      f/smm     YOLO lat    f/sW      f/smm\n",
        );
        for r in rows {
            s.push_str(&format!(
                "  {:<16} {:>9.3e} {:>9.3e} {:>9.3e} {:>9.3e} {:>9.3e} {:>9.3e}\n",
                r.name,
                r.ebnn_latency,
                r.ebnn_tp_power,
                r.ebnn_tp_area,
                r.yolo_latency,
                r.yolo_tp_power,
                r.yolo_tp_area
            ));
        }
        s
    }
}
