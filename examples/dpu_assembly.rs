//! Program the simulated DPU directly in assembly (the Tier-1 path).
//!
//! ```sh
//! cargo run --release --example dpu_assembly
//! ```
//!
//! Demonstrates the device-level API the CNN pipelines are built on:
//! assemble a multi-tasklet kernel, place data in MRAM through the host
//! runtime, launch, and read back results plus the performance-counter and
//! subroutine-profile reports the paper's Chapter 3 is built from.

use dpu_sim::asm::assemble;
use dpu_sim::DpuId;
use pim_host::DpuSet;

fn main() {
    // Kernel: every tasklet DMAs one 8-byte slot from MRAM, multiplies it
    // by its tasklet id + 1 (through __mulsi3 — watch the profile), and
    // writes it back. The perfcounter brackets tasklet 0's work.
    let src = "\
        me r1                  ; tasklet id\n\
        beq r1, r0, timed\n\
        jmp work\n\
        timed: perf.config\n\
        work:\n\
        lsli r2, r1, 3         ; mram offset = id * 8\n\
        movi r3, 0x200\n\
        add r2, r2, r3         ; &input[id]\n\
        lsli r4, r1, 3\n\
        movi r5, 8             ; len\n\
        mram.read r4, r2, r5   ; wram[id*8] <- mram\n\
        lw r6, r4, 0\n\
        addi r7, r1, 1\n\
        call __mulsi3 r6, r6, r7\n\
        sw r4, 0, r6\n\
        mram.write r4, r2, r5\n\
        bne r1, r0, done\n\
        perf.read r8\n\
        done: halt\n";
    let program = assemble(src).expect("kernel assembles");

    let tasklets = 8;
    let mut set = DpuSet::allocate(2).expect("allocate 2 DPUs");
    set.define_symbol("pad", 0x200).expect("pad"); // place input at 0x200
    set.define_symbol("input", 8 * tasklets).expect("symbol");
    for d in 0..2u32 {
        for t in 0..tasklets {
            let v = (100 * (d as usize + 1) + t) as u64;
            set.copy_to_dpu(DpuId(d), "input", t * 8, &v.to_le_bytes()).expect("seed input");
        }
    }

    let result = set.launch(&program, tasklets).expect("launch");
    println!(
        "Launched {} instructions across 2 DPUs x {} tasklets",
        result.total_instructions(),
        tasklets
    );
    println!(
        "makespan: {} cycles = {:.2} us @ 350 MHz",
        result.makespan_cycles(),
        result.makespan_seconds(&set.params()) * 1e6
    );

    for d in 0..2u32 {
        print!("DPU {d} results:");
        for t in 0..tasklets {
            let mut b = [0u8; 8];
            set.copy_from_dpu(DpuId(d), "input", t * 8, &mut b).expect("read back");
            print!(" {}", u64::from_le_bytes(b));
        }
        println!();
    }

    println!("\nperfcounter (tasklet 0 region): {:?} cycles", result.per_dpu[0].perf_reads);
    println!("subroutine profile:\n{}", result.merged_profile());
    println!(
        "DMA: {} transfers, {} bytes, {} stall cycles per DPU",
        result.per_dpu[0].dma_transfers, result.per_dpu[0].dma_bytes, result.per_dpu[0].dma_cycles
    );
}
