//! Deep (multi-block) eBNN on the simulated PIM — the §6.1 depth study.
//!
//! ```sh
//! cargo run --release --example deep_ebnn
//! ```
//!
//! Stacks binary Convolution-Pool blocks (the original eBNN architecture;
//! the paper's implementation used one) and deploys each depth with the
//! multi-image-per-DPU scheme, showing how cost, feature count and the
//! LUT's WRAM footprint evolve with depth.

use ebnn::deep::{DeepConfig, DeepEbnn, DeepPipeline};
use ebnn::SynthMnist;

fn main() {
    let dataset = SynthMnist::generate(2); // 20 images
    let configs: Vec<Vec<usize>> = vec![vec![8], vec![8, 16], vec![8, 16, 32], vec![8, 16, 64, 64]];

    println!("Deep eBNN depth study (20 images, 16 tasklets/DPU)");
    println!(
        "{:<20} {:>9} {:>12} {:>10} {:>10} {:>9}",
        "blocks", "features", "working set", "LUT rows", "DPU ms", "accuracy"
    );
    for filters in configs {
        let model =
            DeepEbnn::generate(DeepConfig { filters: filters.clone(), ..DeepConfig::default() });
        let ws = model.working_set_bytes();
        let lut_rows: usize = model.blocks.iter().map(|b| b.lut.len()).sum();
        let report = DeepPipeline::new(model.clone()).infer(&dataset.images).expect("runs");
        let correct = dataset
            .images
            .iter()
            .zip(&report.predictions)
            .filter(|(img, &p)| img.label == p)
            .count();
        println!(
            "{:<20} {:>9} {:>10} B {:>10} {:>10.2} {:>6}/{}",
            format!("{filters:?}"),
            model.feature_count(),
            ws,
            lut_rows,
            report.dpu_seconds * 1e3,
            correct,
            dataset.len()
        );
    }
    println!("\nThe fourth configuration's 64-channel block needs a >70 KB LUT —");
    println!("past the WRAM budget, which is where depth stops being free on the DPU");
    println!("(the LUT row count scales with 18x the block fan-in; see ebnn::deep).");
}
